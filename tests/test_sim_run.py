"""Unit tests for workload runners and equivalence checks."""

from repro.ir.parser import parse_program
from repro.sim.run import (
    describe_mismatch,
    outputs_match,
    run_reference,
    run_threads,
)
from tests.conftest import MINI_KERNEL


def kernel(name="k"):
    return parse_program(MINI_KERNEL, name)


def test_reference_run_processes_all_packets():
    res = run_reference([kernel()], packets_per_thread=7)
    assert res.stats.threads[0].iterations == 7
    assert len(res.out_queues[0]) == 7
    assert res.stores[0]


def test_identical_runs_match():
    a = run_reference([kernel()], packets_per_thread=4)
    b = run_reference([kernel()], packets_per_thread=4)
    assert outputs_match(a, b)
    assert describe_mismatch(a, b) == "runs match"


def test_different_seeds_differ():
    a = run_reference([kernel()], packets_per_thread=4, seed=1)
    b = run_reference([kernel()], packets_per_thread=4, seed=2)
    assert not outputs_match(a, b)


def test_scratch_stores_ignored():
    spiller = parse_program(
        """
    start:
        recv %p
        beqi %p, 0, out
        movi %tmp, 0x8005
        store %p, [%tmp]
        load %v, [%p]
        store %v, [%p + 1]
        send %p
        br start
    out:
        halt
        """,
        "s",
    )
    clean = parse_program(
        """
    start:
        recv %p
        beqi %p, 0, out
        load %v, [%p]
        store %v, [%p + 1]
        send %p
        br start
    out:
        halt
        """,
        "c",
    )
    a = run_reference([spiller], packets_per_thread=3)
    b = run_reference([clean], packets_per_thread=3)
    assert outputs_match(a, b)


def test_per_thread_queues_are_independent():
    res = run_reference([kernel("a"), kernel("b")], packets_per_thread=3)
    assert res.out_queues[0] != res.out_queues[1]  # different areas
    assert res.stats.threads[0].iterations == 3
    assert res.stats.threads[1].iterations == 3


def test_measured_cpi_window():
    res = run_threads(
        [kernel()], packets_per_thread=10, measure_iterations=4
    )
    t = res.stats.threads[0]
    assert t.measured_cpi is not None
    assert t.measured_cpi > 0
    # Fixed-window CPI equals the busy metric the accessor reports.
    assert res.thread_busy_cpi(0) == t.measured_cpi


def test_measured_cpi_deterministic():
    a = run_threads([kernel()], packets_per_thread=10, measure_iterations=4)
    b = run_threads([kernel()], packets_per_thread=10, measure_iterations=4)
    assert a.stats.threads[0].measured_cpi == b.stats.threads[0].measured_cpi
