"""Unit tests for basic-block construction."""

from repro.cfg.blocks import block_of_index, build_blocks
from repro.ir.parser import parse_program


def test_straight_line_is_one_block(straight):
    blocks = build_blocks(straight)
    assert len(blocks) == 1
    assert blocks[0].start == 0 and blocks[0].end == len(straight.instrs)


def test_diamond_blocks(fig3_t1):
    blocks = build_blocks(fig3_t1)
    # entry, then-branch, else-branch (L1), join (L2)
    assert len(blocks) == 4
    entry = blocks[0]
    assert sorted(entry.succs) == [1, 2]
    join = blocks[3]
    assert sorted(join.preds) == [1, 2]


def test_loop_back_edge(mini_kernel):
    blocks = build_blocks(mini_kernel)
    by_start = {b.start: b for b in blocks}
    loop_head = by_start[mini_kernel.labels["loop"]]
    assert loop_head.bid in {
        s for b in blocks for s in b.succs if b.start > loop_head.start
    }


def test_block_of_index(mini_kernel):
    blocks = build_blocks(mini_kernel)
    for i in range(len(mini_kernel.instrs)):
        b = block_of_index(blocks, i)
        assert b.start <= i < b.end


def test_blocks_partition_program(mini_kernel):
    blocks = build_blocks(mini_kernel)
    covered = sorted(i for b in blocks for i in b.indices())
    assert covered == list(range(len(mini_kernel.instrs)))


def test_halt_ends_block():
    p = parse_program("movi %a, 1\nhalt\nx:\n movi %b, 2\n halt\n", "t")
    blocks = build_blocks(p)
    assert len(blocks) == 2
    assert blocks[0].succs == ()
