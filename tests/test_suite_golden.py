"""Golden-model tests: recompute each kernel's results in plain Python.

Each benchmark's observable output is recomputed from the same synthetic
packets by an independent Python model and compared against the simulator
run, pinning down kernel semantics (not just determinism).
"""

from typing import List

import pytest

from repro.sim.memory import Memory
from repro.sim.packets import make_workload
from repro.sim.run import PACKET_AREA_BASE, run_reference
from repro.suite import load
from repro.suite.crc import POLY
from repro.suite.fir2dim import COEFFS, IMAGE_DIM
from repro.suite.frag import MTU_WORDS
from repro.suite.md5 import HOISTED_T, EXTRA_T, G2, INIT, S1, S2

MASK = 0xFFFFFFFF


def packets(n=3, payload=16, seed=1):
    mem = Memory()
    wl = make_workload(mem, PACKET_AREA_BASE, n, payload, seed=seed)
    return mem, wl


def stored(run, tid=0):
    return dict(run.stores[tid])


# ----------------------------------------------------------------------
# frag: one's-complement checksum + fragment count.
# ----------------------------------------------------------------------
def test_frag_golden():
    mem, wl = packets()
    run = run_reference([load("frag")], packets_per_thread=3)
    out = stored(run)
    for base, size in zip(wl.bases, wl.payload_words):
        words = mem.read_block(base + 1, size)
        total = 0
        for w in words:
            total += (w >> 16) + (w & 0xFFFF)
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        checksum = (total ^ 0xFFFF) & MASK
        frags = (size + MTU_WORDS - 1) // MTU_WORDS
        addr = base + size
        assert out[addr + 1] == checksum
        assert out[addr + 2] == frags


# ----------------------------------------------------------------------
# crc: reflected CRC-32 over the payload words, byte order LSB-first.
# ----------------------------------------------------------------------
def crc32_words(words: List[int]) -> int:
    crc = 0xFFFFFFFF
    for w in words:
        for b in range(4):
            byte = (w >> (8 * b)) & 0xFF
            crc ^= byte
            for _ in range(8):
                mask = crc & 1
                crc = (crc >> 1) ^ (POLY * mask)
    return crc ^ 0xFFFFFFFF


def test_crc_golden():
    mem, wl = packets()
    run = run_reference([load("crc")], packets_per_thread=3)
    out = stored(run)
    for base, size in zip(wl.bases, wl.payload_words):
        words = mem.read_block(base + 1, size)
        assert out[base + size + 1] == crc32_words(words)


# ----------------------------------------------------------------------
# md5: the kernel's exact two-round variant.
# ----------------------------------------------------------------------
def md5_digest(m: List[int]):
    a, b, c, d = INIT
    state = {"a": a, "b": b, "c": c, "d": d}
    order = ["a", "b", "c", "d"]

    def rotl(x, s):
        return ((x << s) | (x >> (32 - s))) & MASK

    for i in range(16):
        ra, rb, rc, rd = (
            order[(0 - i) % 4],
            order[(1 - i) % 4],
            order[(2 - i) % 4],
            order[(3 - i) % 4],
        )
        f = (state[rb] & state[rc]) | (
            (state[rb] ^ MASK) & state[rd]
        )
        t = (
            HOISTED_T[i]
            if i < len(HOISTED_T)
            else EXTRA_T[i - len(HOISTED_T)]
        )
        acc = (state[ra] + f + m[i] + t) & MASK
        state[ra] = (state[rb] + rotl(acc, S1[i])) & MASK
    for i in range(16):
        ra, rb, rc, rd = (
            order[(0 - i) % 4],
            order[(1 - i) % 4],
            order[(2 - i) % 4],
            order[(3 - i) % 4],
        )
        g = (state[rd] & state[rb]) | ((state[rd] ^ MASK) & state[rc])
        if 16 + i < len(HOISTED_T):
            t = HOISTED_T[16 + i]
        else:
            t = EXTRA_T[(len(EXTRA_T) // 2 + i // 2) % len(EXTRA_T)]
        acc = (state[ra] + g + m[G2[i]] + t) & MASK
        state[ra] = (state[rb] + rotl(acc, S2[i])) & MASK
    return tuple(
        (state[k] + v) & MASK for k, v in zip("abcd", INIT)
    )


def test_md5_golden():
    mem, wl = packets()
    run = run_reference([load("md5")], packets_per_thread=3)
    out = stored(run)
    for base, size in zip(wl.bases, wl.payload_words):
        m = mem.read_block(base + 1, 16)
        digest = md5_digest(m)
        addr = base + size
        for j, value in enumerate(digest):
            assert out[addr + 1 + j] == value


# ----------------------------------------------------------------------
# fir2dim: 3x3 convolution outputs.
# ----------------------------------------------------------------------
def test_fir2dim_golden():
    mem, wl = packets()
    run = run_reference([load("fir2dim")], packets_per_thread=3)
    out = stored(run)
    for base, size in zip(wl.bases, wl.payload_words):
        px = mem.read_block(base + 1, IMAGE_DIM * IMAGE_DIM)
        addr = base + size
        n = 0
        for r in range(IMAGE_DIM - 2):
            for c in range(IMAGE_DIM - 2):
                acc = 0
                for dr in range(3):
                    for dc in range(3):
                        tap = dr * 3 + dc
                        word = (r + dr) * IMAGE_DIM + (c + dc)
                        acc = (acc + px[word] * COEFFS[tap]) & MASK
                assert out[addr + 1 + n] == acc
                n += 1


# ----------------------------------------------------------------------
# url: byte-pattern counting.
# ----------------------------------------------------------------------
def test_url_golden():
    from repro.suite.url import PATTERN

    mem, wl = packets()
    run = run_reference([load("url")], packets_per_thread=3)
    out = stored(run)
    for base, size in zip(wl.bases, wl.payload_words):
        words = mem.read_block(base + 1, size)
        partial = 0
        hits = 0
        for w in words:
            bs = [(w >> (8 * k)) & 0xFF for k in range(4)]
            partial += sum(1 for b in bs if b == PATTERN[0])
            if bs == PATTERN:
                hits += 1
        addr = base + size
        assert out[addr + 1] == hits
        assert out[addr + 2] == partial


# ----------------------------------------------------------------------
# drr: deficit round robin against an SRAM model.
# ----------------------------------------------------------------------
def test_drr_golden():
    from repro.suite.drr import DEFICIT_BASE, N_FLOWS, QUANTUM

    mem, wl = packets()
    run = run_reference([load("drr")], packets_per_thread=3)
    out = stored(run)
    deficits = {}
    for base, size in zip(wl.bases, wl.payload_words):
        h1 = mem.read(base + 1)
        h2 = mem.read(base + 2)
        fid = h1 ^ h2
        fid ^= (fid << 13) & MASK
        fid &= MASK
        fid ^= fid >> 17
        fid ^= (fid << 5) & MASK
        fid &= MASK
        fid = (fid * QUANTUM) & MASK
        fid ^= fid >> 8
        fid &= N_FLOWS - 1
        deficit = deficits.get(fid, 0) + QUANTUM
        verdict = 0
        if deficit >= size:
            deficit -= size
            verdict = 1
        deficits[fid] = deficit
        addr = base + size
        assert out[addr + 1] == verdict
        assert out[addr + 2] == fid


# ----------------------------------------------------------------------
# ipchains: first matching rule (empty table -> rule 0 matches).
# ----------------------------------------------------------------------
def test_ipchains_golden_empty_table():
    mem, wl = packets()
    run = run_reference([load("ipchains")], packets_per_thread=3)
    out = stored(run)
    for base, size in zip(wl.bases, wl.payload_words):
        ports = mem.read(base + 3)
        # All-zero rules match everything: verdict = 0.
        tag = (0 << 8) | (ports & 0xFF)
        assert out[base + size + 1] == tag
