"""Property tests over register budgets: squeeze anywhere, stay correct."""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.intra import IntraAllocator
from repro.core.pipeline import (
    allocate_programs,
    allocate_with_spill_fallback,
)
from repro.ir.parser import parse_program
from repro.sim.run import outputs_match, run_reference, run_threads
from tests.conftest import FIG3_T1, FIG3_T2, MINI_KERNEL

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TEXTS = {"mini": MINI_KERNEL, "fig3a": FIG3_T1, "fig3b": FIG3_T2}


@SETTINGS
@given(
    st.lists(st.sampled_from(sorted(TEXTS)), min_size=1, max_size=3),
    st.integers(min_value=0, max_value=12),
)
def test_any_feasible_budget_is_correct(names, slack):
    programs = [parse_program(TEXTS[n], f"{n}{i}") for i, n in enumerate(names)]
    bounds = [estimate_bounds(analyze_thread(p)) for p in programs]
    floor = sum(b.min_pr for b in bounds) + max(
        b.min_r - b.min_pr for b in bounds
    )
    nreg = floor + slack
    out = allocate_programs([p.copy() for p in programs], nreg=nreg)
    assert out.total_registers <= nreg
    ref = run_reference(programs, packets_per_thread=2)
    got = run_threads(
        out.programs,
        packets_per_thread=2,
        nreg=nreg,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got)


@SETTINGS
@given(st.integers(min_value=0, max_value=6))
def test_spill_fallback_below_floor_is_correct(deficit):
    programs = [
        parse_program(MINI_KERNEL, "a"),
        parse_program(MINI_KERNEL, "b"),
    ]
    bounds = [estimate_bounds(analyze_thread(p)) for p in programs]
    floor = sum(b.min_pr for b in bounds) + max(
        b.min_r - b.min_pr for b in bounds
    )
    nreg = max(floor - deficit, 6)
    result = allocate_with_spill_fallback(
        [p.copy() for p in programs], nreg=nreg
    )
    assert result.outcome.total_registers <= nreg
    ref = run_reference(programs, packets_per_thread=2)
    got = run_threads(
        result.outcome.programs,
        packets_per_thread=2,
        nreg=nreg,
        assignment=result.outcome.assignment,
    )
    assert outputs_match(ref, got)


@SETTINGS
@given(st.data())
def test_intra_realize_any_feasible_point(data):
    program = parse_program(MINI_KERNEL, "k")
    an = analyze_thread(program)
    bounds = estimate_bounds(an)
    pr = data.draw(
        st.integers(min_value=bounds.min_pr, max_value=bounds.max_pr)
    )
    sr_lo = max(bounds.min_r - pr, 0)
    sr_hi = max(bounds.max_r - pr, sr_lo)
    sr = data.draw(st.integers(min_value=sr_lo, max_value=sr_hi))
    alloc = IntraAllocator(an, bounds)
    ctx = alloc.realize(pr, sr)
    ctx.validate()
    assert (ctx.pr, ctx.sr) == (pr, sr)
