"""Unit tests for non-switch regions and boundary classification."""

import pytest

from repro.cfg.liveness import compute_liveness
from repro.cfg.nsr import compute_nsr
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program


def v(name):
    return VirtualReg(name)


def analyze(program):
    lv = compute_liveness(program)
    return lv, compute_nsr(lv)


def test_straight_two_regions(straight):
    lv, nsr = analyze(straight)
    # ctx at 1 and store at 4 cut the program into: [0], [2,3], [5]
    assert nsr.n_regions == 3
    assert nsr.nsr_of[1] is None  # the ctx belongs to no region
    assert nsr.nsr_of[4] is None  # the store belongs to no region


def test_boundary_and_internal(straight):
    lv, nsr = analyze(straight)
    assert v("a") in nsr.boundary
    assert v("b") in nsr.internal
    assert v("c") in nsr.internal


def test_internal_node_has_single_region(straight):
    lv, nsr = analyze(straight)
    assert nsr.nsr_of_internal[v("b")] == nsr.nsr_of_internal[v("c")]


def test_fig3_classification(fig3_t1):
    lv, nsr = analyze(fig3_t1)
    assert v("a") in nsr.boundary
    assert v("b") in nsr.internal and v("c") in nsr.internal


def test_loop_joins_split_block_into_one_region():
    # The paper's Figure 4: both halves of a block can share an NSR
    # through a loop around the CSB.
    p = parse_program(
        """
        movi %i, 0
    loop:
        addi %i, %i, 1
        ctx
        blti %i, 5, loop
        halt
        """,
        "t",
    )
    lv, nsr = analyze(p)
    # Instructions 1 (addi) and 3 (blti) connect via the back edge.
    assert nsr.nsr_of[1] == nsr.nsr_of[3]


def test_entry_live_values_are_boundary():
    p = parse_program("store %x, [%x]\nhalt\n", "t")
    lv, nsr = analyze(p)
    assert v("x") in nsr.boundary


def test_csb_free_program_is_one_region():
    p = parse_program("movi %a, 1\nmovi %b, 2\nadd %a, %a, %b\nhalt\n", "t")
    lv, nsr = analyze(p)
    assert nsr.n_regions == 1
    assert nsr.boundary == frozenset()


def test_average_region_size(mini_kernel):
    lv, nsr = analyze(mini_kernel)
    assert nsr.average_region_size() == pytest.approx(
        sum(len(r) for r in nsr.regions) / nsr.n_regions
    )


def test_regions_partition_non_csb_instructions(mini_kernel):
    lv, nsr = analyze(mini_kernel)
    members = sorted(i for r in nsr.regions for i in r)
    non_csb = [
        i
        for i, ins in enumerate(mini_kernel.instrs)
        if not ins.is_csb
    ]
    assert members == non_csb
