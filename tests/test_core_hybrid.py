"""Tests for the spill-fallback hybrid allocation."""

import pytest

from repro.core.pipeline import (
    allocate_programs,
    allocate_with_spill_fallback,
)
from repro.errors import AllocationError
from repro.ir.parser import parse_program
from repro.sim.run import outputs_match, run_reference, run_threads
from tests.conftest import MINI_KERNEL


def kernels(n):
    return [parse_program(MINI_KERNEL, f"k{i}") for i in range(n)]


def test_no_spill_when_budget_sufficient():
    result = allocate_with_spill_fallback(kernels(2), nreg=32)
    assert result.total_spilled == 0
    assert result.outcome.total_registers <= 32


def test_fallback_engages_below_floor():
    programs = kernels(2)
    # Two kernels need 4+4 private plus 2 shared = 10 at their floors.
    with pytest.raises(AllocationError):
        allocate_programs([p.copy() for p in programs], nreg=8)
    result = allocate_with_spill_fallback(programs, nreg=8)
    assert result.total_spilled > 0
    assert result.outcome.total_registers <= 8


def test_fallback_output_preserves_semantics():
    programs = kernels(2)
    result = allocate_with_spill_fallback(programs, nreg=8)
    ref = run_reference(programs, packets_per_thread=3)
    got = run_threads(
        result.outcome.programs,
        packets_per_thread=3,
        nreg=8,
        assignment=result.outcome.assignment,
    )
    assert outputs_match(ref, got)


def test_truly_impossible_budget_still_raises():
    with pytest.raises(AllocationError):
        allocate_with_spill_fallback(
            kernels(2), nreg=3, max_spill_rounds=3
        )


def test_no_progress_round_raises_with_original_name(monkeypatch):
    # A spiller that returns no spills must fail fast in that round --
    # naming the ORIGINAL program (spill rounds rewrite the working
    # copy) and the round number -- not loop until max_spill_rounds.
    from types import SimpleNamespace

    import repro.baseline.chaitin as chaitin

    def no_op_spiller(program, target, spill_base=0):
        return program.copy(), None, SimpleNamespace(spilled=[])

    monkeypatch.setattr(chaitin, "spill_until_colorable", no_op_spiller)
    with pytest.raises(
        AllocationError,
        match=r"no progress on k0 in round 1/16",
    ):
        allocate_with_spill_fallback(kernels(2), nreg=8)


def test_non_convergence_names_spilled_threads(monkeypatch):
    # A spiller that claims progress but never lowers pressure must hit
    # the round limit and report how much each original thread spilled.
    from types import SimpleNamespace

    import repro.baseline.chaitin as chaitin

    def useless_spiller(program, target, spill_base=0):
        return program.copy(), None, SimpleNamespace(spilled=["%sum"])

    monkeypatch.setattr(chaitin, "spill_until_colorable", useless_spiller)
    with pytest.raises(
        AllocationError,
        match=r"did not converge in 3 rounds.*k0",
    ):
        allocate_with_spill_fallback(kernels(2), nreg=8, max_spill_rounds=3)


def test_floor_is_named_when_spilling_cannot_help():
    # A thread already at its register floor cannot be relieved by
    # spilling; the error names the thread and its floor immediately.
    from tests.conftest import STRAIGHT

    programs = [parse_program(STRAIGHT, f"s{i}") for i in range(2)]
    with pytest.raises(
        AllocationError, match=r"cannot reduce s0 below 2 registers"
    ):
        allocate_with_spill_fallback(programs, nreg=1, max_spill_rounds=4)
