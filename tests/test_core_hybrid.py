"""Tests for the spill-fallback hybrid allocation."""

import pytest

from repro.core.pipeline import (
    allocate_programs,
    allocate_with_spill_fallback,
)
from repro.errors import AllocationError
from repro.ir.parser import parse_program
from repro.sim.run import outputs_match, run_reference, run_threads
from tests.conftest import MINI_KERNEL


def kernels(n):
    return [parse_program(MINI_KERNEL, f"k{i}") for i in range(n)]


def test_no_spill_when_budget_sufficient():
    result = allocate_with_spill_fallback(kernels(2), nreg=32)
    assert result.total_spilled == 0
    assert result.outcome.total_registers <= 32


def test_fallback_engages_below_floor():
    programs = kernels(2)
    # Two kernels need 4+4 private plus 2 shared = 10 at their floors.
    with pytest.raises(AllocationError):
        allocate_programs([p.copy() for p in programs], nreg=8)
    result = allocate_with_spill_fallback(programs, nreg=8)
    assert result.total_spilled > 0
    assert result.outcome.total_registers <= 8


def test_fallback_output_preserves_semantics():
    programs = kernels(2)
    result = allocate_with_spill_fallback(programs, nreg=8)
    ref = run_reference(programs, packets_per_thread=3)
    got = run_threads(
        result.outcome.programs,
        packets_per_thread=3,
        nreg=8,
        assignment=result.outcome.assignment,
    )
    assert outputs_match(ref, got)


def test_truly_impossible_budget_still_raises():
    with pytest.raises(AllocationError):
        allocate_with_spill_fallback(
            kernels(2), nreg=3, max_spill_rounds=3
        )
