"""Tests for algebraic simplification."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_instruction, parse_program
from repro.opt.algebraic import simplify_algebra
from repro.opt import optimize
from repro.sim.run import outputs_match, run_reference


@pytest.mark.parametrize(
    "before,after",
    [
        ("addi %d, %a, 0", "mov %d, %a"),
        ("subi %d, %a, 0", "mov %d, %a"),
        ("ori %d, %a, 0", "mov %d, %a"),
        ("xori %d, %a, 0", "mov %d, %a"),
        ("shli %d, %a, 0", "mov %d, %a"),
        ("muli %d, %a, 1", "mov %d, %a"),
        ("muli %d, %a, 0", "movi %d, 0"),
        ("muli %d, %a, 8", "shli %d, %a, 3"),
        ("andi %d, %a, 0", "movi %d, 0"),
        ("andi %d, %a, 0xFFFFFFFF", "mov %d, %a"),
        ("sub %d, %a, %a", "movi %d, 0"),
        ("xor %d, %a, %a", "movi %d, 0"),
        ("mov %d, %d", "nop"),
    ],
)
def test_identities(before, after):
    p = parse_program(f"movi %a, 5\n{before}\nstore %d, [%a]\nhalt\n", "t")
    out = simplify_algebra(p)
    assert str(out.instrs[1]) == str(parse_instruction(after))


@pytest.mark.parametrize(
    "instr",
    [
        "addi %d, %a, 1",
        "muli %d, %a, 3",
        "andi %d, %a, 0xFF",
        "sub %d, %a, %b",
    ],
)
def test_non_identities_untouched(instr):
    p = parse_program(
        f"movi %a, 5\nmovi %b, 6\n{instr}\nstore %d, [%a]\nhalt\n", "t"
    )
    out = simplify_algebra(p)
    assert str(out.instrs[2]) == str(parse_instruction(instr))


def test_semantics_preserved_through_full_pipeline():
    p = parse_program(
        """
        recv %x
        muli %y, %x, 16
        addi %y, %y, 0
        andi %z, %y, 0xFFFFFFFF
        sub %w, %z, %z
        add %out, %z, %w
        store %out, [%x + 1]
        send %x
        halt
        """,
        "t",
    )
    out = optimize(p)
    assert len(out.instrs) < len(p.instrs)
    a = run_reference([p], packets_per_thread=2)
    b = run_reference([out], packets_per_thread=2)
    assert outputs_match(a, b)
    assert out.count_opcode(Opcode.MUL) == 0
    assert out.count_opcode(Opcode.MULI) == 0
