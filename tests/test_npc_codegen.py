"""Semantics tests for the npc code generator.

Programs are compiled to npir, executed on the simulator, and their
results compared against evaluating the same source in Python (a tiny
reference interpreter over the AST).
"""

import pytest

from repro.npc import ast, compile_source
from repro.npc.codegen import compile_to_text
from repro.npc.lexer import NpcSyntaxError
from repro.npc.parser import parse
from repro.sim.machine import Machine
from repro.sim.memory import Memory

MASK = 0xFFFFFFFF


# ----------------------------------------------------------------------
# A reference interpreter for the npc AST.
# ----------------------------------------------------------------------
class PyEval:
    def __init__(self, memory=None, packets=()):
        self.vars = {}
        self.memory = dict(memory or {})
        self.packets = list(packets)
        self.sent = []
        self.halted = False

    def expr(self, e):
        if isinstance(e, ast.Number):
            return e.value & MASK
        if isinstance(e, ast.Name):
            return self.vars.get(e.ident, 0)
        if isinstance(e, ast.Recv):
            return self.packets.pop(0) if self.packets else 0
        if isinstance(e, ast.MemRead):
            return self.memory.get(self.expr(e.addr) & MASK, 0)
        if isinstance(e, ast.Unary):
            v = self.expr(e.operand)
            if e.op == "-":
                return (-v) & MASK
            if e.op == "~":
                return v ^ MASK
            return 0 if v else 1
        assert isinstance(e, ast.Binary)
        if e.op == "&&":
            return 1 if self.expr(e.left) and self.expr(e.right) else 0
        if e.op == "||":
            return 1 if self.expr(e.left) or self.expr(e.right) else 0
        a, b = self.expr(e.left), self.expr(e.right)
        ops = {
            "+": lambda: (a + b) & MASK,
            "-": lambda: (a - b) & MASK,
            "*": lambda: (a * b) & MASK,
            "&": lambda: a & b,
            "|": lambda: a | b,
            "^": lambda: a ^ b,
            "<<": lambda: (a << (b & 31)) & MASK,
            ">>": lambda: a >> (b & 31),
            "==": lambda: 1 if a == b else 0,
            "!=": lambda: 1 if a != b else 0,
            "<": lambda: 1 if a < b else 0,
            "<=": lambda: 1 if a <= b else 0,
            ">": lambda: 1 if a > b else 0,
            ">=": lambda: 1 if a >= b else 0,
        }
        return ops[e.op]()

    class _Break(Exception):
        pass

    class _Continue(Exception):
        pass

    class _Halt(Exception):
        pass

    def stmt(self, s):
        if isinstance(s, ast.Assign):
            self.vars[s.target] = self.expr(s.value)
        elif isinstance(s, ast.MemWrite):
            self.memory[self.expr(s.addr) & MASK] = self.expr(s.value)
        elif isinstance(s, ast.Send):
            self.sent.append(self.expr(s.value))
        elif isinstance(s, ast.CtxSwitch):
            pass
        elif isinstance(s, ast.Halt):
            raise self._Halt()
        elif isinstance(s, ast.If):
            body = s.then_body if self.expr(s.cond) else s.else_body
            for inner in body:
                self.stmt(inner)
        elif isinstance(s, ast.While):
            while self.expr(s.cond):
                try:
                    for inner in s.body:
                        try:
                            self.stmt(inner)
                        except self._Continue:
                            break
                except self._Break:
                    break
        elif isinstance(s, ast.Break):
            raise self._Break()
        elif isinstance(s, ast.Continue):
            raise self._Continue()
        elif isinstance(s, ast.ExprStmt):
            self.expr(s.value)

    def run(self, source):
        try:
            for s in parse(source).body:
                self.stmt(s)
        except self._Halt:
            pass
        return self


def run_compiled(source, memory=None, packets=(), optimize=True):
    program = compile_source(source, "t", optimize=optimize)
    mem = Memory()
    for addr, value in (memory or {}).items():
        mem.write(addr, value)
    machine = Machine([program], memory=mem)
    machine.threads[0].in_queue = list(packets)
    machine.run()
    return machine


def assert_equivalent(source, memory=None, packets=(), check_vars=()):
    """Compare simulator behaviour (raw and optimized compilations)
    against the Python reference interpreter.

    Observable state is memory and the send queue; named variables are
    checked only on the unoptimized build (the optimizer may legitimately
    eliminate a variable whose value went straight to memory).
    """
    py = PyEval(memory, packets).run(source)
    raw = run_compiled(source, memory, packets, optimize=False)
    for name in check_vars:
        assert raw.threads[0].vregs.get(name, 0) == py.vars.get(name, 0), name
    for machine in (raw, run_compiled(source, memory, packets)):
        for addr, value in py.memory.items():
            if (memory or {}).get(addr) != value:
                assert machine.memory.read(addr) == value, hex(addr)
        assert machine.threads[0].out_queue == py.sent


@pytest.mark.parametrize(
    "expr",
    [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "100 - 42 - 8",
        "0xFF & 0x0F | 0xF0",
        "1 << 16 >> 4",
        "5 ^ 3",
        "-7 + 10",
        "~0 - 1",
        "!0 + !5",
        "3 < 4",
        "4 <= 4",
        "5 > 6",
        "7 >= 7",
        "1 == 1 && 2 == 3",
        "0 || 42 != 0",
        "(1 < 2) + (3 > 4) + (5 == 5)",
    ],
)
def test_expression_equivalence(expr):
    src = f"x = {expr}; mem[100] = x; halt();"
    assert_equivalent(src, check_vars=["x"])


def test_if_else_paths():
    for a in (1, 5, 9):
        src = f"""
        a = {a};
        if (a < 3) {{ r = 10; }} else if (a < 7) {{ r = 20; }} else {{ r = 30; }}
        mem[50] = r;
        halt();
        """
        assert_equivalent(src, check_vars=["r"])


def test_while_accumulation():
    src = """
    i = 0; total = 0;
    while (i < 10) { i = i + 1; total = total + i * i; }
    mem[10] = total;
    halt();
    """
    assert_equivalent(src, check_vars=["total"])


def test_break_and_continue():
    src = """
    i = 0; s = 0;
    while (1) {
        i = i + 1;
        if (i > 10) break;
        if (i & 1) continue;
        s = s + i;
    }
    mem[11] = s;
    halt();
    """
    assert_equivalent(src, check_vars=["s"])


def test_memory_and_packets():
    src = """
    while (1) {
        p = recv();
        if (p == 0) break;
        mem[p + 1] = mem[p] * 2 + 1;
        send(p);
    }
    halt();
    """
    memory = {200: 5, 300: 9}
    assert_equivalent(src, memory=memory, packets=[200, 300])


def test_short_circuit_side_effect_safety():
    # && must not evaluate the right side when the left is false: the
    # right side here is a recv() which would consume a packet.
    src = """
    a = 0;
    if (a != 0 && recv() != 0) { x = 1; } else { x = 2; }
    mem[20] = x;
    halt();
    """
    machine = run_compiled(src, packets=[777])
    assert machine.threads[0].in_pos == 0  # nothing consumed
    assert machine.memory.read(20) == 2


def test_offset_folding_emits_compact_loads():
    text = compile_to_text("x = mem[p + 3]; mem[p + 4] = x; halt();")
    assert "[%p + 3]" in text
    assert "[%p + 4]" in text


def test_break_outside_loop_rejected():
    with pytest.raises(NpcSyntaxError):
        compile_source("break;")


def test_compiled_program_validates():
    p = compile_source("x = 1; mem[10] = x; halt();")
    assert p.instrs[-1].opcode.value == "halt"
