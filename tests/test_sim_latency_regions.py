"""Tests for address-dependent memory latency (SRAM vs SDRAM regions)."""

from repro.ir.parser import parse_program
from repro.sim.machine import Machine
from repro.sim.memory import Memory


def run_with(regions, text):
    p = parse_program(text, "t")
    machine = Machine([p], memory=Memory(), latency_regions=regions)
    stats = machine.run()
    return stats


SRAM_ACCESS = """
    movi %p, 100
    load %v, [%p]
    store %v, [%p + 1]
    halt
"""

SDRAM_ACCESS = """
    movi %p, 5000
    load %v, [%p]
    store %v, [%p + 1]
    halt
"""


def test_default_latency_without_regions():
    a = run_with(None, SRAM_ACCESS)
    b = run_with(None, SDRAM_ACCESS)
    assert a.cycles == b.cycles


def test_region_latency_applies():
    regions = [(0, 1024, 5), (4096, 8192, 40)]
    fast = run_with(regions, SRAM_ACCESS)
    slow = run_with(regions, SDRAM_ACCESS)
    # Two memory ops each: (40 - 5) * 2 extra cycles for the SDRAM path.
    assert slow.cycles - fast.cycles == 2 * 35


def test_first_region_wins():
    regions = [(0, 10_000, 3), (0, 10_000, 50)]
    a = run_with(regions, SRAM_ACCESS)
    b = run_with([(0, 10_000, 3)], SRAM_ACCESS)
    assert a.cycles == b.cycles


def test_unmatched_addresses_use_default():
    regions = [(0, 50, 2)]
    a = run_with(regions, SDRAM_ACCESS)
    b = run_with(None, SDRAM_ACCESS)
    assert a.cycles == b.cycles


def test_latency_hiding_still_works_with_regions():
    src = SDRAM_ACCESS
    regions = [(4096, 8192, 60)]
    solo = Machine(
        [parse_program(src, "solo")], latency_regions=regions
    )
    s1 = solo.run()
    duo = Machine(
        [parse_program(src, "a"), parse_program(src, "b")],
        latency_regions=regions,
    )
    s2 = duo.run()
    assert s2.cycles < 2 * s1.cycles
