"""Unit tests for liveness analysis and pressure metrics."""

from repro.cfg.liveness import (
    co_live_pairs,
    compute_liveness,
    occupied_slots,
)
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program


def v(name):
    return VirtualReg(name)


def test_straight_line_liveness(straight):
    lv = compute_liveness(straight)
    # %a is live across the ctx (defined before, used after).
    ctx_index = 1
    assert v("a") in lv.live_out[ctx_index]
    assert v("a") in lv.live_across_csb(ctx_index)
    # %c is dead after the store.
    store_index = 4
    assert v("c") not in lv.live_out[store_index]


def test_load_destination_not_live_across(fig3_t1):
    lv = compute_liveness(fig3_t1)
    load_index = next(
        i for i, ins in enumerate(fig3_t1.instrs) if ins.opcode.value == "load"
    )
    assert v("y") not in lv.live_across_csb(load_index)


def test_entry_live_empty_for_initialised_program(mini_kernel):
    lv = compute_liveness(mini_kernel)
    assert lv.entry_live() == frozenset()


def test_entry_live_detects_external_values():
    p = parse_program("add %x, %in1, %in2\nstore %x, [%in1]\nhalt\n", "t")
    lv = compute_liveness(p)
    assert lv.entry_live() == {v("in1"), v("in2")}


def test_reg_p_max_counts_colive(fig3_t1):
    lv = compute_liveness(fig3_t1)
    # The paper: at most two variables are co-live at any point.
    assert lv.reg_p_max() == 2


def test_reg_p_csb_max(fig3_t1):
    lv = compute_liveness(fig3_t1)
    # Only %a is live across a CSB.
    assert lv.reg_p_csb_max() == 1


def test_co_live_pairs_triangle(fig3_t1):
    pairs = co_live_pairs(compute_liveness(fig3_t1))

    def has(a, b):
        return (v(a), v(b)) in pairs or (v(b), v(a)) in pairs

    assert has("a", "b") and has("a", "c") and has("b", "c")


def test_mov_source_dying_does_not_interfere():
    p = parse_program(
        "movi %a, 1\nmov %b, %a\nstore %b, [%b]\nhalt\n", "t"
    )
    pairs = co_live_pairs(compute_liveness(p))
    assert (v("a"), v("b")) not in pairs and (v("b"), v("a")) not in pairs


def test_dead_def_interferes_with_live_values():
    p = parse_program(
        "movi %a, 1\nmovi %dead, 9\nstore %a, [%a]\nhalt\n", "t"
    )
    pairs = co_live_pairs(compute_liveness(p))
    assert (v("a"), v("dead")) in pairs or (v("dead"), v("a")) in pairs


def test_occupied_slots(straight):
    lv = compute_liveness(straight)
    slots = occupied_slots(lv, v("a"))
    # defined at 0, live into 1..4 (last use at the store, index 4)
    assert slots == frozenset({0, 1, 2, 3, 4})


def test_loop_keeps_values_live(mini_kernel):
    lv = compute_liveness(mini_kernel)
    loop_head = mini_kernel.labels["loop"]
    assert v("sum") in lv.live_in[loop_head]
    assert v("buf") in lv.live_in[loop_head]
