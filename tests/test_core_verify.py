"""Tests for the independent allocation verifier.

The verifier must pass clean allocator output (including every suite
kernel at its Table-2 lower bound) and fail hand-tampered outcomes,
naming the violated check.
"""

import dataclasses

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.pipeline import allocate_programs
from repro.core.verify import verify_outcome
from repro.errors import VerificationError
from repro.ir.parser import parse_program
from repro.obs import events
from repro.suite.registry import BENCHMARKS, load
from tests.conftest import FIG3_T1, FIG3_T2, MINI_KERNEL


def _two_thread_outcome(nreg=24):
    programs = [
        parse_program(FIG3_T1, "fig3_t1"),
        parse_program(FIG3_T2, "fig3_t2"),
    ]
    return allocate_programs(programs, nreg=nreg)


def test_clean_outcome_verifies():
    outcome = _two_thread_outcome()
    report = verify_outcome(outcome)
    assert report.ok
    assert not report.failures
    assert "PASS" in report.summary()
    names = [c.name for c in report.checks]
    assert names == [
        "layout.windows",
        "layout.budget",
        "rewrite.complete",
        "rewrite.ownership",
        "safety.csb_private",
        "semantics.differential",
    ]


def test_verify_emits_telemetry():
    outcome = _two_thread_outcome()
    with events.capture() as em:
        verify_outcome(outcome, check_semantics=False)
    assert any(e.name == "verify.outcome" for e in em.events)


def test_overlapping_windows_fail_layout():
    outcome = _two_thread_outcome()
    a = outcome.assignment
    # Slide thread 1's private window onto thread 0's.
    bad_maps = list(a.maps)
    bad_maps[1] = dataclasses.replace(bad_maps[1], private_base=a.maps[0].private_base)
    bad = dataclasses.replace(a, maps=bad_maps)
    tampered = dataclasses.replace(outcome, assignment=bad)
    with pytest.raises(VerificationError, match="layout.windows"):
        verify_outcome(tampered, check_semantics=False)
    report = verify_outcome(tampered, check_semantics=False, strict=False)
    assert not report.ok
    assert "layout.windows" in [c.name for c in report.failures]
    assert "FAIL" in report.summary()


def test_wrong_sgr_fails_budget():
    outcome = _two_thread_outcome()
    bad = dataclasses.replace(
        outcome.assignment, sgr=outcome.assignment.sgr + 3
    )
    report = verify_outcome(
        dataclasses.replace(outcome, assignment=bad),
        check_semantics=False,
        strict=False,
    )
    assert "layout.budget" in [c.name for c in report.failures]


def test_unrewritten_program_fails_completeness():
    outcome = _two_thread_outcome()
    tampered = dataclasses.replace(outcome, programs=outcome.source_programs)
    report = verify_outcome(tampered, check_semantics=False, strict=False)
    assert "rewrite.complete" in [c.name for c in report.failures]


def test_shrunken_window_fails_ownership():
    # Shrinking thread 0's private window orphans registers the rewrite
    # legitimately used: ownership (and usually the CSB invariant) must
    # fail even though the rewritten code itself is untouched.
    programs = [
        parse_program(MINI_KERNEL, "mini_a"),
        parse_program(MINI_KERNEL, "mini_b"),
    ]
    outcome = allocate_programs(programs, nreg=32)
    a = outcome.assignment
    assert a.maps[0].pr >= 2
    bad_maps = list(a.maps)
    bad_maps[0] = dataclasses.replace(bad_maps[0], pr=bad_maps[0].pr - 1)
    tampered = dataclasses.replace(
        outcome, assignment=dataclasses.replace(a, maps=bad_maps)
    )
    report = verify_outcome(tampered, check_semantics=False, strict=False)
    assert "rewrite.ownership" in [c.name for c in report.failures]


def test_misassigned_boundary_register_fails_csb_check():
    # Swap the two private windows without touching the rewritten code:
    # every value live across a CSB of thread 0 now sits in thread 1's
    # window, the paper's core invariant.
    outcome = _two_thread_outcome()
    a = outcome.assignment
    m0, m1 = a.maps
    bad_maps = [
        dataclasses.replace(m0, private_base=m1.private_base, pr=m1.pr),
        dataclasses.replace(m1, private_base=m0.private_base, pr=m0.pr),
    ]
    tampered = dataclasses.replace(
        outcome, assignment=dataclasses.replace(a, maps=bad_maps)
    )
    report = verify_outcome(tampered, check_semantics=False, strict=False)
    assert "safety.csb_private" in [c.name for c in report.failures]


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_suite_kernel_verifies_at_table2_lower_bound(name):
    program = load(name)
    bounds = estimate_bounds(analyze_thread(program))
    outcome = allocate_programs([program], nreg=bounds.min_r)
    report = verify_outcome(outcome, packets_per_thread=4)
    assert report.ok, report.summary()


def test_mini_kernel_pair_verifies_at_joint_bound():
    programs = [
        parse_program(MINI_KERNEL, "mini_a"),
        parse_program(MINI_KERNEL, "mini_b"),
    ]
    bounds = [estimate_bounds(analyze_thread(p)) for p in programs]
    sgr = max(b.min_r - b.min_pr for b in bounds)
    nreg = sum(b.min_pr for b in bounds) + sgr
    outcome = allocate_programs(programs, nreg=nreg)
    report = verify_outcome(outcome, packets_per_thread=4)
    assert report.ok, report.summary()
