"""Unit tests for operand value types."""

from repro.ir.operands import Imm, Label, PhysReg, VirtualReg, is_reg


def test_virtual_reg_str():
    assert str(VirtualReg("sum")) == "%sum"


def test_phys_reg_str():
    assert str(PhysReg(17)) == "$r17"


def test_imm_wraps_to_32_bits():
    assert Imm(-1).value == 0xFFFFFFFF
    assert Imm(2**32).value == 0
    assert Imm(2**32 + 5).value == 5


def test_imm_str():
    assert str(Imm(42)) == "42"


def test_operands_are_hashable_and_equal_by_value():
    assert VirtualReg("a") == VirtualReg("a")
    assert len({VirtualReg("a"), VirtualReg("a"), VirtualReg("b")}) == 2
    assert PhysReg(3) == PhysReg(3)
    assert PhysReg(3) != PhysReg(4)


def test_is_reg():
    assert is_reg(VirtualReg("a"))
    assert is_reg(PhysReg(0))
    assert not is_reg(Imm(1))
    assert not is_reg(Label("loop"))


def test_operands_are_orderable_within_type():
    assert VirtualReg("a") < VirtualReg("b")
    assert PhysReg(1) < PhysReg(2)
