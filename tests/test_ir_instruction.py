"""Unit tests for the Instruction value type."""

import pytest

from repro.errors import ValidationError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Label, PhysReg, VirtualReg


def v(name):
    return VirtualReg(name)


def test_defs_and_uses():
    i = Instruction(Opcode.ADD, (v("d"), v("a"), v("b")))
    assert i.defs == (v("d"),)
    assert i.uses == (v("a"), v("b"))
    assert i.regs == (v("d"), v("a"), v("b"))


def test_store_defs_empty():
    i = Instruction(Opcode.STORE, (v("x"), v("base"), Imm(0)))
    assert i.defs == ()
    assert i.uses == (v("x"), v("base"))


def test_operand_count_checked():
    with pytest.raises(ValidationError):
        Instruction(Opcode.ADD, (v("d"), v("a")))


def test_operand_kind_checked():
    with pytest.raises(ValidationError):
        Instruction(Opcode.ADD, (v("d"), v("a"), Imm(1)))
    with pytest.raises(ValidationError):
        Instruction(Opcode.MOVI, (v("d"), v("x")))
    with pytest.raises(ValidationError):
        Instruction(Opcode.BR, (v("d"),))


def test_target_of_branch():
    i = Instruction(Opcode.BEQI, (v("a"), Imm(0), Label("out")))
    assert i.target == Label("out")


def test_target_of_non_branch_raises():
    with pytest.raises(ValidationError):
        Instruction(Opcode.NOP, ()).target


def test_substitute_regs():
    i = Instruction(Opcode.ADD, (v("d"), v("a"), v("a")))
    j = i.substitute_regs({v("a"): PhysReg(1), v("d"): PhysReg(0)})
    assert j.operands == (PhysReg(0), PhysReg(1), PhysReg(1))


def test_substitute_regs_identity_returns_self():
    i = Instruction(Opcode.ADD, (v("d"), v("a"), v("b")))
    assert i.substitute_regs({v("zzz"): PhysReg(9)}) is i


def test_is_csb():
    assert Instruction(Opcode.CTX, ()).is_csb
    assert Instruction(Opcode.LOAD, (v("d"), v("b"), Imm(0))).is_csb
    assert not Instruction(Opcode.NOP, ()).is_csb


def test_str_is_parsable():
    from repro.ir.parser import parse_instruction

    i = Instruction(Opcode.SHRI, (v("a"), v("b"), Imm(16)))
    assert parse_instruction(str(i)) == i
