"""Differential tests: dense bitset analysis kernels vs the reference.

The dense implementation (:mod:`repro.core.dense`) promises *bit
identity*, not just semantic equivalence: every ``ThreadAnalysis``
field -- iteration orders included -- the renamed program, the bounds,
and the final allocations must match the reference set-based
construction exactly.  These tests compare the two implementations
field by field over every suite kernel, over randomly generated
programs (reusing the generators of ``tests/test_properties.py``), and
at the allocator-query level (``conflict_profile`` / ``conflicts_any``
vs the pointwise reference probes).
"""

from __future__ import annotations

import contextlib

import pytest

from repro.core.analysis import analyze_thread, true_conflict
from repro.core.bounds import estimate_bounds
from repro.core.context import initial_context
from repro.core.dense import (
    ANALYSIS_IMPLS,
    analysis_is_dense,
    get_default_analysis_impl,
    mask_of_slots,
    set_default_analysis_impl,
)
from repro.core.pipeline import allocate_programs
from repro.igraph.graph import UndirectedGraph
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program
from repro.ir.printer import format_program
from repro.suite.registry import BENCHMARKS, load


@contextlib.contextmanager
def using(impl):
    previous = set_default_analysis_impl(impl)
    try:
        yield
    finally:
        set_default_analysis_impl(previous)


# ---------------------------------------------------------------------------
# Registry


def test_registry_roundtrip():
    previous = get_default_analysis_impl()
    try:
        assert set_default_analysis_impl("reference") == previous
        assert get_default_analysis_impl() == "reference"
        assert not analysis_is_dense()
        assert set_default_analysis_impl("dense") == "reference"
        assert analysis_is_dense()
    finally:
        set_default_analysis_impl(previous)


def test_registry_rejects_unknown_name():
    with pytest.raises(ValueError):
        set_default_analysis_impl("sparse")
    assert get_default_analysis_impl() in ANALYSIS_IMPLS


def test_mask_of_slots():
    assert mask_of_slots([]) == 0
    assert mask_of_slots([0, 2, 5]) == 0b100101


# ---------------------------------------------------------------------------
# The conflict-mask formulas against the shared predicate


def test_mask_formulas_match_true_conflict():
    """Exhaustive check of the dense exclusion formulas.

    For every membership combination of two occupants ``a``/``b`` in a
    slot's def and dying sets, the mask branch the dense builders use
    (a def excludes dying-not-def; a dying use excludes defs; anyone
    else conflicts with all) must agree with :func:`true_conflict`.
    """
    a, b = VirtualReg("a"), VirtualReg("b")
    abit, bbit = 1, 2
    om = abit | bbit
    for a_def in (False, True):
        for a_dying in (False, True):
            for b_def in (False, True):
                for b_dying in (False, True):
                    defs = frozenset(
                        x for x, m in ((a, a_def), (b, b_def)) if m
                    )
                    dying = frozenset(
                        x for x, m in ((a, a_dying), (b, b_dying)) if m
                    )
                    dm = (abit if a_def else 0) | (bbit if b_def else 0)
                    dym = (abit if a_dying else 0) | (bbit if b_dying else 0)
                    if not (dm and dym):
                        conf = om  # clique fast path
                    elif dm & abit:
                        conf = om & ~(dym & ~dm)
                    elif dym & abit:
                        conf = om & ~dm
                    else:
                        conf = om
                    conf &= ~abit
                    assert bool(conf & bbit) == true_conflict(
                        a, b, defs, dying
                    ), (defs, dying)


# ---------------------------------------------------------------------------
# Field-by-field differential over the suite


def both_analyses(program):
    with using("reference"):
        ra = analyze_thread(program)
    with using("dense"):
        da = analyze_thread(program)
    return ra, da


def assert_analyses_identical(ra, da):
    # The renamed program (web renaming runs inside analyze_thread).
    assert ra.program.instrs == da.program.instrs
    assert ra.program.labels == da.program.labels
    # Liveness, exactly.
    assert ra.liveness.live_in == da.liveness.live_in
    assert ra.liveness.live_out == da.liveness.live_out
    # NSR classification.
    assert ra.nsr.boundary == da.nsr.boundary
    assert ra.nsr.internal == da.nsr.internal
    assert ra.nsr.nsr_of == da.nsr.nsr_of
    # Graphs: same node sets and adjacency, GIG/BIG/IIGs.
    for rg, dg in [
        (ra.graphs.gig, da.graphs.gig),
        (ra.graphs.big, da.graphs.big),
    ]:
        assert rg._adj == dg._adj
        assert rg.nodes() == dg.nodes()
        assert rg.edges() == dg.edges()
    assert set(ra.graphs.iigs) == set(da.graphs.iigs)
    for rid in ra.graphs.iigs:
        assert ra.graphs.iigs[rid]._adj == da.graphs.iigs[rid]._adj
    # The slot/conflict model, orders included (tuple equality is
    # order-sensitive; dict equality is not, which is fine -- lookups
    # never depend on dict order).
    assert ra.slots == da.slots
    assert ra.flow_edges == da.flow_edges
    assert ra.occupants == da.occupants
    assert ra.live_across == da.live_across
    assert ra.csb_slots_of == da.csb_slots_of
    assert ra.defs_at == da.defs_at
    assert ra.dying_at == da.dying_at
    assert ra.conflicts_at == da.conflicts_at
    # Derived indexes built lazily from the above.
    assert ra.conflict_pairs() == da.conflict_pairs()


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_suite_kernel_analyses_identical(name):
    ra, da = both_analyses(load(name))
    assert da.dense is not None and ra.dense is None
    assert_analyses_identical(ra, da)


@pytest.mark.parametrize("name", ["frag", "crc", "fir2dim"])
def test_bounds_and_allocation_identical(name):
    program = load(name)
    with using("reference"):
        rb = estimate_bounds(analyze_thread(program))
        rout = allocate_programs([program, program], nreg=64)
    with using("dense"):
        db = estimate_bounds(analyze_thread(program))
        dout = allocate_programs([program, program], nreg=64)
    assert rb.coloring == db.coloring
    assert (rb.min_pr, rb.max_pr, rb.min_r, rb.max_r) == (
        db.min_pr,
        db.max_pr,
        db.min_r,
        db.max_r,
    )
    assert rout.summary() == dout.summary()
    for rp, dp in zip(rout.programs, dout.programs):
        assert format_program(rp) == format_program(dp)


# ---------------------------------------------------------------------------
# Allocator-level queries: profile masks vs pointwise probes


def test_conflict_profile_and_conflicts_any_match_reference_probes():
    program = load("frag")
    with using("dense"):
        an = analyze_thread(program)
        b = estimate_bounds(an)
        ctx = initial_context(an, b.coloring, b.max_pr, b.max_r - b.max_pr)
        assert an.dense is not None
        pieces = list(ctx.all_pieces())
        # Split one range so both the split-other and split-self probe
        # paths run.
        for piece in pieces:
            if len(piece.slots) > 1:
                part = frozenset([min(piece.slots)])
                ctx.split_piece(piece, part, piece.color)
                break
        for piece in ctx.all_pieces():
            profile = ctx.conflict_profile(piece)
            for color in range(ctx.r):
                pointwise = ctx.conflicts_with_color(piece, color)
                assert ctx.conflicts_any(piece, color) == bool(pointwise)
                entry = profile.get(color)
                got = set() if entry is None else {p.pid for p in entry[0]}
                assert got == {p.pid for p, _ in pointwise}


def test_profile_entries_identical_across_impls():
    program = load("drr")

    def snapshot(impl):
        with using(impl):
            an = analyze_thread(program)
            b = estimate_bounds(an)
            ctx = initial_context(
                an, b.coloring, b.max_pr, b.max_r - b.max_pr
            )
            out = {}
            for piece in ctx.all_pieces():
                prof = ctx.conflict_profile(piece)
                out[(piece.reg, piece.pid)] = {
                    color: (tuple(e[0]), e[1]) for color, e in prof.items()
                }
            return out

    assert snapshot("reference") == snapshot("dense")


# ---------------------------------------------------------------------------
# Satellites: n_edges cache, precomputed def sets


def test_n_edges_cache_tracks_mutation():
    g = UndirectedGraph()
    for n in "abc":
        g.add_node(n)
    assert g.n_edges() == 0
    g.add_edge("a", "b")
    assert g.n_edges() == 1  # cache invalidated by the mutation
    assert g.n_edges() == 1  # and served from cache
    g.add_edge("b", "c")
    g.add_edge("a", "c")
    assert g.n_edges() == 3
    g.remove_edge("a", "b")
    assert g.n_edges() == 2
    g.remove_node("c")
    assert g.n_edges() == 0


def test_live_across_csb_uses_def_sets():
    text = """
        movi %a, 1
        movi %b, 2
        ctx
        add %c, %a, %b
        store %c, [%a]
        halt
    """
    program = parse_program(text, "t")
    from repro.cfg.liveness import compute_liveness

    with using("reference"):
        rl = compute_liveness(program)
    with using("dense"):
        dl = compute_liveness(program)
    for c in (2,):
        assert rl.live_across_csb(c) == dl.live_across_csb(c)
    # The lazily built def-set cache matches the instructions.
    assert rl.def_sets is not None or rl.live_across_csb(2) is not None
    for i, instr in enumerate(program.instrs):
        expected = frozenset(instr.defs)
        assert rl.def_sets is None or rl.def_sets[i] == expected


# ---------------------------------------------------------------------------
# Property-based differential over generated programs

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given  # noqa: E402

from tests.test_properties import (  # noqa: E402
    SETTINGS,
    branching_program,
    straightline_program,
)


@SETTINGS
@given(straightline_program())
def test_generated_straightline_identical(text):
    ra, da = both_analyses(parse_program(text, "gen"))
    assert_analyses_identical(ra, da)


@SETTINGS
@given(branching_program())
def test_generated_branching_identical(text):
    program = parse_program(text, "gen")
    ra, da = both_analyses(program)
    assert_analyses_identical(ra, da)
    with using("reference"):
        rb = estimate_bounds(analyze_thread(program))
    with using("dense"):
        db = estimate_bounds(analyze_thread(program))
    assert rb.coloring == db.coloring
    assert (rb.min_pr, rb.max_pr, rb.min_r, rb.max_r) == (
        db.min_pr,
        db.max_pr,
        db.min_r,
        db.max_r,
    )
