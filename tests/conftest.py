"""Shared fixtures: small, well-understood programs used across tests."""

from __future__ import annotations

import pytest

from repro.ir import parse_program

#: A loop-free two-NSR program (one ctx, one load).
STRAIGHT = """
    movi %a, 1
    ctx
    movi %b, 2
    add %c, %a, %b
    store %c, [%a + 4]
    halt
"""

#: The paper's Figure 3, thread 1: a live across ctx; b/c internal;
#: a-b-c form a GIG triangle while only two values are ever co-live.
FIG3_T1 = """
    movi %a, 1
    ctx
    bnei %a, 0, L1
    movi %b, 2
    add %x, %a, %b
    movi %c, 3
    br L2
L1:
    movi %c, 4
    add %x, %a, %c
    movi %b, 5
L2:
    add %x, %b, %c
    load %y, [%x]
    halt
"""

#: The paper's Figure 3, thread 2: d only live between switches.
FIG3_T2 = """
    movi %base, 64
    store %base, [%base]
    ctx
    movi %d, 7
    add %d, %d, %d
    store %d, [%base + 1]
    halt
"""

#: A small looping packet kernel (checksum) exercising recv/send.
MINI_KERNEL = """
start:
    recv %buf
    beqi %buf, 0, done
    load %len, [%buf]
    movi %sum, 0
    movi %i, 0
loop:
    bge %i, %len, fold
    addi %i, %i, 1
    add %t0, %buf, %i
    load %w, [%t0]
    add %sum, %sum, %w
    ctx
    br loop
fold:
    shri %hi, %sum, 16
    andi %lo, %sum, 0xFFFF
    add %sum, %hi, %lo
    store %sum, [%buf + 1]
    send %buf
    br start
done:
    halt
"""


@pytest.fixture
def straight():
    return parse_program(STRAIGHT, "straight")


@pytest.fixture
def fig3_t1():
    return parse_program(FIG3_T1, "fig3_t1")


@pytest.fixture
def fig3_t2():
    return parse_program(FIG3_T2, "fig3_t2")


@pytest.fixture
def mini_kernel():
    return parse_program(MINI_KERNEL, "mini_kernel")
