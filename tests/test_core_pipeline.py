"""Integration tests for the one-call allocation pipeline."""

import pytest

from repro.core.pipeline import allocate_programs
from repro.errors import AllocationError, ValidationError
from repro.ir.parser import parse_program
from repro.sim.run import outputs_match, run_reference, run_threads
from tests.conftest import FIG3_T2, MINI_KERNEL


def programs(n=4):
    return [parse_program(MINI_KERNEL, f"k{i}") for i in range(n)]


def test_pipeline_end_to_end():
    out = allocate_programs(programs(), nreg=128)
    assert out.total_registers <= 128
    ref = run_reference(out.source_programs, packets_per_thread=5)
    got = run_threads(
        out.programs, packets_per_thread=5, assignment=out.assignment
    )
    assert outputs_match(ref, got)


def test_pipeline_squeezed_budget():
    out = allocate_programs(programs(2), nreg=14)
    assert out.total_registers <= 14
    ref = run_reference(out.source_programs, packets_per_thread=5)
    got = run_threads(
        out.programs,
        packets_per_thread=5,
        nreg=14,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got)


def test_pipeline_validates_input():
    bad = parse_program("add %a, %b, %b\nhalt\n", "bad")
    with pytest.raises(ValidationError):
        allocate_programs([bad], nreg=16)


def test_pipeline_infeasible_budget():
    with pytest.raises(AllocationError):
        allocate_programs(programs(4), nreg=6)


def test_summary_mentions_threads():
    out = allocate_programs(programs(2), nreg=64)
    text = out.summary()
    assert "k0" in text and "k1" in text
    assert "SGR" in text


def test_mixed_workloads():
    mix = [
        parse_program(MINI_KERNEL, "kernel"),
        parse_program(FIG3_T2, "toy"),
    ]
    out = allocate_programs(mix, nreg=32)
    ref = run_reference(mix, packets_per_thread=4)
    got = run_threads(
        out.programs, packets_per_thread=4, assignment=out.assignment
    )
    assert outputs_match(ref, got)
