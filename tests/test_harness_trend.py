"""Tests for the regression sentinel (repro.harness.trend, bench trend)."""

import json

import pytest

from repro.harness import trend
from repro.obs import ledger


def _ledger_with(tmp_path, values, metric="sim.speedup", bench="perf"):
    path = tmp_path / "ledger.jsonl"
    rows = [
        ledger.make_row(bench, {metric: v}, ts=float(i))
        for i, v in enumerate(values)
    ]
    ledger.append(rows, path)
    return path


# ----------------------------------------------------------------------
# watched_from_bench
# ----------------------------------------------------------------------

def test_watched_from_bench_shapes():
    assert trend.watched_from_bench(
        "perf", {"rows": [], "summary": {"speedup": 5.8, "fast_ips": 2e6}}
    ) == {"sim.speedup": 5.8, "sim.fast_ips": 2e6}
    assert trend.watched_from_bench(
        "alloc", {"warm_speedup": 6.7, "parallel_speedup": 2.5}
    ) == {"alloc.warm_speedup": 6.7, "alloc.parallel_speedup": 2.5}
    assert trend.watched_from_bench(
        "analysis", {"analysis_speedup": 15.4, "e2e_speedup": 2.0}
    ) == {"analysis.speedup": 15.4, "analysis.e2e_speedup": 2.0}
    assert trend.watched_from_bench(
        "table1", [{"cycles_per_iter": 10.0}, {"cycles_per_iter": 5.0}]
    ) == {"table1.cycles_per_iter": 15.0}
    assert trend.watched_from_bench(
        "table2",
        [{"moves": 3, "overhead": 0.1}, {"moves": 1, "overhead": 0.4}],
    ) == {"table2.total_moves": 4.0, "table2.max_overhead": 0.4}
    assert trend.watched_from_bench(
        "table3",
        [{"threads": [{"cycle_change": 2.0}, {"cycle_change": 4.0}]}],
    ) == {"table3.cycle_change": 3.0}
    assert trend.watched_from_bench(
        "fig14", [{"saving": 2.0}, {"saving": 6.0}]
    ) == {"fig14.avg_saving": 4.0}


def test_watched_from_bench_tolerates_unknown_and_malformed():
    assert trend.watched_from_bench("ablation", {"whatever": 1}) == {}
    assert trend.watched_from_bench("perf", {"rows": []}) == {}
    assert trend.watched_from_bench("table1", [{"wrong_key": 1}]) == {}


def test_every_watched_metric_has_a_direction():
    assert set(trend.WATCHED.values()) <= {"higher", "lower"}


# ----------------------------------------------------------------------
# build_trends verdicts
# ----------------------------------------------------------------------

def test_planted_2x_slowdown_regresses(tmp_path):
    path = _ledger_with(tmp_path, [5.8, 5.9, 5.7, 5.8, 2.9])
    trends = trend.run_trend(
        ledger_path=path, out_dir=tmp_path, threshold_pct=10.0
    )
    (t,) = [t for t in trends if t.metric == "sim.speedup"]
    assert t.regressed
    assert t.latest == 2.9
    assert t.baseline == pytest.approx(5.8)
    assert t.change_pct == pytest.approx(-50.0, abs=1.0)


def test_clean_history_passes(tmp_path):
    path = _ledger_with(tmp_path, [5.8, 5.9, 5.7, 5.8, 5.85])
    trends = trend.run_trend(
        ledger_path=path, out_dir=tmp_path, threshold_pct=10.0
    )
    assert not any(t.regressed for t in trends)


def test_lower_is_better_direction(tmp_path):
    path = _ledger_with(
        tmp_path, [100.0, 101.0, 99.0, 250.0],
        metric="table2.total_moves", bench="table2",
    )
    trends = trend.run_trend(
        ledger_path=path, out_dir=tmp_path, threshold_pct=10.0
    )
    (t,) = [t for t in trends if t.metric == "table2.total_moves"]
    assert t.direction == "lower" and t.regressed
    # An improvement (drop) must not alarm.
    path2 = _ledger_with(
        tmp_path / "d2", [100.0, 101.0, 99.0, 50.0],
        metric="table2.total_moves", bench="table2",
    )
    trends2 = trend.run_trend(
        ledger_path=path2, out_dir=tmp_path / "d2", threshold_pct=10.0
    )
    (t2,) = [t for t in trends2 if t.metric == "table2.total_moves"]
    assert not t2.regressed


def test_noisy_history_widens_threshold(tmp_path):
    # Prior points jitter wildly; a 20% dip must not alarm at a 10%
    # requested threshold because 2x relative MAD exceeds it.
    path = _ledger_with(tmp_path, [4.0, 6.0, 5.0, 7.0, 3.0, 4.0])
    trends = trend.run_trend(
        ledger_path=path, out_dir=tmp_path, threshold_pct=10.0
    )
    (t,) = [t for t in trends if t.metric == "sim.speedup"]
    assert t.threshold_pct > 10.0
    assert not t.regressed


def test_single_point_never_gated(tmp_path):
    path = _ledger_with(tmp_path, [5.8])
    trends = trend.run_trend(
        ledger_path=path, out_dir=tmp_path, threshold_pct=10.0
    )
    (t,) = [t for t in trends if t.metric == "sim.speedup"]
    assert t.baseline is None and not t.regressed


def test_unwatched_metrics_are_ignored(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger.append(
        ledger.make_row("perf", {"made.up.metric": 1.0}, ts=0.0), path
    )
    assert trend.run_trend(ledger_path=path, out_dir=tmp_path) == []


def test_committed_snapshots_feed_the_baseline(tmp_path):
    (tmp_path / "BENCH_alloc.json").write_text(json.dumps({
        "schema": "repro.bench/1",
        "bench": "alloc",
        "data": {"warm_speedup": 6.7, "parallel_speedup": 2.5},
    }))
    path = _ledger_with(
        tmp_path, [6.6, 3.0], metric="alloc.warm_speedup", bench="alloc"
    )
    trends = trend.run_trend(
        ledger_path=path, out_dir=tmp_path, threshold_pct=10.0
    )
    (t,) = [t for t in trends if t.metric == "alloc.warm_speedup"]
    assert [p.source for p in t.points] == ["committed", "ledger", "ledger"]
    assert t.regressed


def test_trend_report_and_render(tmp_path):
    path = _ledger_with(tmp_path, [5.8, 2.9])
    trends = trend.run_trend(
        ledger_path=path, out_dir=tmp_path, threshold_pct=10.0
    )
    report = trend.trend_report(trends, 10.0)
    assert report["schema"] == trend.SCHEMA_TREND
    assert report["regressions"] == ["sim.speedup"]
    json.dumps(report, allow_nan=False)
    text = trend.render_trend(trends)
    assert "REGRESSIONS: sim.speedup" in text
    clean = trend.render_trend(
        trend.build_trends([], {}, threshold_pct=10.0)
    )
    assert "no regressions" in clean


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------

def test_cli_trend_gate_fails_on_planted_regression(tmp_path, capsys):
    from repro.cli import main

    path = _ledger_with(tmp_path, [5.8, 5.9, 5.7, 2.9])
    report = tmp_path / "TREND.json"
    rc = main([
        "bench", "trend", "--gate", "--threshold", "10",
        "--ledger", str(path), "--report", str(report),
    ])
    assert rc == 1
    captured = capsys.readouterr()
    assert "REGRESSIONS: sim.speedup" in captured.out
    assert "trend gate FAILED" in captured.err
    doc = json.loads(report.read_text())
    assert doc["regressions"] == ["sim.speedup"]


def test_cli_trend_gate_passes_on_clean_ledger(tmp_path, capsys):
    from repro.cli import main

    path = _ledger_with(tmp_path, [5.8, 5.9, 5.7, 5.8])
    rc = main([
        "bench", "trend", "--gate", "--threshold", "10",
        "--ledger", str(path), "--report", str(tmp_path / "TREND.json"),
    ])
    assert rc == 0
    assert "no regressions" in capsys.readouterr().out
