"""Unit tests for binary encoding/decoding."""

import pytest

from repro.core.pipeline import allocate_programs
from repro.errors import ValidationError
from repro.ir.encoding import (
    code_size_bytes,
    decode_program,
    encode_instruction,
    encode_program,
    same_code,
)
from repro.ir.parser import parse_instruction, parse_program
from repro.sim.run import outputs_match, run_reference, run_threads
from repro.suite.registry import BENCHMARKS, load
from tests.conftest import MINI_KERNEL


def phys_kernel():
    out = allocate_programs([parse_program(MINI_KERNEL, "k")], nreg=16)
    return out


def test_round_trip_simple():
    p = parse_program(
        "movi $r1, 5\naddi $r2, $r1, 3\nstore $r2, [$r1 + 1]\nhalt\n", "t"
    )
    assert same_code(p, decode_program(encode_program(p)))


def test_round_trip_branches_and_labels():
    p = parse_program(
        """
        movi $r0, 0
    loop:
        addi $r0, $r0, 1
        blti $r0, 5, loop
        beq $r0, $r0, out
        nop
    out:
        halt
        """,
        "t",
    )
    assert same_code(p, decode_program(encode_program(p)))


def test_round_trip_large_immediates_use_extension_word():
    p = parse_program("movi $r0, 0xDEADBEEF\nhalt\n", "t")
    words = encode_program(p)
    assert len(words) == 3  # movi takes 2 words, halt 1
    assert same_code(p, decode_program(words))


def test_small_immediates_fit_one_word():
    p = parse_program("movi $r0, 100\nhalt\n", "t")
    assert len(encode_program(p)) == 2


def test_round_trip_burst_ops():
    p = parse_program(
        "movi $r9, 64\n"
        "loadq $r0, $r1, $r2, $r3, [$r9 + 2]\n"
        "storeq $r3, $r2, $r1, $r0, [$r9 + 6]\n"
        "halt\n",
        "t",
    )
    assert same_code(p, decode_program(encode_program(p)))


def test_virtual_registers_rejected():
    i = parse_instruction("movi %v, 1")
    with pytest.raises(ValidationError):
        encode_instruction(i, {})


def test_decoded_program_executes_identically():
    out = phys_kernel()
    original = out.programs[0]
    decoded = decode_program(encode_program(original))
    ref = run_threads([original], packets_per_thread=4, nreg=16)
    got = run_threads([decoded], packets_per_thread=4, nreg=16)
    assert outputs_match(ref, got)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_round_trip_every_allocated_benchmark(name):
    out = allocate_programs([load(name)], nreg=128)
    program = out.programs[0]
    assert same_code(program, decode_program(encode_program(program)))


def test_code_size_accounting():
    p = parse_program("movi $r0, 1\nhalt\n", "t")
    assert code_size_bytes(p) == 16


def test_same_code_detects_differences():
    a = parse_program("movi $r0, 1\nhalt\n", "a")
    b = parse_program("movi $r0, 2\nhalt\n", "b")
    c = parse_program("movi $r1, 1\nhalt\n", "c")
    assert not same_code(a, b)
    assert not same_code(a, c)
    assert same_code(a, a)
