"""Unit tests for code rewriting and parallel-copy sequencing."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.assign import ThreadRegisterMap
from repro.core.intra import IntraAllocator
from repro.core.rewrite import rewrite_program, sequence_parallel_copy
from repro.errors import AllocationError
from repro.ir.opcodes import Opcode
from repro.ir.operands import PhysReg, VirtualReg
from repro.ir.parser import parse_program
from repro.ir.validate import validate_program
from repro.sim.run import outputs_match, run_reference, run_threads
from tests.conftest import FIG3_T1, MINI_KERNEL


def r(i):
    return PhysReg(i)


def test_sequence_simple_chain():
    # r1 <- r0, r2 <- r1 must read r1 before overwriting it.
    out = sequence_parallel_copy([(r(1), r(0)), (r(2), r(1))])
    assert [str(i) for i in out] == ["mov $r2, $r1", "mov $r1, $r0"]


def test_sequence_drops_identity():
    assert sequence_parallel_copy([(r(3), r(3))]) == []


def test_sequence_duplicate_dst_rejected():
    with pytest.raises(AllocationError):
        sequence_parallel_copy([(r(1), r(0)), (r(1), r(2))])


def test_sequence_swap_uses_xor():
    out = sequence_parallel_copy([(r(0), r(1)), (r(1), r(0))])
    assert all(i.opcode is Opcode.XOR for i in out)
    assert len(out) == 3


def test_sequence_three_cycle():
    out = sequence_parallel_copy([(r(0), r(1)), (r(1), r(2)), (r(2), r(0))])
    # Simulate the sequence over a toy register file.
    regs = {0: 100, 1: 101, 2: 102}

    def val(reg):
        return regs[reg.index]

    for instr in out:
        if instr.opcode is Opcode.MOV:
            d, s = instr.operands
            regs[d.index] = val(s)
        else:  # XOR
            d, a, b = instr.operands
            regs[d.index] = val(a) ^ val(b)
    assert regs == {0: 101, 1: 102, 2: 100}


def _rewrite(program_text, name, pr=None, sr=None):
    program = parse_program(program_text, name)
    an = analyze_thread(program)
    alloc = IntraAllocator(an)
    if pr is None:
        pr, sr = alloc.bounds.max_pr, alloc.bounds.max_sr
    ctx = alloc.realize(pr, sr)
    regmap = ThreadRegisterMap(
        private_base=0, pr=pr, sr=sr, shared_base=pr
    )
    out = rewrite_program(an, ctx, regmap)
    validate_program(out, check_init=False)
    return program, out, ctx


def test_rewrite_uses_only_physical_registers():
    program, out, ctx = _rewrite(MINI_KERNEL, "k")
    assert not out.virtual_regs()
    assert out.phys_regs()


def test_rewrite_no_moves_when_unsplit():
    program, out, ctx = _rewrite(MINI_KERNEL, "k")
    assert ctx.move_cost() == 0
    assert len(out.instrs) == len(program.instrs)


def test_rewrite_with_split_inserts_moves_and_preserves_semantics():
    program, out, ctx = _rewrite(FIG3_T1, "t", pr=1, sr=1)
    assert ctx.move_cost() >= 1
    assert out.count_opcode(Opcode.MOV) >= program.count_opcode(Opcode.MOV)
    a = run_reference([program])
    b = run_threads([out], nreg=4)
    assert outputs_match(a, b)


def test_rewrite_kernel_at_minimum_preserves_semantics():
    program = parse_program(MINI_KERNEL, "k")
    an = analyze_thread(program)
    alloc = IntraAllocator(an)
    b = alloc.bounds
    ctx = alloc.realize(b.min_pr, b.min_r - b.min_pr)
    regmap = ThreadRegisterMap(
        private_base=0, pr=ctx.pr, sr=ctx.sr, shared_base=ctx.pr
    )
    out = rewrite_program(an, ctx, regmap)
    validate_program(out, check_init=False)
    ref = run_reference([program], packets_per_thread=5)
    got = run_threads([out], packets_per_thread=5, nreg=b.min_r)
    assert outputs_match(ref, got)
