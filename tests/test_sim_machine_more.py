"""Additional simulator behaviour tests (queues, determinism, stats)."""

from repro.ir.parser import parse_program
from repro.sim.machine import Machine
from repro.sim.memory import Memory


DRAIN = """
start:
    recv %p
    beqi %p, 0, out
    send %p
    br start
out:
    halt
"""


def test_recv_returns_zero_on_empty_queue():
    p = parse_program(DRAIN, "t")
    machine = Machine([p])
    machine.threads[0].in_queue = [100, 200]
    machine.run()
    assert machine.threads[0].out_queue == [100, 200]
    assert machine.threads[0].stats.iterations == 2


def test_send_preserves_order():
    p = parse_program(DRAIN, "t")
    machine = Machine([p])
    machine.threads[0].in_queue = [5, 3, 9, 1]
    machine.run()
    assert machine.threads[0].out_queue == [5, 3, 9, 1]


def test_multithread_run_is_deterministic():
    def build():
        a = parse_program(DRAIN, "a")
        b = parse_program(DRAIN, "b")
        m = Machine([a, b])
        m.threads[0].in_queue = [10, 11]
        m.threads[1].in_queue = [20]
        return m

    s1 = build().run()
    s2 = build().run()
    assert s1.cycles == s2.cycles
    assert [t.busy_cycles for t in s1.threads] == [
        t.busy_cycles for t in s2.threads
    ]


def test_round_robin_is_fair_under_voluntary_switching():
    src = """
        movi %i, 0
    loop:
        addi %i, %i, 1
        ctx
        blti %i, 50, loop
        store %i, [%i]
        halt
    """
    machine = Machine([parse_program(src, "a"), parse_program(src, "b")])
    stats = machine.run()
    a, b = stats.threads
    assert abs(a.busy_cycles - b.busy_cycles) <= 4


def test_halted_thread_frees_the_pu():
    fast = parse_program("movi %x, 1\nhalt\n", "fast")
    slow = parse_program(
        "movi %i, 0\nl:\n addi %i, %i, 1\n blti %i, 200, l\n halt\n",
        "slow",
    )
    machine = Machine([fast, slow])
    stats = machine.run()
    # Nearly all cycles go to the slow thread after the fast one halts.
    assert stats.threads[1].busy_cycles > stats.threads[0].busy_cycles * 10


def test_store_log_matches_memory():
    p = parse_program(
        "movi %a, 7\nstore %a, [%a + 1]\nstore %a, [%a + 2]\nhalt\n", "t"
    )
    mem = Memory()
    machine = Machine([p], memory=mem)
    machine.run()
    assert machine.threads[0].stores == [(8, 7), (9, 7)]
    assert mem.read(8) == 7 and mem.read(9) == 7


def test_writeback_order_of_loadq_fields():
    mem = Memory()
    mem.write_block(40, [1, 2, 3, 4])
    p = parse_program(
        "movi %b, 40\nloadq %w, %x, %y, %z, [%b]\n"
        "store %w, [%b + 10]\nstore %z, [%b + 11]\nhalt\n",
        "t",
    )
    machine = Machine([p], memory=mem)
    machine.run()
    assert mem.read(50) == 1
    assert mem.read(51) == 4
