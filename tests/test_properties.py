"""Property-based tests (hypothesis) over randomly generated programs.

A small generator builds random-but-valid npir programs (structured
control flow, every register defined before use, terminating loops).  The
properties cover the pillars everything else rests on:

* liveness matches a brute-force path-based oracle on straight-line code;
* interference relations are symmetric and irreflexive;
* colorings produced by every heuristic are conflict-free;
* bounds are ordered (MinPR <= MaxPR, MinR <= MaxR, ...);
* the full allocation pipeline preserves observable semantics and
  respects the paranoid safety checker, at generous *and* minimal
  register budgets.
"""

from __future__ import annotations

from typing import List

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.analysis import analyze_thread
from repro.errors import SimulationError
from repro.core.bounds import estimate_bounds
from repro.core.pipeline import allocate_programs
from repro.cfg.liveness import co_live_pairs, compute_liveness
from repro.igraph.coloring import (
    dsatur_color,
    min_color,
    simplify_color,
    validate_coloring,
)
from repro.igraph.graph import UndirectedGraph
from repro.ir.parser import parse_program
from repro.ir.validate import validate_program
from repro.sim.run import outputs_match, run_reference, run_threads

REG_NAMES = ["a", "b", "c", "d", "e"]

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def straightline_program(draw):
    """A loop-free program where every use follows a def."""
    n = draw(st.integers(min_value=3, max_value=14))
    defined: List[str] = []
    lines: List[str] = []
    for i in range(n):
        choice = draw(st.integers(min_value=0, max_value=5))
        if choice <= 1 or not defined:
            reg = draw(st.sampled_from(REG_NAMES))
            lines.append(f"movi %{reg}, {draw(st.integers(0, 255))}")
            if reg not in defined:
                defined.append(reg)
        elif choice == 2 and len(defined) >= 2:
            d = draw(st.sampled_from(REG_NAMES))
            a = draw(st.sampled_from(defined))
            b = draw(st.sampled_from(defined))
            op = draw(st.sampled_from(["add", "sub", "xor", "and", "or"]))
            lines.append(f"{op} %{d}, %{a}, %{b}")
            if d not in defined:
                defined.append(d)
        elif choice == 3:
            lines.append("ctx")
        elif choice == 4:
            a = draw(st.sampled_from(defined))
            b = draw(st.sampled_from(defined))
            lines.append(f"store %{a}, [%{b} + {draw(st.integers(0, 7))}]")
        else:
            d = draw(st.sampled_from(REG_NAMES))
            a = draw(st.sampled_from(defined))
            lines.append(f"load %{d}, [%{a}]")
            if d not in defined:
                defined.append(d)
    # Guarantee something observable.
    if defined:
        lines.append(f"store %{defined[0]}, [%{defined[0]} + 1]")
    lines.append("halt")
    return "\n".join(lines)


@st.composite
def branching_program(draw):
    """A diamond+loop program, all registers defined on all paths."""
    init = [
        f"movi %{r}, {draw(st.integers(1, 9))}" for r in REG_NAMES[:4]
    ]
    body_a = draw(straightline_body(REG_NAMES[:4]))
    body_b = draw(straightline_body(REG_NAMES[:4]))
    loops = draw(st.integers(min_value=1, max_value=3))
    text = "\n".join(
        init
        + [f"movi %n, 0", "loop:"]
        + [f"beqi %a, {draw(st.integers(0, 3))}, alt"]
        + body_a
        + ["br join", "alt:"]
        + body_b
        + [
            "join:",
            "addi %n, %n, 1",
            f"blti %n, {loops}, loop",
            "store %a, [%b + 2]",
            "halt",
        ]
    )
    return text


@st.composite
def straightline_body(draw, regs):
    k = draw(st.integers(min_value=1, max_value=6))
    out = []
    for _ in range(k):
        c = draw(st.integers(0, 4))
        if c == 0:
            out.append("ctx")
        elif c == 1:
            a = draw(st.sampled_from(regs))
            b = draw(st.sampled_from(regs))
            out.append(f"store %{a}, [%{b} + {draw(st.integers(0, 3))}]")
        else:
            d = draw(st.sampled_from(regs))
            a = draw(st.sampled_from(regs))
            b = draw(st.sampled_from(regs))
            op = draw(st.sampled_from(["add", "xor", "or", "and"]))
            out.append(f"{op} %{d}, %{a}, %{b}")
    return out


def reference_or_assume(programs):
    """Reference-run ``programs``, skipping examples whose *source*
    program already faults (e.g. a generated ``store`` whose computed
    address falls outside memory).  The semantics properties compare a
    transformation against the original -- a faulting original tells us
    nothing about the transformation."""
    try:
        return run_reference(programs)
    except SimulationError:
        assume(False)


def brute_force_live_in(program):
    """Oracle for straight-line code: walk backwards."""
    n = len(program.instrs)
    live = set()
    live_in = [None] * n
    for i in range(n - 1, -1, -1):
        instr = program.instrs[i]
        live -= set(instr.defs)
        live |= set(instr.uses)
        live_in[i] = frozenset(live)
    return live_in


@SETTINGS
@given(straightline_program())
def test_liveness_matches_bruteforce_on_straightline(text):
    program = parse_program(text, "gen")
    if any(program.successors(i) != (i + 1,) for i in range(len(program) - 1)):
        return  # only straight-line oracles here
    lv = compute_liveness(program)
    oracle = brute_force_live_in(program)
    for i in range(len(program.instrs)):
        assert lv.live_in[i] == oracle[i]


@SETTINGS
@given(straightline_program())
def test_interference_symmetric_irreflexive(text):
    program = parse_program(text, "gen")
    pairs = co_live_pairs(compute_liveness(program))
    for a, b in pairs:
        assert a != b


@SETTINGS
@given(branching_program())
def test_bounds_ordering(text):
    program = parse_program(text, "gen")
    validate_program(program)
    b = estimate_bounds(analyze_thread(program))
    assert 0 <= b.min_pr <= b.max_pr <= b.max_r
    assert b.min_pr <= b.min_r <= b.max_r


@SETTINGS
@given(branching_program())
def test_estimation_coloring_valid(text):
    program = parse_program(text, "gen")
    an = analyze_thread(program)
    b = estimate_bounds(an)
    validate_coloring(an.graphs.gig, b.coloring)
    for reg in an.graphs.boundary:
        assert b.coloring[reg] < b.max_pr


@SETTINGS
@given(branching_program())
def test_pipeline_preserves_semantics_generous(text):
    program = parse_program(text, "gen")
    validate_program(program)
    out = allocate_programs([program], nreg=64)
    ref = reference_or_assume([program])
    got = run_threads([out.programs[0]], assignment=out.assignment)
    assert outputs_match(ref, got)


@SETTINGS
@given(branching_program())
def test_pipeline_preserves_semantics_minimal(text):
    program = parse_program(text, "gen")
    validate_program(program)
    b = estimate_bounds(analyze_thread(program))
    nreg = b.min_r
    out = allocate_programs([program], nreg=nreg)
    assert out.total_registers <= nreg
    ref = reference_or_assume([program])
    got = run_threads(
        [out.programs[0]], nreg=nreg, assignment=out.assignment
    )
    assert outputs_match(ref, got)


@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    g = UndirectedGraph()
    for i in range(n):
        g.add_node(f"n{i}")
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                g.add_edge(f"n{i}", f"n{j}")
    return g


@SETTINGS
@given(random_graph())
def test_colorings_always_valid(g):
    for colorer in (dsatur_color, simplify_color, min_color):
        validate_coloring(g, colorer(g))


@SETTINGS
@given(random_graph())
def test_coloring_at_most_degree_plus_one(g):
    c = dsatur_color(g)
    if len(g):
        max_deg = max(g.degree(n) for n in g.nodes())
        assert len(set(c.values())) <= max_deg + 1


@SETTINGS
@given(branching_program())
def test_optimizer_preserves_semantics(text):
    from repro.opt import optimize

    program = parse_program(text, "gen")
    validate_program(program)
    out = optimize(program)
    validate_program(out, check_init=False)
    assert len(out.instrs) <= len(program.instrs)
    a = reference_or_assume([program])
    b = run_reference([out])
    assert outputs_match(a, b)


@SETTINGS
@given(straightline_program())
def test_optimizer_preserves_semantics_straightline(text):
    from repro.opt import optimize

    program = parse_program(text, "gen")
    out = optimize(program)
    a = reference_or_assume([program])
    b = run_reference([out])
    assert outputs_match(a, b)
