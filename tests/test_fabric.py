"""Tests for the sharded, resumable sweep fabric (``repro.fabric``).

Covers the three layers of the tentpole: content-addressed manifests
(stable ids, duplicate aliasing, stale-code refusal), the file-backed
claim protocol (exclusivity, dead-pid and ttl staleness, stealing), and
the resume/merge machinery -- including a Hypothesis property that a
run killed after *any* subset of items resumes by executing exactly the
complement, and a real kill-one-worker-mid-run integration test.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro import fabric
from repro.errors import FabricError
from repro.fabric import claims
from repro.fabric.manifest import (
    RunDir,
    affinity_key,
    build_manifest,
    item_id,
)
from repro.harness.sweep import sweep_map
from repro.obs import events, metrics


def _square(x):
    return x * x


def _metered_square(x):
    metrics.registry().counter("fabric_test.calls").inc()
    return x * x


def _boom(x):
    raise ValueError(f"boom at {x}")


def _slow_square(x):
    # Slow enough that a worker holding one of these can be killed
    # mid-item from the parent (the integration test below).
    time.sleep(0.25)
    return x * x


# -- manifests ---------------------------------------------------------


def test_item_id_content_addressed():
    # Same fn + item -> same id, across calls; any component changes it.
    assert item_id(_square, (1, 2)) == item_id(_square, (1, 2))
    assert item_id(_square, (1, 2)) != item_id(_square, (1, 3))
    assert item_id(_square, (1, 2)) != item_id(_metered_square, (1, 2))
    assert item_id(_square, 1, salt="a") != item_id(_square, 1, salt="b")
    # Floats are bit-exact, not repr-rounded.
    assert item_id(_square, 0.1 + 0.2) != item_id(_square, 0.3)


def test_item_id_uses_program_fingerprint(straight):
    # A Program contributes its content fingerprint: a reparsed copy of
    # the same source gets the identical id (no object identity).
    from repro.ir.parser import parse_program
    from repro.ir.printer import format_program

    clone = parse_program(format_program(straight), straight.name)
    assert item_id(_square, straight) == item_id(_square, clone)


def test_affinity_groups_kernels_not_budgets():
    # Same kernel at different budgets/thread-counts -> one worker;
    # different kernels -> (almost surely) different keys; items with
    # no content-bearing part spread by their whole token.
    a = affinity_key(_square, ("crc", 8, 2))
    assert a == affinity_key(_square, ("crc", 30, 4))
    assert a != affinity_key(_square, ("md5", 8, 2))
    assert affinity_key(_square, 1) != affinity_key(_square, 2)


def test_manifest_dedupes_aliases():
    m = build_manifest(_square, [3, 7, 3, 3], salt="s")
    entries = [e for e in m.items if "alias_of" not in e]
    aliases = [e for e in m.items if "alias_of" in e]
    assert len(entries) == 2 and len(aliases) == 2
    assert all(e["alias_of"] == 0 for e in aliases)
    assert m.manifest_id == build_manifest(
        _square, [3, 7, 3, 3], salt="s"
    ).manifest_id


def test_plan_refuses_foreign_run_dir(tmp_path):
    RunDir.plan(tmp_path, _square, [1, 2], salt="s")
    with pytest.raises(FabricError, match="different sweep"):
        RunDir.plan(tmp_path, _square, [1, 2, 3], salt="s")
    # A changed code salt is a different sweep too: stale-code refusal.
    with pytest.raises(FabricError, match="different sweep"):
        RunDir.plan(tmp_path, _square, [1, 2], salt="other")


def test_spool_roundtrip_and_json_mirror(tmp_path):
    run = RunDir.plan(tmp_path, _square, [(1, 2)], salt="s")
    entry = run.load_manifest().items[0]
    run.write_result(entry["id"], 0, {"a": 1}, worker="w", seconds=0.1)
    doc = run.read_result(entry["id"])
    assert run.result_value(doc) == {"a": 1}
    assert doc["json"] == {"a": 1}  # JSON-clean values get a mirror
    # Tuples don't JSON-roundtrip; only the pickle travels.
    run.write_result(entry["id"], 0, (1, 2), worker="w", seconds=0.1)
    doc = run.read_result(entry["id"])
    assert run.result_value(doc) == (1, 2)
    assert "json" not in doc


# -- claims ------------------------------------------------------------


def test_claims_are_exclusive(tmp_path):
    assert claims.try_claim(tmp_path, "i1", "a")
    assert not claims.try_claim(tmp_path, "i1", "b")
    claims.release(tmp_path, "i1")
    assert claims.try_claim(tmp_path, "i1", "b")


def test_fresh_claim_not_stolen(tmp_path):
    claims.try_claim(tmp_path, "i1", "a")
    assert not claims.is_stale(tmp_path, "i1", ttl=60.0)
    assert not claims.steal(tmp_path, "i1", "b", ttl=60.0)


def test_ttl_expiry_allows_steal(tmp_path):
    claims.try_claim(tmp_path, "i1", "a")
    assert claims.is_stale(tmp_path, "i1", ttl=0.0)
    assert claims.steal(tmp_path, "i1", "b", ttl=0.0)
    assert claims.read_claim(tmp_path, "i1")["worker"] == "b"


def test_dead_pid_is_immediately_stale(tmp_path):
    claims.try_claim(tmp_path, "i1", "a")
    # Rewrite the claim body to name a pid that cannot exist.
    path = claims.claim_path(tmp_path, "i1")
    doc = json.loads(path.read_text())
    doc["pid"] = 2 ** 22 + 1  # beyond default pid_max
    path.write_text(json.dumps(doc))
    assert claims.is_stale(tmp_path, "i1", ttl=3600.0)
    assert claims.steal(tmp_path, "i1", "b", ttl=3600.0)


# -- execute / resume / merge ------------------------------------------


def test_fabric_matches_serial(tmp_path):
    items = [5, 3, 5, 1, 0]  # includes a duplicate -> alias path
    run = RunDir.plan(tmp_path, _square, items)
    fabric.execute(run, workers=1)
    assert fabric.merge_results(run) == [_square(x) for x in items]


def test_multiworker_fabric_matches_serial(tmp_path):
    items = list(range(12))
    run = RunDir.plan(tmp_path, _square, items)
    fabric.execute(run, workers=3)
    assert fabric.merge_results(run) == [x * x for x in items]
    st = fabric.status(run)
    assert st["done"] == st["unique"] == 12 and st["missing"] == 0


def test_merge_strict_names_holes(tmp_path):
    run = RunDir.plan(tmp_path, _square, [1, 2, 3])
    with pytest.raises(FabricError, match="missing"):
        fabric.merge_results(run)
    results, done = fabric.partial_results(run)
    assert done == [False, False, False] and results == [None] * 3


def test_fn_error_propagates_and_releases_claim(tmp_path):
    run = RunDir.plan(tmp_path, _boom, [1])
    with pytest.raises(ValueError, match="boom"):
        fabric.execute(run, workers=1)
    # The claim came back: a retry fails the same way instead of
    # stalling behind a ttl.
    entry = run.load_manifest().items[0]
    assert not claims.claim_path(run.claims_dir, entry["id"]).exists()


def test_merge_restores_item_telemetry(tmp_path):
    # Telemetry-enabled parent: items execute under capture (so their
    # own metrics spool) and the merge restores them, labeled.
    items = [2, 4]
    run = RunDir.plan(tmp_path, _metered_square, items)
    with metrics.scoped() as reg, events.capture():
        fabric.execute(run, workers=1)
        assert fabric.merge_results(run) == [4, 16]
    counters = reg.snapshot()["counters"]
    merged = [
        k for k in counters
        if k.startswith("fabric_test.calls{") and "item=" in k
    ]
    assert len(merged) == 2


def test_sweep_map_fabric_opt_in_matches_serial(tmp_path):
    fabric.set_fabric(str(tmp_path))
    try:
        items = list(range(8))
        out = sweep_map(_square, items, jobs="fabric", label="optin")
        assert out == [x * x for x in items]
        runs = list(tmp_path.iterdir())
        assert len(runs) == 1 and runs[0].name.startswith("optin-")
        # Same sweep again resumes the same directory, executes nothing.
        before = {
            p.name: p.stat().st_mtime_ns
            for p in (runs[0] / "items").iterdir()
        }
        assert sweep_map(_square, items, jobs="fabric", label="optin") == out
        after = {
            p.name: p.stat().st_mtime_ns
            for p in (runs[0] / "items").iterdir()
        }
        assert after == before
    finally:
        fabric.set_fabric(None)


def test_sweep_map_falls_back_when_fabric_root_unusable(tmp_path):
    # A file where the root should be: planning fails, the sweep
    # degrades to the serial path and still returns correct results.
    root = tmp_path / "root"
    root.write_text("not a directory")
    fabric.set_fabric(str(root))
    try:
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = sweep_map(_square, [1, 2, 3], jobs=2, label="bad")
        assert out == [1, 4, 9]
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )
    finally:
        fabric.set_fabric(None)


# -- the resume property -----------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(pre_done=st.sets(st.integers(min_value=0, max_value=7)))
def test_resume_executes_exactly_the_complement(tmp_path_factory, pre_done):
    """Kill-anywhere durability: whatever subset of items a dead run
    left spooled, the resume executes exactly the complement -- verified
    by the per-item ``fabric.item.executed`` telemetry counters -- and
    the merge equals the serial sweep."""
    tmp = tmp_path_factory.mktemp("resume")
    items = list(range(8))
    run = RunDir.plan(tmp, _square, items)
    manifest = run.load_manifest()
    # Simulate the dead run: spool the pre-completed subset directly,
    # leave a claim on one unfinished item (killed mid-flight).
    for i in sorted(pre_done):
        entry = manifest.items[i]
        run.write_result(entry["id"], i, items[i] * items[i], "dead", 0.0)
    remaining = [e for e in manifest.items if e["index"] not in pre_done]
    if remaining:
        claims.try_claim(run.claims_dir, remaining[0]["id"], "dead-worker")

    # ttl=0: the orphan claim is stale immediately (its pid -- ours --
    # is alive, so only the ttl path can reap it in-process).
    fabric.execute(run, workers=1, ttl=0.0)
    assert fabric.merge_results(run) == [x * x for x in items]

    executed = 0
    for entry in manifest.items:
        if "alias_of" in entry:
            continue
        doc = run.read_result(entry["id"])
        count = (doc.get("metrics") or {}).get("counters", {}).get(
            "fabric.item.executed", 0
        )
        executed += count
        # Pre-spooled entries carry the fake doc untouched.
        assert count == (0 if entry["index"] in pre_done else 1)
    assert executed == len(items) - len(pre_done)


# -- kill a real worker mid-run ----------------------------------------


def test_killed_worker_is_stolen_from(tmp_path):
    """SIGKILL one of two real worker processes mid-item; the survivor
    (or the driver's finishing pass) steals the dead pid's claim and
    the run still completes, byte-identical to serial."""
    import multiprocessing as mp

    from repro.fabric.runner import _worker_entry

    items = list(range(6))
    run = RunDir.plan(tmp_path, _slow_square, items)
    p0 = mp.Process(
        target=_worker_entry, args=(str(tmp_path), 0, 2, 60.0), daemon=True
    )
    p1 = mp.Process(
        target=_worker_entry, args=(str(tmp_path), 1, 2, 60.0), daemon=True
    )
    p0.start()
    p1.start()
    # Wait for the victim to claim something, then kill it mid-item.
    deadline = time.time() + 30.0
    victim_claimed = False
    while time.time() < deadline and not victim_claimed:
        for entry in run.load_manifest().items:
            doc = claims.read_claim(run.claims_dir, entry["id"])
            if doc is not None and doc.get("pid") == p0.pid:
                victim_claimed = True
                break
        time.sleep(0.01)
    assert victim_claimed, "victim worker never claimed an item"
    os.kill(p0.pid, signal.SIGKILL)
    p0.join(timeout=10.0)

    # The survivor drains its shard and steals the dead pid's claim
    # (immediately stale on this host -- no ttl wait).
    p1.join(timeout=60.0)
    assert p1.exitcode == 0
    run_worker_missing = run.missing()
    if run_worker_missing:
        # The survivor exited before the corpse's claim went stale-by-
        # scan order; the driver's finishing pass handles this case.
        fabric.execute(run, workers=1, ttl=60.0)
    assert fabric.merge_results(run) == [x * x for x in items]
    st = fabric.status(run)
    assert st["missing"] == 0
