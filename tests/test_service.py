"""The allocation service: protocol, admission, coalescing, store,
breakers, the core lifecycle, and the HTTP frontend.

The headline robustness invariants gated here:

* every successful response's ``result`` is byte-identical to a direct
  :func:`repro.core.pipeline.allocate_programs` call;
* every failure is a typed envelope (never a hang, never an untyped
  500);
* overload sheds immediately with ``retry_after`` (hypothesis drives
  the FIFO-within-priority + shed-exactly-at-bound property);
* identical concurrent requests share exactly one pipeline execution;
* a restarted service replays completed results from the
  content-addressed store without recomputing.
"""

import json
import pathlib
import threading
import time

import pytest

from repro.core.pipeline import allocate_programs
from repro.errors import (
    AllocationError,
    DeadlineExceeded,
    RequestRejected,
    ServiceOverloaded,
)
from repro.ir.parser import parse_program
from repro.obs import metrics as obs_metrics
from repro.resilience import guard
from repro.resilience.guard import backoff_delays
from repro.service import protocol
from repro.service.admission import AdmissionQueue
from repro.service.breaker import CircuitBreaker
from repro.service.coalesce import Coalescer
from repro.service.server import ReproServer, ServiceConfig, ServiceCore
from repro.service.store import ResultStore
from tests.conftest import FIG3_T1, MINI_KERNEL

NREG = 32


def doc_for(*, nreg=NREG, **extra):
    d = {"programs": [{"asm": MINI_KERNEL, "name": "k"}], "nreg": nreg}
    d.update(extra)
    return d


def direct_payload(nreg=NREG):
    return protocol.outcome_payload(
        allocate_programs([parse_program(MINI_KERNEL, "k")], nreg)
    )


# ----------------------------------------------------------------------
# Protocol.
# ----------------------------------------------------------------------
class TestProtocol:
    def test_defaults_materialize_into_the_key(self):
        bare = protocol.parse_request(doc_for())
        spelled = protocol.parse_request(
            doc_for(policy="greedy", check_init=True, simulate=0,
                    engine="reference", verify=False)
        )
        assert bare.key == spelled.key
        assert bare.options == spelled.options

    def test_distinct_options_distinct_keys(self):
        assert protocol.parse_request(doc_for()).key != \
            protocol.parse_request(doc_for(nreg=NREG + 8)).key
        assert protocol.parse_request(doc_for()).key != \
            protocol.parse_request(doc_for(simulate=4)).key

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestRejected) as ei:
            protocol.parse_request(doc_for(bogus=1))
        assert ei.value.reason == "bad-field"

    def test_kernel_xor_asm(self):
        with pytest.raises(RequestRejected):
            protocol.parse_request(
                {"programs": [{"kernel": "crc", "asm": MINI_KERNEL}]}
            )
        with pytest.raises(RequestRejected):
            protocol.parse_request({"programs": [{}]})

    def test_too_many_programs_is_too_large(self):
        docs = [{"asm": MINI_KERNEL}] * (protocol.MAX_PROGRAMS + 1)
        with pytest.raises(RequestRejected) as ei:
            protocol.parse_request({"programs": docs})
        assert ei.value.reason == "too-large"

    def test_http_status_mapping(self):
        cases = [
            (RequestRejected("x"), 400),
            (RequestRejected("x", reason="too-large"), 413),
            (AllocationError("x"), 422),
            (ServiceOverloaded("x"), 429),
            (DeadlineExceeded("x", phase="p"), 504),
            (RuntimeError("boom"), 500),
        ]
        for exc, want in cases:
            assert protocol.http_status(protocol.error_envelope(exc)) == want

    def test_exception_round_trip(self):
        exc = protocol.exception_for(
            protocol.error_envelope(ServiceOverloaded("full", retry_after=0.2))
        )
        assert isinstance(exc, ServiceOverloaded)
        assert exc.retry_after == pytest.approx(0.2)
        exc = protocol.exception_for(
            protocol.error_envelope(DeadlineExceeded("late", phase="dequeue"))
        )
        assert isinstance(exc, DeadlineExceeded) and exc.phase == "dequeue"
        exc = protocol.exception_for(
            protocol.error_envelope(RuntimeError("boom"))
        )
        assert exc.__class__.__name__ == "ReproError" or \
            "boom" in str(exc)


# ----------------------------------------------------------------------
# Admission.
# ----------------------------------------------------------------------
class TestAdmission:
    def test_fifo_within_priority(self):
        q = AdmissionQueue(bound=8)
        q.offer("b1", priority=1)
        q.offer("b2", priority=1)
        q.offer("a1", priority=0)
        q.offer("c1", priority=2)
        q.offer("a2", priority=0)
        assert [q.take(0) for _ in range(5)] == \
            ["a1", "a2", "b1", "b2", "c1"]

    def test_shed_at_bound_is_immediate_and_typed(self):
        q = AdmissionQueue(bound=2, retry_after=0.125)
        q.offer(1)
        q.offer(2)
        t0 = time.perf_counter()
        with pytest.raises(ServiceOverloaded) as ei:
            q.offer(3)
        assert time.perf_counter() - t0 < 0.5  # never blocks
        assert ei.value.retry_after == pytest.approx(0.125)
        assert q.shed_count == 1 and q.depth == 2

    def test_closed_queue_sheds_as_draining(self):
        q = AdmissionQueue(bound=2)
        q.offer(1)
        q.close()
        with pytest.raises(ServiceOverloaded) as ei:
            q.offer(2)
        assert "draining" in str(ei.value)
        # queued items stay takeable after close (graceful drain)...
        assert q.take(0) == 1
        # ...and an empty closed queue returns the shutdown signal.
        assert q.take(0) is None

    def test_take_timeout_returns_none(self):
        q = AdmissionQueue(bound=2)
        t0 = time.perf_counter()
        assert q.take(timeout=0.05) is None
        assert 0.04 <= time.perf_counter() - t0 < 1.0


# ----------------------------------------------------------------------
# Coalescing.
# ----------------------------------------------------------------------
class TestCoalesce:
    def test_leader_then_followers_share_result(self):
        c = Coalescer()
        entry, leader = c.lease("ab" * 32)
        assert leader
        _, again = c.lease("ab" * 32)
        assert not again
        c.resolve(entry, result=("payload", []))
        assert entry.wait(1.0) == ("payload", [])
        # resolved entries leave the table: the next lease leads anew
        _, fresh = c.lease("ab" * 32)
        assert fresh

    def test_error_propagates_to_followers(self):
        c = Coalescer()
        entry, _ = c.lease("cd" * 32)
        c.resolve(entry, error=AllocationError("infeasible"))
        with pytest.raises(AllocationError):
            entry.wait(1.0)

    def test_wait_timeout_is_typed(self):
        c = Coalescer()
        entry, _ = c.lease("ef" * 32)
        with pytest.raises(DeadlineExceeded) as ei:
            entry.wait(timeout=0.01)
        assert ei.value.phase == "coalesce-wait"


# ----------------------------------------------------------------------
# Result store.
# ----------------------------------------------------------------------
class TestStore:
    KEY = "a1" * 32

    def test_round_trip_and_restart(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(self.KEY, {"sgr": 3})
        assert store.get(self.KEY) == {"sgr": 3}
        # a fresh instance (restarted worker) replays from disk
        fresh = ResultStore(tmp_path)
        assert fresh.get(self.KEY) == {"sgr": 3}
        doc = json.loads((tmp_path / f"{self.KEY}.json").read_text())
        assert doc["schema"] == "repro.service.store/1"
        assert doc["key"] == self.KEY

    def test_memory_only_without_root(self):
        store = ResultStore()
        store.put(self.KEY, {"x": 1})
        assert store.get(self.KEY) == {"x": 1}

    def test_corrupt_entry_quarantined_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(self.KEY, {"x": 1})
        (tmp_path / f"{self.KEY}.json").write_text("{not json")
        fresh = ResultStore(tmp_path)  # cold memory: must hit disk
        assert fresh.get(self.KEY) is None
        assert list(tmp_path.glob("*.bad"))
        # the slot is reusable after quarantine
        fresh.put(self.KEY, {"x": 2})
        assert ResultStore(tmp_path).get(self.KEY) == {"x": 2}

    def test_quarantine_capped(self, tmp_path):
        store = ResultStore(tmp_path, max_quarantine=3)
        for i in range(6):
            key = f"{i:02x}" * 32
            store.put(key, {"i": i})
            (tmp_path / f"{key}.json").write_text("broken")
            store._memory.clear()
            assert store.get(key) is None
        assert len(list(tmp_path.glob("*.bad"))) <= 3

    def test_memory_lru_eviction(self):
        store = ResultStore(memory_entries=2)
        for i in range(3):
            store.put(f"{i:02x}" * 32, {"i": i})
        assert store.get("00" * 32) is None
        assert store.get("02" * 32) == {"i": 2}

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.put("../escape", {"x": 1})


# ----------------------------------------------------------------------
# Circuit breaker (fake clock throughout).
# ----------------------------------------------------------------------
class TestBreaker:
    def make(self, **kw):
        clk = {"t": 0.0}
        kw.setdefault("threshold", 3)
        kw.setdefault("cooldown", 10.0)
        b = CircuitBreaker("store", clock=lambda: clk["t"], **kw)
        return b, clk

    def test_trips_after_consecutive_failures(self):
        b, _ = self.make()
        b.failure("x")
        b.failure("x")
        assert b.state == "closed" and b.allow()
        b.failure("x")
        assert b.state == "open" and not b.allow()
        assert b.trips == 1

    def test_success_resets_the_streak(self):
        b, _ = self.make()
        b.failure("x")
        b.failure("x")
        b.success()
        b.failure("x")
        b.failure("x")
        assert b.state == "closed"

    def test_cooldown_half_open_then_close(self):
        b, clk = self.make()
        for _ in range(3):
            b.failure("x")
        assert not b.allow()
        clk["t"] = 10.0
        assert b.state == "half-open" and b.allow()
        b.success()
        assert b.state == "closed"

    def test_half_open_failure_reopens(self):
        b, clk = self.make()
        for _ in range(3):
            b.failure("x")
        clk["t"] = 10.0
        assert b.state == "half-open"
        b.failure("probe failed")
        assert b.state == "open"
        clk["t"] = 15.0
        assert b.state == "open"  # cooldown restarted at re-open
        clk["t"] = 20.0
        assert b.state == "half-open"

    def test_trip_records_the_ladder_rung(self):
        clk = {"t": 0.0}
        b = CircuitBreaker(
            "store",
            rung="service.store_to_memory",
            threshold=2,
            clock=lambda: clk["t"],
        )
        with guard.watching() as degs:
            b.failure("x")
            b.failure("x")
        assert [d.rung for d in degs] == ["service.store_to_memory"]

    def test_breaker_gauge_tracks_state(self):
        with obs_metrics.scoped() as reg:
            b, _ = self.make(threshold=1)
            b.failure("x")
            snap = reg.snapshot()
        assert snap["gauges"]['service.breaker{site="store",state="open"}'] \
            == 1.0
        assert snap["gauges"][
            'service.breaker{site="store",state="closed"}'] == 0.0


# ----------------------------------------------------------------------
# Jittered backoff (satellite 1).
# ----------------------------------------------------------------------
class TestBackoffJitter:
    def test_zero_jitter_is_the_classic_schedule(self):
        # 4 attempts -> 3 inter-attempt delays, the exact historical
        # schedule (byte-identical: no RNG is even consulted).
        assert backoff_delays(0.1, 4) == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)
        ]

    def test_jitter_is_deterministic_per_label(self):
        a = backoff_delays(0.1, 4, jitter=0.5, label="analyze")
        b = backoff_delays(0.1, 4, jitter=0.5, label="analyze")
        assert a == b
        assert a != backoff_delays(0.1, 4, jitter=0.5, label="other")

    def test_jitter_only_shrinks_within_bounds(self):
        delays = backoff_delays(0.1, 6, jitter=0.5, label="x")
        for k, d in enumerate(delays):
            full = 0.1 * (2 ** k)
            assert full * 0.5 <= d <= full

    def test_explicit_rng_wins(self):
        import random

        a = backoff_delays(0.1, 3, jitter=0.9, rng=random.Random(7))
        b = backoff_delays(0.1, 3, jitter=0.9, rng=random.Random(7))
        assert a == b


# ----------------------------------------------------------------------
# ServiceCore lifecycle.
# ----------------------------------------------------------------------
class TestServiceCore:
    def make(self, tmp_path=None, **kw):
        kw.setdefault("workers", 2)
        kw.setdefault("queue_depth", 8)
        if tmp_path is not None:
            kw.setdefault("store_dir", str(tmp_path / "store"))
        return ServiceCore(ServiceConfig(**kw))

    def test_result_byte_identical_to_direct_call(self):
        core = self.make()
        core.start()
        try:
            status, envelope = core.submit(doc_for())
            assert status == 200
            assert json.dumps(envelope["result"], sort_keys=True) == \
                json.dumps(direct_payload(), sort_keys=True)
            assert envelope["schema"] == protocol.SCHEMA
            assert not envelope["cached"] and not envelope["coalesced"]
            assert envelope["degraded"] == []
        finally:
            assert core.drain(5.0)

    def test_replay_is_cached_and_identical(self):
        core = self.make()
        core.start()
        try:
            _, first = core.submit(doc_for())
            _, second = core.submit(doc_for())
            assert second["cached"]
            assert second["result"] == first["result"]
            assert core.pipeline_runs == 1
        finally:
            core.drain(5.0)

    def test_restart_replays_from_disk_store(self, tmp_path):
        core = self.make(tmp_path)
        core.start()
        _, first = core.submit(doc_for())
        assert core.drain(5.0)
        # a "restarted" service: fresh core, same store root
        core2 = self.make(tmp_path)
        core2.start()
        try:
            status, replay = core2.submit(doc_for())
            assert status == 200 and replay["cached"]
            assert replay["result"] == first["result"]
            assert core2.pipeline_runs == 0
        finally:
            core2.drain(5.0)

    def test_concurrent_identical_requests_run_once(self):
        """N identical concurrent requests -> exactly one pipeline
        execution, byte-identical payloads, N-1 coalesced responses."""
        n = 6
        core = self.make(workers=1)
        results = []

        def call():
            results.append(core.submit(doc_for()))

        threads = [threading.Thread(target=call) for _ in range(n)]
        for t in threads:
            t.start()
        # Workers are not running yet, so every thread must park on the
        # same coalesce entry (1 leader in the queue, n-1 followers)
        # before execution starts -- fully deterministic concurrency.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            entry = core.coalescer._inflight.get(
                protocol.parse_request(doc_for()).key
            )
            if entry is not None and entry.followers == n - 1 \
                    and core.queue.depth == 1:
                break
            time.sleep(0.005)
        else:
            pytest.fail("requests never converged on one entry")
        core.start()
        for t in threads:
            t.join(timeout=30.0)
        try:
            assert len(results) == n
            assert all(status == 200 for status, _ in results)
            payloads = {
                json.dumps(env["result"], sort_keys=True)
                for _, env in results
            }
            assert len(payloads) == 1
            assert core.pipeline_runs == 1
            assert sum(env["coalesced"] for _, env in results) == n - 1
        finally:
            core.drain(5.0)

    def test_overload_sheds_typed_and_immediate(self):
        """With workers parked, distinct requests fill the bounded
        queue; the next one sheds with a typed 429 without blocking."""
        core = self.make(workers=1, queue_depth=2)
        fillers = [
            threading.Thread(
                target=core.submit, args=(doc_for(nreg=NREG + 8 * i),)
            )
            for i in range(2)
        ]
        for t in fillers:
            t.start()
        deadline = time.monotonic() + 10.0
        while core.queue.depth < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert core.queue.depth == 2
        t0 = time.perf_counter()
        status, envelope = core.submit(doc_for(nreg=NREG + 99))
        assert time.perf_counter() - t0 < 1.0
        assert status == 429
        assert envelope["error"]["type"] == "ServiceOverloaded"
        assert envelope["error"]["retry_after"] > 0
        core.start()
        for t in fillers:
            t.join(timeout=30.0)
        assert core.drain(5.0)

    def test_zero_deadline_is_a_typed_504(self):
        core = self.make()
        core.start()
        try:
            status, envelope = core.submit(doc_for(deadline_s=0.0))
            assert status == 504
            assert envelope["error"]["type"] == "DeadlineExceeded"
            assert envelope["error"]["phase"]
        finally:
            core.drain(5.0)

    def test_malformed_and_oversized_rejected_before_analysis(self):
        core = self.make()  # workers never started: rejection is early
        status, envelope = core.submit({"bogus": 1})
        assert status == 400
        assert envelope["error"]["type"] == "RequestRejected"
        status, envelope = core.submit(doc_for(), body_bytes=10**9)
        assert status == 413
        assert envelope["error"]["reason"] == "too-large"
        assert core.pipeline_runs == 0

    def test_draining_sheds_new_requests(self):
        core = self.make()
        core.start()
        assert core.drain(5.0)
        status, envelope = core.submit(doc_for())
        assert status == 429
        assert envelope["error"]["type"] == "ServiceOverloaded"

    def test_open_verify_breaker_degrades_with_flag(self):
        core = self.make(breaker_threshold=1)
        core.start()
        try:
            core.breakers["verify"].failure("forced")
            status, envelope = core.submit(doc_for(verify=True))
            assert status == 200
            assert "verify:skipped" in envelope["degraded"]
            assert "verified" not in envelope["result"]
            # degraded payloads are never stored: a replay recomputes
            assert core.store.get(envelope["key"]) is None
        finally:
            core.drain(5.0)

    def test_verdict_rides_along(self):
        core = self.make()
        core.start()
        try:
            status, envelope = core.submit(doc_for(simulate=4))
            assert status == 200
            verdict = envelope["result"]["verdict"]
            assert verdict["cycles"] > 0
            assert len(verdict["threads"]) == 1
        finally:
            core.drain(5.0)

    def test_requests_metric_labels(self):
        with obs_metrics.scoped() as reg:
            core = self.make()
            core.start()
            try:
                core.submit(doc_for())
                core.submit({"bogus": 1})
            finally:
                core.drain(5.0)
            snap = reg.snapshot()
        assert snap["counters"]['service.requests{status="ok"}'] == 1
        assert snap["counters"][
            'service.requests{status="RequestRejected"}'] == 1


# ----------------------------------------------------------------------
# HTTP frontend + client.
# ----------------------------------------------------------------------
class TestHTTP:
    @pytest.fixture
    def server(self, tmp_path):
        server = ReproServer(
            ServiceConfig(
                workers=2,
                queue_depth=8,
                store_dir=str(tmp_path / "store"),
            ),
            port=0,
        )
        server.start()
        yield server
        server.drain_and_stop(5.0)

    def client_for(self, server, **kw):
        from repro.service.client import ServiceClient

        host, port = server.address
        return ServiceClient(host=host, port=port, **kw)

    def test_allocate_and_cached_replay(self, server):
        client = self.client_for(server)
        result = client.allocate([{"asm": MINI_KERNEL, "name": "k"}],
                                 nreg=NREG)
        assert json.dumps(result, sort_keys=True) == \
            json.dumps(direct_payload(), sort_keys=True)
        envelope = client.submit(doc_for())
        assert envelope["cached"]
        assert envelope["result"] == result

    def test_typed_errors_cross_the_wire(self, server):
        client = self.client_for(server)
        with pytest.raises(AllocationError):
            client.allocate([{"asm": FIG3_T1}], nreg=1)
        with pytest.raises(RequestRejected) as ei:
            client.submit({"bogus": 1})
        assert ei.value.reason == "bad-field"

    def test_oversized_body_is_413(self, server):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/allocate", body=b"x" * (300 * 1024),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            doc = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 413
        assert doc["error"]["reason"] == "too-large"

    def test_overloaded_carries_retry_after_header(self, server):
        # Force the 429 path deterministically via the drain shed.
        server.core.draining = True
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = json.dumps(doc_for()).encode()
            conn.request("POST", "/v1/allocate", body=body,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            resp.read()
        finally:
            conn.close()
        server.core.draining = False
        assert resp.status == 429
        assert float(resp.headers["Retry-After"]) > 0

    def test_health_endpoints(self, server):
        client = self.client_for(server)
        assert client.health()["ok"]
        assert client.ready()
        status = client.status()
        assert status["schema"] == "repro.service.status/1"
        assert set(status["breakers"]) == {"store", "engine", "verify"}
        assert "service" in client.metrics_text().replace("_", ".")

    def test_unknown_endpoint_is_typed_404(self, server):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/nope")
            resp = conn.getresponse()
            doc = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 404
        assert doc["error"]["type"] == "RequestRejected"

    def test_drain_flips_readiness_and_sheds(self, tmp_path):
        server = ReproServer(ServiceConfig(workers=1), port=0)
        server.start()
        client = self.client_for(server)
        assert client.ready()
        assert server.drain_and_stop(5.0)
        # the listener is gone after the drain completes
        with pytest.raises(OSError):
            client.health()


class TestClientRetry:
    def test_retries_honor_retry_after_then_succeed(self):
        from repro.service.client import ServiceClient

        sleeps = []
        overloaded = protocol.error_envelope(
            ServiceOverloaded("full", retry_after=0.07)
        )
        ok = protocol.ok_envelope("ab" * 32, {"sgr": 1})
        responses = [overloaded, overloaded, ok]
        client = ServiceClient(retries=3, backoff=0.01,
                               sleep=sleeps.append)
        client._request = lambda *a, **k: responses.pop(0)
        envelope = client.submit(doc_for())
        assert envelope["status"] == "ok"
        # retry_after (0.07) dominates the early backoff steps
        assert sleeps == [pytest.approx(0.07), pytest.approx(0.07)]

    def test_gives_up_after_retry_budget(self):
        from repro.service.client import ServiceClient

        overloaded = protocol.error_envelope(
            ServiceOverloaded("full", retry_after=0.0)
        )
        calls = []
        client = ServiceClient(retries=2, backoff=0.0,
                               sleep=lambda s: None)
        client._request = lambda *a, **k: calls.append(1) or overloaded
        with pytest.raises(ServiceOverloaded):
            client.submit(doc_for())
        assert len(calls) == 3  # initial + 2 retries

    def test_non_overload_errors_never_retry(self):
        from repro.service.client import ServiceClient

        rejected = protocol.error_envelope(RequestRejected("bad"))
        calls = []
        client = ServiceClient(retries=5, sleep=lambda s: None)
        client._request = lambda *a, **k: calls.append(1) or rejected
        with pytest.raises(RequestRejected):
            client.submit(doc_for())
        assert len(calls) == 1


# ----------------------------------------------------------------------
# The hypothesis property: FIFO within priority + shed exactly at the
# bound (satellite 3).
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from([0, 1, 2])),
        st.tuples(st.just("take"), st.just(None)),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(bound=st.integers(min_value=1, max_value=5), ops=_ops)
def test_admission_queue_property(bound, ops):
    """Against a reference model: offers shed exactly when the queue
    holds ``bound`` items, and takes drain in (priority, arrival)
    order -- FIFO within a priority, strict priority across them."""
    q = AdmissionQueue(bound=bound)
    model = []  # (priority, seq) of admitted-but-not-taken items
    seq = 0
    sheds = 0
    for op, arg in ops:
        if op == "offer":
            if len(model) >= bound:
                with pytest.raises(ServiceOverloaded):
                    q.offer(seq, priority=arg)
                sheds += 1
            else:
                q.offer(seq, priority=arg)
                model.append((arg, seq))
            seq += 1
        else:
            got = q.take(0)
            if model:
                expect = min(model)
                assert got == expect[1]
                model.remove(expect)
            else:
                assert got is None
    assert q.shed_count == sheds
    assert q.depth == len(model)
    # drain what's left: still perfectly ordered
    for expect in sorted(model):
        assert q.take(0) == expect[1]
