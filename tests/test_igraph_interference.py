"""Unit tests for GIG/BIG/IIG construction and the region merge."""

import pytest

from repro.cfg.liveness import compute_liveness
from repro.cfg.nsr import compute_nsr
from repro.igraph.coloring import num_colors, validate_coloring
from repro.igraph.interference import build_interference
from repro.igraph.merge import merge_region_colorings
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program


def v(name):
    return VirtualReg(name)


def graphs_for(program):
    lv = compute_liveness(program)
    nsr = compute_nsr(lv)
    return build_interference(lv, nsr)


def test_fig3_graph_shapes(fig3_t1):
    g = graphs_for(fig3_t1)
    # GIG: the a-b-c triangle.
    assert g.gig.has_edge(v("a"), v("b"))
    assert g.gig.has_edge(v("a"), v("c"))
    assert g.gig.has_edge(v("b"), v("c"))
    # BIG: only %a is boundary, so no BIG edges at all.
    assert v("a") in g.big
    assert g.big.n_edges() == 0
    # b and c are internal to the same NSR's IIG.
    iig = next(iig for iig in g.iigs.values() if v("b") in iig)
    assert iig.has_edge(v("b"), v("c"))


def test_internal_nodes_not_in_big(straight):
    g = graphs_for(straight)
    assert v("b") not in g.big
    assert v("c") not in g.big


def test_claim2_no_cross_region_internal_edges(mini_kernel):
    g = graphs_for(mini_kernel)
    for a, b in g.gig.edges():
        if a in g.internal and b in g.internal:
            rid_a = next(r for r, iig in g.iigs.items() if a in iig)
            rid_b = next(r for r, iig in g.iigs.items() if b in iig)
            assert rid_a == rid_b


def test_cross_edges_are_gig_only(mini_kernel):
    g = graphs_for(mini_kernel)
    for a, b in g.cross_edges():
        assert g.gig.has_edge(a, b)
        assert not g.big.has_edge(a, b)
        assert not any(iig.has_edge(a, b) for iig in g.iigs.values())


def test_merge_produces_valid_gig_coloring(mini_kernel):
    g = graphs_for(mini_kernel)
    merged = merge_region_colorings(g)
    validate_coloring(g.gig, merged.coloring)
    for node in g.boundary:
        assert merged.coloring[node] < merged.max_pr
    assert merged.max_pr <= merged.max_r


def test_merge_on_paper_example(fig3_t1):
    g = graphs_for(fig3_t1)
    merged = merge_region_colorings(g)
    # Triangle forces 3 colors; only one boundary node so MaxPR = 1.
    assert merged.max_pr == 1
    assert merged.max_r == 3


def test_boundary_boundary_internal_conflict_resolved():
    # Two values live across *different* CSBs that overlap inside an NSR:
    # the BIG has no edge, yet they must get different private colors.
    p = parse_program(
        """
        movi %a, 1
        ctx
        movi %b, 2
        add %x, %a, %b
        store %x, [%a]
        store %b, [%b]
        halt
        """,
        "t",
    )
    g = graphs_for(p)
    merged = merge_region_colorings(g)
    validate_coloring(g.gig, merged.coloring)
    assert merged.coloring[v("a")] != merged.coloring[v("b")]
