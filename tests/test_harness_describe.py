"""Tests for the human-readable analysis reports."""

from repro.core.analysis import analyze_thread
from repro.core.pipeline import allocate_programs
from repro.harness.describe import (
    allocation_report,
    live_range_chart,
    nsr_map,
)
from repro.ir.parser import parse_program
from tests.conftest import MINI_KERNEL, STRAIGHT


def test_live_range_chart_shape(straight):
    an = analyze_thread(straight)
    chart = live_range_chart(an)
    lines = chart.splitlines()
    # header + one row per range
    assert len(lines) == 1 + len(an.all_regs)
    n = len(straight.instrs)
    for row in lines[1:]:
        cells = row.split("  ")[-1]
        assert len(cells) == n


def test_chart_marks_boundary_ranges(straight):
    an = analyze_thread(straight)
    chart = live_range_chart(an)
    a_row = next(l for l in chart.splitlines() if l.startswith("%a"))
    assert "  B  " in a_row
    b_row = next(l for l in chart.splitlines() if l.startswith("%b"))
    assert "  i  " in b_row


def test_chart_truncation(mini_kernel):
    an = analyze_thread(mini_kernel)
    chart = live_range_chart(an, max_ranges=2)
    assert len(chart.splitlines()) == 3


def test_nsr_map_annotates_csbs(straight):
    an = analyze_thread(straight)
    text = nsr_map(an)
    assert "[CSB] ctx" in text
    assert "[N00]" in text


def test_nsr_map_includes_labels(mini_kernel):
    an = analyze_thread(mini_kernel)
    text = nsr_map(an)
    assert "loop:" in text
    assert "start:" in text


def test_allocation_report_end_to_end():
    programs = [parse_program(MINI_KERNEL, "k")]
    out = allocate_programs(programs, nreg=16)
    report = allocation_report(out)
    assert "-- k --" in report
    assert "priv" in report
    assert "$r" in report
