"""Differential tests: the fast engine is bit-identical to the reference.

The fast engine (:mod:`repro.sim.fast`) has no authority of its own --
its only contract is producing exactly the reference interpreter's
MachineStats, send queues, store traces, memory contents, and final
thread state, just faster.  These tests enforce that contract over the
whole benchmark suite, mixed-kernel machines, every runtime knob
(stop_on_first_halt, measure_iterations, latency_regions), error paths,
and hypothesis-generated programs, plus the engine-selection policy.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import EngineError, SimulationError
from repro.ir.parser import parse_program
from repro.ir.validate import validate_program
from repro.obs import events as obs
from repro.sim.engine import (
    create_machine,
    get_default_engine,
    select_engine,
    set_default_engine,
)
from repro.sim.fast import FastMachine
from repro.sim.machine import Machine
from repro.sim.memory import Memory
from repro.sim.packets import make_workload
from repro.sim.run import (
    PACKET_AREA_BASE,
    PACKET_AREA_STRIDE,
    run_threads,
)
from repro.suite.registry import BENCHMARKS, load
from tests.conftest import MINI_KERNEL


def _setup_workloads(machine, packets):
    for tid, thread in enumerate(machine.threads):
        workload = make_workload(
            machine.memory,
            base=PACKET_AREA_BASE + tid * PACKET_AREA_STRIDE,
            n_packets=packets,
            payload_words=16,
            seed=1 + tid,
        )
        thread.in_queue = list(workload.bases)


def run_both(programs, packets=8, run_kwargs=None, **machine_kwargs):
    """Run ``programs`` on both engines; return (ref_machine, ref_stats,
    fast_machine, fast_stats)."""
    results = []
    for cls in (Machine, FastMachine):
        machine = cls(programs, memory=Memory(), **machine_kwargs)
        _setup_workloads(machine, packets)
        stats = machine.run(**(run_kwargs or {}))
        results.append((machine, stats))
    (ref_m, ref_s), (fast_m, fast_s) = results
    return ref_m, ref_s, fast_m, fast_s


def assert_identical(ref_m, ref_s, fast_m, fast_s):
    assert ref_s == fast_s
    for t_ref, t_fast in zip(ref_m.threads, fast_m.threads):
        assert list(t_ref.out_queue) == list(t_fast.out_queue)
        assert t_ref.stores == t_fast.stores
        assert t_ref.pc == t_fast.pc
        assert t_ref.halted == t_fast.halted
        assert t_ref.blocked_until == t_fast.blocked_until
    assert ref_m.memory.snapshot() == fast_m.memory.snapshot()


# ----------------------------------------------------------------------
# Differential: the whole benchmark suite.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_differential_suite_kernel(name):
    programs = [load(name) for _ in range(2)]
    assert_identical(*run_both(programs, packets=8))


def test_differential_mixed_kernels():
    programs = [load(n) for n in ("frag", "ipchains", "wraps_send", "drr")]
    assert_identical(*run_both(programs, packets=6))


def test_differential_stop_on_first_halt():
    programs = [load("frag"), load("url")]
    ref_m, ref_s, fast_m, fast_s = run_both(
        programs, packets=4, run_kwargs={"stop_on_first_halt": True}
    )
    assert_identical(ref_m, ref_s, fast_m, fast_s)


def test_differential_measure_iterations():
    programs = [load("wraps_recv"), load("wraps_recv")]
    ref_m, ref_s, fast_m, fast_s = run_both(
        programs, packets=12, measure_iterations=4
    )
    assert_identical(ref_m, ref_s, fast_m, fast_s)
    assert all(t.measured_cpi is not None for t in fast_s.threads)


def test_differential_latency_regions():
    regions = [(0, 0x20000, 5), (0x20000, 1 << 24, 45)]
    programs = [load("frag"), load("frag")]
    assert_identical(
        *run_both(programs, packets=6, latency_regions=regions)
    )


def test_differential_final_vregs():
    program = parse_program(MINI_KERNEL, "mini")
    ref_m, ref_s, fast_m, fast_s = run_both([program, program], packets=5)
    assert_identical(ref_m, ref_s, fast_m, fast_s)
    for t_ref, t_fast in zip(ref_m.threads, fast_m.threads):
        for name, value in t_fast.vregs.items():
            assert t_ref.vregs.get(name, 0) == value


# ----------------------------------------------------------------------
# Differential: error paths.
# ----------------------------------------------------------------------
def _error_of(cls, text, max_cycles=50_000_000):
    program = parse_program(text, "t")
    machine = cls([program], memory=Memory())
    with pytest.raises(SimulationError) as err:
        machine.run(max_cycles=max_cycles)
    return str(err.value)


def test_run_off_end_matches_reference():
    text = "movi %a, 1\nadd %b, %a, %a\n"
    assert _error_of(Machine, text) == _error_of(FastMachine, text)


def test_runaway_matches_reference():
    text = "movi %a, 1\nloop:\naddi %a, %a, 1\nbr loop\n"
    assert _error_of(Machine, text, 500) == _error_of(
        FastMachine, text, 500
    )


def test_bad_physical_register_matches_reference():
    text = "movi $r200, 1\nhalt\n"
    ref = _error_of(Machine, text)
    fast = _error_of(FastMachine, text)
    assert "200" in ref and "200" in fast


def test_bad_address_matches_reference():
    text = "movi %p, 0\nsubi %p, %p, 1\nstore %p, [%p]\nhalt\n"
    assert _error_of(Machine, text) == _error_of(FastMachine, text)


# ----------------------------------------------------------------------
# Differential: hypothesis-generated programs.
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import assume, given  # noqa: E402

from tests.test_properties import (  # noqa: E402
    SETTINGS,
    branching_program,
    straightline_program,
)


def _hypothesis_differential(text):
    program = parse_program(text, "gen")
    validate_program(program)
    machines = []
    for cls in (Machine, FastMachine):
        machine = cls([program, program], memory=Memory())
        for thread in machine.threads:
            thread.in_queue = [PACKET_AREA_BASE]
        machines.append(machine)
    ref_m, fast_m = machines
    try:
        ref_s = ref_m.run(max_cycles=200_000)
    except SimulationError:
        with pytest.raises(SimulationError):
            fast_m.run(max_cycles=200_000)
        assume(False)
        return
    fast_s = fast_m.run(max_cycles=200_000)
    assert_identical(ref_m, ref_s, fast_m, fast_s)


@SETTINGS
@given(straightline_program())
def test_hypothesis_differential_straightline(text):
    _hypothesis_differential(text)


@SETTINGS
@given(branching_program())
def test_hypothesis_differential_branching(text):
    _hypothesis_differential(text)


# ----------------------------------------------------------------------
# Engine selection policy.
# ----------------------------------------------------------------------
def test_auto_prefers_fast():
    assert select_engine("auto") == "fast"
    assert isinstance(create_machine([load("frag")], "auto"), FastMachine)


def test_auto_falls_back_for_reference_features():
    assert select_engine("auto", trace=True) == "reference"
    assert select_engine("auto", timeline=True) == "reference"
    assert select_engine("auto", assignment=object()) == "reference"


def test_auto_prefers_reference_under_capture():
    with obs.capture():
        assert select_engine("auto") == "reference"
        assert isinstance(
            create_machine([load("frag")], "auto"), Machine
        )
    assert select_engine("auto") == "fast"


def test_explicit_fast_conflicts_raise():
    with pytest.raises(EngineError):
        select_engine("fast", trace=True)
    with pytest.raises(EngineError):
        FastMachine([load("frag")], trace=True)
    with pytest.raises(EngineError):
        FastMachine([load("frag")], timeline=True)
    with pytest.raises(EngineError):
        FastMachine([load("frag")], assignment=object())


def test_fast_default_engine_warns_and_falls_back():
    previous = set_default_engine("fast")
    try:
        assert get_default_engine() == "fast"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            chosen = select_engine(None, trace=True)
        assert chosen == "reference"
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )
    finally:
        set_default_engine(previous)
    assert get_default_engine() == previous


def test_unknown_engine_rejected():
    with pytest.raises(EngineError):
        select_engine("turbo")
    with pytest.raises(EngineError):
        set_default_engine("turbo")


def test_run_threads_fast_with_assignment_raises():
    with pytest.raises(EngineError):
        run_threads([load("frag")], engine="fast", assignment=object())


def test_create_machine_fast_conflicts_raise():
    # The factory must reject the same fast-engine combinations the
    # constructor does: trace, timeline, and paranoid assignment
    # checking are reference-only features.
    with pytest.raises(EngineError):
        create_machine([load("frag")], "fast", trace=True)
    with pytest.raises(EngineError):
        create_machine([load("frag")], "fast", timeline=True)
    with pytest.raises(EngineError):
        create_machine([load("frag")], "fast", assignment=object())


def test_run_threads_engines_agree():
    program = parse_program(MINI_KERNEL, "mini")
    ref = run_threads(
        [program], packets_per_thread=4, engine="reference"
    )
    fast = run_threads([program], packets_per_thread=4, engine="fast")
    assert ref.stats == fast.stats
    assert ref.out_queues == fast.out_queues
    assert ref.stores == fast.stores


def test_cli_run_allocated_rejects_fast(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "kernel.npir"
    path.write_text(MINI_KERNEL)
    code = main(
        ["run", str(path), "--allocated", "--engine", "fast"]
    )
    assert code == 2
    assert "fast engine" in capsys.readouterr().err


def test_cli_run_fast_engine(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "kernel.npir"
    path.write_text(MINI_KERNEL)
    assert main(["run", str(path), "--engine", "fast"]) == 0
    assert "cycles:" in capsys.readouterr().out
