"""Unit tests for the intra-thread allocator (Reduce-PR/SR, splitting)."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.intra import IntraAllocator
from repro.errors import AllocationError
from repro.suite.registry import load


def allocator_for(program):
    an = analyze_thread(program)
    return IntraAllocator(an)


def test_initial_context_matches_upper_bounds(fig3_t1):
    alloc = allocator_for(fig3_t1)
    assert alloc.context.pr == alloc.bounds.max_pr
    assert alloc.context.r == alloc.bounds.max_r
    assert alloc.context.move_cost() == 0


def test_fig3_reaches_lower_bound_with_one_move(fig3_t1):
    # The paper's Figure 3: R = 2 is reachable with a single move.
    alloc = allocator_for(fig3_t1)
    ctx = alloc.realize(1, 1)
    ctx.validate()
    assert ctx.move_cost() == 1


def test_fig3_zero_moves_at_max(fig3_t1):
    alloc = allocator_for(fig3_t1)
    ctx = alloc.realize(alloc.bounds.max_pr, alloc.bounds.max_sr)
    assert ctx.move_cost() == 0


def test_realize_below_bounds_rejected(fig3_t1):
    alloc = allocator_for(fig3_t1)
    with pytest.raises(AllocationError):
        alloc.realize(0, 5)
    with pytest.raises(AllocationError):
        alloc.realize(1, 0)  # pr + sr < min_r


def test_realize_cannot_grow(fig3_t1):
    alloc = allocator_for(fig3_t1)
    with pytest.raises(AllocationError):
        alloc.realize(alloc.bounds.max_pr + 1, 0)


def test_probe_does_not_mutate_accepted_context(mini_kernel):
    alloc = allocator_for(mini_kernel)
    before = alloc.context.move_cost()
    pr_before = alloc.context.pr
    alloc.probe_reduce_pr()
    alloc.probe_reduce_sr()
    alloc.probe_shift()
    assert alloc.context.pr == pr_before
    assert alloc.context.move_cost() == before


def test_commit_applies_probe(mini_kernel):
    alloc = allocator_for(mini_kernel)
    res = alloc.probe_reduce_sr() or alloc.probe_reduce_pr()
    if res is None:
        pytest.skip("fixture already at both lower bounds")
    pr_sr = (res.context.pr, res.context.sr)
    alloc.commit(res)
    assert (alloc.context.pr, alloc.context.sr) == pr_sr


def test_shift_keeps_total_palette(mini_kernel):
    alloc = allocator_for(mini_kernel)
    r = alloc.context.r
    res = alloc.probe_shift()
    if res is None:
        pytest.skip("shift infeasible for fixture")
    assert res.context.r == r
    assert res.context.pr == alloc.context.pr - 1
    res.context.validate()


@pytest.mark.parametrize("name", ["frag", "drr", "url", "l2l3fwd_send"])
def test_every_feasible_point_realizable(name):
    program = load(name)
    an = analyze_thread(program)
    bounds = estimate_bounds(an)
    for pr in range(bounds.min_pr, bounds.max_pr + 1):
        for sr in range(0, bounds.max_r - bounds.min_pr + 1):
            if pr + sr < bounds.min_r or pr + sr > bounds.max_r:
                continue
            alloc = IntraAllocator(an, bounds)
            ctx = alloc.realize(pr, sr)
            ctx.validate()
            assert ctx.pr == pr and ctx.sr == sr


def test_pointwise_always_valid(mini_kernel):
    alloc = allocator_for(mini_kernel)
    b = alloc.bounds
    ctx = alloc.pointwise(b.min_pr, b.min_r - b.min_pr)
    ctx.validate()


def test_pointwise_respects_bounds(mini_kernel):
    alloc = allocator_for(mini_kernel)
    with pytest.raises(AllocationError):
        alloc.pointwise(alloc.bounds.min_pr - 1, 100)


def test_move_cost_monotone_reporting(fig3_t1):
    # Reducing the palette can only keep or increase the move cost.
    alloc = allocator_for(fig3_t1)
    costs = []
    b = alloc.bounds
    for r_target in range(b.max_r, b.min_r - 1, -1):
        a2 = IntraAllocator(alloc.analysis, b)
        sr = max(r_target - b.max_pr, 0)
        pr = r_target - sr
        if pr < b.min_pr:
            pr = b.min_pr
            sr = r_target - pr
        ctx = a2.realize(pr, sr)
        costs.append(ctx.move_cost())
    assert costs == sorted(costs)
