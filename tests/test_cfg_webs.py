"""Unit tests for web renaming."""

from repro.cfg.webs import rename_webs
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program
from repro.sim.run import outputs_match, run_reference


def names(program):
    return {r.name for r in program.virtual_regs()}


def test_disconnected_reuses_are_split():
    p = parse_program(
        """
        movi %t, 1
        store %t, [%t]
        movi %t, 2
        store %t, [%t]
        halt
        """,
        "t",
    )
    out = rename_webs(p)
    assert len(names(out)) == 2


def test_connected_def_use_kept_together():
    p = parse_program(
        """
        movi %x, 1
        beqi %x, 0, other
        movi %a, 2
        br join
    other:
        movi %a, 3
    join:
        store %a, [%x]
        halt
        """,
        "t",
    )
    out = rename_webs(p)
    # Both defs of %a reach the same use: one web.
    a_names = {n for n in names(out) if n.startswith("a")}
    assert a_names == {"a"}


def test_loop_carried_value_is_one_web():
    p = parse_program(
        """
        movi %i, 0
    loop:
        addi %i, %i, 1
        blti %i, 5, loop
        store %i, [%i]
        halt
        """,
        "t",
    )
    out = rename_webs(p)
    assert {n for n in names(out) if n.startswith("i")} == {"i"}


def test_renaming_preserves_semantics(mini_kernel):
    out = rename_webs(mini_kernel)
    a = run_reference([mini_kernel], packets_per_thread=4)
    b = run_reference([out], packets_per_thread=4)
    assert outputs_match(a, b)


def test_renaming_is_idempotent():
    p = parse_program(
        """
        movi %t, 1
        store %t, [%t]
        movi %t, 2
        store %t, [%t]
        halt
        """,
        "t",
    )
    once = rename_webs(p)
    twice = rename_webs(once)
    assert [str(i) for i in once.instrs] == [str(i) for i in twice.instrs]


def test_entry_live_uses_form_one_web():
    p = parse_program(
        "store %x, [%x]\nstore %x, [%x + 1]\nhalt\n", "t"
    )
    out = rename_webs(p)
    assert {n for n in names(out) if n.startswith("x")} == {"x"}


def test_benchmark_scratch_reuse_is_split():
    from repro.suite import load

    md5 = load("md5")
    out = rename_webs(md5)
    nb_webs = {n for n in names(out) if n.startswith("nb")}
    assert len(nb_webs) > 1  # the per-step scratch splits into many webs
