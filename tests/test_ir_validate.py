"""Unit tests for program validation."""

import pytest

from repro.errors import ValidationError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Label, PhysReg, VirtualReg
from repro.ir.parser import parse_program
from repro.ir.program import Program
from repro.ir.validate import validate_program


def test_valid_program_passes(mini_kernel):
    validate_program(mini_kernel)


def test_undefined_branch_target():
    p = parse_program("br nowhere_else\nhalt\n", "t")
    p.labels.clear()
    with pytest.raises(ValidationError):
        validate_program(p)


def test_fall_off_the_end():
    p = parse_program("movi %a, 1\nhalt\n", "t")
    p.instrs.pop()  # drop the halt
    with pytest.raises(ValidationError):
        validate_program(p)


def test_conditional_branch_cannot_be_last():
    with pytest.raises(ValidationError):
        validate_program(parse_program("x:\n beqi %a, 0, x\n", "t"), check_init=False)


def test_mixed_register_kinds_rejected():
    p = Program(
        "t",
        [
            Instruction(Opcode.MOVI, (VirtualReg("a"), Imm(1))),
            Instruction(Opcode.MOV, (PhysReg(0), VirtualReg("a"))),
            Instruction(Opcode.HALT, ()),
        ],
    )
    with pytest.raises(ValidationError):
        validate_program(p)


def test_uninitialised_read_rejected():
    p = parse_program("add %a, %b, %b\nhalt\n", "t")
    with pytest.raises(ValidationError):
        validate_program(p)


def test_uninitialised_read_allowed_when_disabled():
    p = parse_program("add %a, %b, %b\nhalt\n", "t")
    validate_program(p, check_init=False)


def test_uninitialised_on_one_path_rejected():
    p = parse_program(
        """
        movi %x, 1
        beqi %x, 0, skip
        movi %a, 2
    skip:
        add %b, %a, %x
        halt
        """,
        "t",
    )
    with pytest.raises(ValidationError):
        validate_program(p)


def test_defined_on_all_paths_accepted():
    p = parse_program(
        """
        movi %x, 1
        beqi %x, 0, other
        movi %a, 2
        br join
    other:
        movi %a, 3
    join:
        add %b, %a, %x
        halt
        """,
        "t",
    )
    validate_program(p)


def test_label_out_of_range():
    p = parse_program("movi %a, 1\nhalt\n", "t")
    p.labels["ghost"] = 99
    with pytest.raises(ValidationError):
        validate_program(p)
