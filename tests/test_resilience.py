"""Unit tests for the resilience subsystem: fault injection, deadlines,
the degradation ladder, retries, and the simulator watchdogs."""

import pytest

from repro.errors import (
    DeadlineExceeded,
    ReproError,
    SimulationError,
    TransientError,
    WatchdogError,
)
from repro.ir.parser import parse_program
from repro.obs import events
from repro.resilience import faults, guard
from repro.resilience.deadline import Deadline, check
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.sim.fast import FastMachine
from repro.sim.machine import Machine


# ----------------------------------------------------------------------
# Fault injection.
# ----------------------------------------------------------------------
def test_fire_without_plan_is_none():
    assert faults.active() is None
    assert faults.fire("cache.disk") is None


def test_inject_scopes_and_restores():
    spec = FaultSpec("cache.disk")
    with faults.inject(spec) as plan:
        assert faults.active() is plan
        assert faults.fire("cache.disk") is spec
    assert faults.active() is None


def test_after_and_count_schedule_exact_hits():
    spec = FaultSpec("x", after=2, count=2)
    plan = FaultPlan((spec,))
    verdicts = [plan.fire("x") is spec for _ in range(6)]
    assert verdicts == [False, False, True, True, False, False]
    assert [r.hit for r in plan.fired] == [3, 4]


def test_count_zero_disables():
    plan = FaultPlan((FaultSpec("x", count=0),))
    assert all(plan.fire("x") is None for _ in range(4))
    assert not plan.fired


def test_first_eligible_spec_wins():
    a = FaultSpec("x", mode="a", count=1)
    b = FaultSpec("x", mode="b", count=1)
    plan = FaultPlan((a, b))
    assert plan.fire("x") is a
    assert plan.fire("x") is b
    assert [r.mode for r in plan.fired] == ["a", "b"]


def test_probability_is_seed_deterministic():
    def history(seed):
        plan = FaultPlan((FaultSpec("x", prob=0.5, count=100),), seed=seed)
        return [plan.fire("x") is not None for _ in range(40)]

    assert history(7) == history(7)
    assert history(7) != history(8)  # astronomically unlikely to collide
    assert any(history(7)) and not all(history(7))


def test_suspended_disarms_and_restores():
    with faults.inject(FaultSpec("x")) as plan:
        with faults.suspended():
            assert faults.active() is None
            assert faults.fire("x") is None
        assert faults.active() is plan


def test_fired_records_context_and_telemetry():
    with events.capture() as em:
        with faults.inject(FaultSpec("x", mode="boom")) as plan:
            faults.fire("x", tid=3)
    (record,) = plan.fired
    assert record.to_dict() == {"site": "x", "mode": "boom", "hit": 1, "tid": 3}
    assert any(e.name == "fault.injected" for e in em.events)


# ----------------------------------------------------------------------
# Deadlines.
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_deadline_remaining_and_expiry():
    clock = FakeClock()
    d = Deadline.after(5.0, clock=clock)
    assert d.remaining() == pytest.approx(5.0)
    assert not d.expired()
    clock.now += 5.5
    assert d.expired()
    with pytest.raises(DeadlineExceeded) as err:
        d.check("bounds")
    assert err.value.phase == "bounds"
    assert "bounds" in str(err.value)


def test_deadline_check_tolerates_none():
    check(None, "anything")  # must not raise
    clock = FakeClock()
    d = Deadline(0.0, clock=clock)
    clock.now += 0.1
    with pytest.raises(DeadlineExceeded):
        check(d, "p")


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        Deadline(-1.0)


# ----------------------------------------------------------------------
# Degradation ladder.
# ----------------------------------------------------------------------
def test_unknown_rung_rejected():
    with pytest.raises(ValueError, match="unknown degradation rung"):
        guard.record_degradation("made.up", reason="nope")


def test_record_degradation_logs_and_emits():
    with events.capture() as em:
        with guard.watching() as seen:
            rec = guard.record_degradation(
                "cache.disk_to_memory", reason="flaky disk", streak=4
            )
    assert rec in seen
    assert rec.rung == "cache.disk_to_memory"
    assert dict(rec.context)["streak"] == 4
    assert rec in guard.degradations()
    assert any(e.name == "resilience.degrade" for e in em.events)


def test_ladder_documents_every_rung():
    names = {r.name for r in guard.LADDER}
    assert names == {
        "analysis.dense_to_reference",
        "engine.fast_to_reference",
        "engine.batch_to_reference",
        "sweep.parallel_to_serial",
        "cache.disk_to_memory",
        "alloc.greedy_to_spill",
        "service.store_to_memory",
        "service.engine_to_reference",
        "service.verify_to_skip",
    }
    for rung in guard.LADDER:
        assert rung.trigger and rung.action


def test_retry_transient_recovers():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise TransientError("blip")
        return "done"

    assert guard.retry_transient(flaky, attempts=3) == "done"
    assert len(calls) == 3


def test_retry_transient_exhaustion_reraises():
    def always():
        raise TransientError("permanent blip")

    with pytest.raises(TransientError, match="permanent blip"):
        guard.retry_transient(always, attempts=2)


def test_retry_transient_ignores_other_errors():
    calls = []

    def boom():
        calls.append(1)
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        guard.retry_transient(boom, attempts=5)
    assert len(calls) == 1


def test_retry_backoff_sequence():
    sleeps = []

    def always():
        raise TransientError("x")

    with pytest.raises(TransientError):
        guard.retry_transient(
            always, attempts=4, backoff=0.1, sleep=sleeps.append
        )
    assert sleeps == pytest.approx([0.1, 0.2, 0.4])


# ----------------------------------------------------------------------
# Pipeline integration: deadlines and transient-analysis faults.
# ----------------------------------------------------------------------
def _mini():
    from tests.conftest import MINI_KERNEL

    return parse_program(MINI_KERNEL, "mini")


def test_pipeline_deadline_trips():
    from repro.core.pipeline import allocate_programs

    clock = FakeClock()
    d = Deadline(0.0, clock=clock)
    clock.now += 1.0
    with pytest.raises(DeadlineExceeded) as err:
        allocate_programs([_mini()], nreg=16, deadline=d)
    assert err.value.phase == "validate"


def test_pipeline_masks_one_transient_fault():
    from repro.core.cache import scoped
    from repro.core.pipeline import allocate_programs

    with scoped():
        with faults.inject(
            FaultSpec("pipeline.analyze", mode="transient", count=1)
        ) as plan:
            outcome = allocate_programs([_mini()], nreg=16)
    assert plan.fired_at("pipeline.analyze")
    assert outcome.programs  # allocation still completed


def test_pipeline_transient_storm_surfaces_typed():
    from repro.core.cache import scoped
    from repro.core.pipeline import allocate_programs

    with scoped():
        with faults.inject(
            FaultSpec("pipeline.analyze", mode="transient", count=10)
        ):
            with pytest.raises(TransientError):
                allocate_programs([_mini()], nreg=16)


def test_dense_analysis_fault_degrades_to_reference():
    from repro.core.cache import scoped
    from repro.core.dense import set_default_analysis_impl
    from repro.core.pipeline import allocate_programs

    previous = set_default_analysis_impl("dense")
    try:
        with scoped():
            with guard.watching() as degs:
                with faults.inject(
                    FaultSpec("analysis.dense", mode="error", count=1)
                ) as plan:
                    outcome = allocate_programs([_mini()], nreg=16)
    finally:
        set_default_analysis_impl(previous)
    assert plan.fired_at("analysis.dense")
    assert any(d.rung == "analysis.dense_to_reference" for d in degs)
    assert outcome.programs
    # Degraded-path analysis must equal a clean reference analysis.
    from repro.core.analysis import analyze_thread

    assert outcome.analyses[0].slots == analyze_thread(_mini()).slots


# ----------------------------------------------------------------------
# Simulator watchdogs and fault sites.
# ----------------------------------------------------------------------
def _spin():
    return parse_program("spin:\n br spin\n", "spin")


@pytest.mark.parametrize("cls", [Machine, FastMachine])
def test_watchdog_fires_on_runaway(cls):
    with pytest.raises(WatchdogError):
        cls([_spin()]).run(max_cycles=2_000)


def test_watchdog_is_a_simulation_error():
    # Existing callers catching SimulationError keep working.
    assert issubclass(WatchdogError, SimulationError)
    assert issubclass(WatchdogError, ReproError)


@pytest.mark.parametrize("cls", [Machine, FastMachine])
def test_stuck_thread_hits_watchdog_not_a_hang(cls):
    program = parse_program(
        "movi %a, 1\nstore %a, [%a + 64]\nhalt\n", "blocker"
    )
    with faults.inject(FaultSpec("sim.stuck", mode="stuck", count=1)) as plan:
        with pytest.raises(WatchdogError):
            cls([program]).run(max_cycles=100_000)
    assert plan.fired_at("sim.stuck")


def test_bitflip_fires_deterministically_on_reference():
    program = parse_program(
        "movi $r0, 5\nstore $r0, [$r0 + 64]\nmovi $r1, 6\nhalt\n", "t"
    )
    def flipped_regs(seed):
        with faults.inject(
            FaultSpec("sim.bitflip", mode="bitflip", count=1), seed=seed
        ) as plan:
            machine = Machine([program], nreg=8)
            machine.run()
        assert plan.fired_at("sim.bitflip")
        return list(machine.regfile)

    assert flipped_regs(3) == flipped_regs(3)


def test_engine_fallback_records_degradation():
    from repro.sim.engine import select_engine, set_default_engine

    previous = set_default_engine("fast")
    try:
        with guard.watching() as degs:
            with pytest.warns(RuntimeWarning):
                chosen = select_engine(None, trace=True)
    finally:
        set_default_engine(previous)
    assert chosen == "reference"
    assert any(d.rung == "engine.fast_to_reference" for d in degs)
