"""Tests for the chaos harness: scenario outcomes, the gate, the CLI."""

import json

import pytest

from repro.harness import chaos
from repro.harness.chaos import (
    SCENARIOS,
    ChaosReport,
    render_chaos,
    run_chaos,
    run_scenario,
)


def _scenario(name):
    for s in SCENARIOS:
        if s.name == name:
            return s
    raise AssertionError(f"no scenario named {name}")


def test_scenario_names_are_unique():
    names = [s.name for s in SCENARIOS]
    assert len(names) == len(set(names))
    for s in SCENARIOS:
        assert s.expect in {"clean", "masked", "typed-error", "masked-or-error"}


def test_baseline_scenario_is_clean():
    result = run_scenario(_scenario("baseline"), "crc")
    assert result.outcome == "clean"
    assert result.ok
    assert not result.fired


def test_dense_analysis_fault_is_masked():
    result = run_scenario(_scenario("dense-analysis-fault"), "crc")
    assert result.outcome == "masked", result.error
    assert result.ok
    assert result.fired  # the fault really fired...
    assert any(
        d["rung"] == "analysis.dense_to_reference" for d in result.degradations
    )  # ...and the ladder, not luck, masked it


def test_stuck_thread_surfaces_typed_error():
    result = run_scenario(_scenario("sim-stuck"), "crc")
    assert result.outcome == "typed-error"
    assert result.ok
    assert "WatchdogError" in result.error


def test_runaway_scenarios_need_no_kernel():
    for name in ("runaway-reference", "runaway-fast"):
        result = run_scenario(_scenario(name), "-")
        assert result.outcome == "typed-error"
        assert result.ok


def test_scenario_is_seed_deterministic():
    a = run_scenario(_scenario("sim-bitflip"), "crc", seed=5)
    b = run_scenario(_scenario("sim-bitflip"), "crc", seed=5)
    assert a.outcome == b.outcome
    assert a.fired == b.fired


def test_run_chaos_gate_and_report():
    report = run_chaos(
        kernels=("crc",),
        scenarios=("baseline", "dense-analysis-fault", "runaway-fast"),
    )
    assert isinstance(report, ChaosReport)
    assert report.ok
    # runaway-fast is kernel-free: runs once, not once per kernel.
    assert len(report.results) == 3
    rendered = render_chaos(report)
    assert "chaos gate: PASS" in rendered
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is True
    assert len(payload["results"]) == 3


def test_run_chaos_rejects_unknown_names():
    with pytest.raises(ValueError):
        run_chaos(kernels=("crc",), scenarios=("no-such-scenario",))
    with pytest.raises(KeyError):
        run_chaos(kernels=("no-such-kernel",), scenarios=("baseline",))


def test_result_classification_rules():
    result = run_scenario(_scenario("cache-truncate"), "crc")
    assert result.outcome in ("masked", "typed-error")
    # cache-truncate expects masked specifically.
    assert result.outcome == "masked", result.error
    assert any(r["site"] == "cache.disk" for r in result.fired)


def test_chaos_leaves_no_armed_plan_or_degradations_visible():
    from repro.resilience import faults

    run_scenario(_scenario("sweep-pool-crash"), "crc")
    assert faults.active() is None


def test_cli_chaos_subcommand(tmp_path):
    from repro.cli import main

    out = tmp_path / "report.json"
    rc = main(
        [
            "chaos",
            "--kernels",
            "crc",
            "--scenarios",
            "baseline,runaway-fast",
            "--json",
            str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True


def test_cli_chaos_rejects_unknown(capsys):
    from repro.cli import main

    rc = main(["chaos", "--scenarios", "bogus"])
    assert rc == 2
