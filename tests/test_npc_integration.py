"""Integration: npc-written kernels through the whole toolchain."""

import pytest

from repro.core.pipeline import allocate_programs
from repro.npc import compile_source
from repro.sim.memory import Memory
from repro.sim.packets import make_workload
from repro.sim.run import (
    PACKET_AREA_BASE,
    outputs_match,
    run_reference,
    run_threads,
)

CHECKSUM_NPC = """
// one's-complement checksum over the payload, like the frag kernel
while (1) {
    buf = recv();
    if (buf == 0) break;
    len = mem[buf];
    sum = 0;
    i = 0;
    while (i < len) {
        i = i + 1;
        w = mem[buf + i];
        sum = sum + (w >> 16) + (w & 0xFFFF);
        ctx();
    }
    sum = (sum & 0xFFFF) + (sum >> 16);
    sum = (sum & 0xFFFF) + (sum >> 16);
    mem[buf + len + 1] = sum ^ 0xFFFF;
    send(buf);
}
halt();
"""

CLASSIFIER_NPC = """
// tiny classifier: tag packets by header parity and a running count
count = 0;
while (1) {
    p = recv();
    if (p == 0) break;
    n = mem[p];
    h = mem[p + 1];
    count = count + 1;
    if (h & 1) { tag = 0xAAAA; } else { tag = 0x5555; }
    mem[p + n + 1] = tag;
    mem[p + n + 2] = count;
    send(p);
}
halt();
"""


def test_checksum_kernel_matches_golden_model():
    program = compile_source(CHECKSUM_NPC, "npc_checksum")
    run = run_reference([program], packets_per_thread=3)
    mem = Memory()
    wl = make_workload(mem, PACKET_AREA_BASE, 3, 16, seed=1)
    stores = dict(run.stores[0])
    for base, size in zip(wl.bases, wl.payload_words):
        total = 0
        for w in mem.read_block(base + 1, size):
            total += (w >> 16) + (w & 0xFFFF)
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        assert stores[base + size + 1] == total ^ 0xFFFF


def test_npc_kernels_allocate_and_verify():
    programs = [
        compile_source(CHECKSUM_NPC, "checksum"),
        compile_source(CLASSIFIER_NPC, "classifier"),
    ]
    out = allocate_programs(programs, nreg=16)
    assert out.total_registers <= 16
    ref = run_reference(programs, packets_per_thread=5)
    got = run_threads(
        out.programs,
        packets_per_thread=5,
        nreg=16,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got)


def test_npc_kernel_squeezed_to_minimum():
    from repro.core.analysis import analyze_thread
    from repro.core.bounds import estimate_bounds

    program = compile_source(CHECKSUM_NPC, "checksum")
    bounds = estimate_bounds(analyze_thread(program))
    out = allocate_programs([program], nreg=bounds.min_r)
    ref = run_reference([program], packets_per_thread=3)
    got = run_threads(
        out.programs,
        packets_per_thread=3,
        nreg=bounds.min_r,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got)


def test_npc_state_persists_across_packets():
    program = compile_source(CLASSIFIER_NPC, "classifier")
    run = run_reference([program], packets_per_thread=4)
    counts = [v for (a, v) in run.stores[0]][1::2]
    assert counts == [1, 2, 3, 4]
