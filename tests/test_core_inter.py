"""Unit tests for the inter-thread allocator (Figure 8)."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.inter import allocate_threads
from repro.errors import AllocationError
from repro.ir.parser import parse_program
from repro.suite.registry import load
from tests.conftest import FIG3_T1, FIG3_T2, MINI_KERNEL


def analyses(*texts_names):
    return [
        analyze_thread(parse_program(text, name))
        for text, name in texts_names
    ]


def test_fits_without_reduction():
    ans = analyses((FIG3_T1, "t1"), (FIG3_T2, "t2"))
    result = allocate_threads(ans, nreg=64)
    assert result.fits()
    assert result.total_moves == 0
    for t, an in zip(result.threads, ans):
        b = estimate_bounds(an)
        assert t.pr == b.max_pr


def test_budget_accounting():
    ans = analyses((MINI_KERNEL, "a"), (MINI_KERNEL, "b"))
    result = allocate_threads(ans, nreg=64)
    assert result.total_registers == result.total_private + result.sgr
    assert result.sgr == max(t.sr for t in result.threads)


def test_reduction_down_to_tight_budget():
    ans = analyses((FIG3_T1, "t1"), (FIG3_T2, "t2"))
    # Lower bounds: t1 needs PR>=1, R>=2; t2 needs PR>=1 (base lives
    # across ctx), R>=2.  Make the budget exactly the floor.
    floor = allocate_threads(ans, nreg=64)
    tight = sum(estimate_bounds(a).min_pr for a in ans) + max(
        estimate_bounds(a).min_r - estimate_bounds(a).min_pr for a in ans
    )
    result = allocate_threads(ans, nreg=tight)
    assert result.fits()
    for t in result.threads:
        t.context.validate()


def test_infeasible_budget_raises():
    ans = analyses((FIG3_T1, "t1"), (FIG3_T2, "t2"))
    with pytest.raises(AllocationError):
        allocate_threads(ans, nreg=2)


def test_zero_cost_mode_inserts_no_moves():
    ans = [analyze_thread(load("url")) for _ in range(4)]
    result = allocate_threads(ans, nreg=128, zero_cost_only=True)
    assert result.total_moves == 0
    for t in result.threads:
        t.context.validate()


def test_zero_cost_mode_reaches_at_most_upper_bounds():
    ans = [analyze_thread(load("frag")) for _ in range(2)]
    result = allocate_threads(ans, nreg=128, zero_cost_only=True)
    for t, a in zip(result.threads, ans):
        b = estimate_bounds(a)
        assert b.min_pr <= t.pr <= b.max_pr


def test_round_robin_policy_also_converges():
    ans = analyses((FIG3_T1, "t1"), (FIG3_T2, "t2"))
    greedy = allocate_threads(ans, nreg=5)
    rr = allocate_threads(ans, nreg=5, policy="round_robin")
    assert greedy.fits() and rr.fits()
    # The ablation may cost more moves, never fewer than the greedy... at
    # least both must be valid; cost relation is checked loosely.
    assert rr.total_moves >= 0


def test_unknown_policy_rejected():
    ans = analyses((FIG3_T1, "t1"),)
    with pytest.raises(ValueError):
        allocate_threads(ans, nreg=16, policy="bogus")


def test_single_thread_degenerates_gracefully():
    ans = analyses((MINI_KERNEL, "only"),)
    result = allocate_threads(ans, nreg=16)
    assert result.fits()
    assert len(result.threads) == 1


def test_step_cap_raises_instead_of_silent_stop():
    ans = analyses((FIG3_T1, "t1"), (FIG3_T2, "t2"))
    # nreg=5 needs at least one reduction step; a 0-step cap cannot
    # satisfy it, and must fail loudly rather than return half-reduced.
    with pytest.raises(AllocationError, match="step cap"):
        allocate_threads(ans, nreg=5, _max_steps=0)


def test_step_cap_emits_telemetry():
    from repro.obs import events, metrics

    ans = analyses((FIG3_T1, "t1"), (FIG3_T2, "t2"))
    with metrics.scoped() as reg, events.capture() as em:
        with pytest.raises(AllocationError):
            allocate_threads(ans, nreg=5, _max_steps=0)
    caps = [e for e in em.events if e.name == "inter.step_cap"]
    assert len(caps) == 1
    assert caps[0].fields["max_steps"] == 0
    assert reg.snapshot()["counters"]["inter.step_cap"] == 1


def test_default_step_cap_never_fires_on_suite():
    # The default cap is sized from the bounds; normal allocation at any
    # feasible budget must terminate by satisfaction or bound exhaustion.
    ans = analyses((FIG3_T1, "t1"), (FIG3_T2, "t2"))
    result = allocate_threads(ans, nreg=5)
    assert result.fits()
