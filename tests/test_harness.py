"""Tests for the experiment harnesses (small configurations)."""

import pytest

from repro.harness.fig14 import Fig14Row, average_saving, render_fig14, run_fig14
from repro.harness.report import text_table
from repro.harness.table1 import render_table1, run_table1
from repro.harness.table2 import render_table2, run_table2
from repro.harness.table3 import (
    SCENARIOS,
    render_table3,
    run_scenario,
)

LIGHT = ["frag", "drr"]


def test_text_table_alignment():
    out = text_table(["name", "x"], [("a", 1), ("bb", 22)])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}


def test_table1_rows():
    rows = run_table1(LIGHT, packets=2)
    assert [r.name for r in rows] == LIGHT
    for r in rows:
        assert r.instructions > 0
        assert r.cycles_per_iter > 0
        assert r.reg_p_csb_max <= r.max_pr
        assert r.reg_p_max <= r.max_r
    assert "RegPmax" in render_table1(rows)


def test_table2_rows():
    rows = run_table2(LIGHT)
    for r in rows:
        assert r.moves >= 0
        assert 0 <= r.overhead < 0.5
    assert "overhead" in render_table2(rows)


def test_fig14_rows():
    rows = run_fig14(LIGHT, nthd=4, nreg=128)
    for r in rows:
        assert r.multithread_total <= r.baseline_total
        assert 0 <= r.saving < 1
    assert 0 <= average_saving(rows) < 1
    assert "saving" in render_fig14(rows)


def test_fig14_row_arithmetic():
    row = Fig14Row(name="x", single_thread_regs=10, pr=8, sr=4, nthd=4)
    assert row.baseline_total == 40
    assert row.multithread_total == 36
    assert row.saving == pytest.approx(0.1)


def test_table3_scenarios_registered():
    assert len(SCENARIOS) == 3
    for names in SCENARIOS.values():
        assert len(names) == 4


def test_table3_small_scenario():
    sc = run_scenario(
        "light", ("frag", "drr", "url", "ipchains"), nreg=128, packets=10
    )
    assert sc.verified
    assert len(sc.threads) == 4
    for t in sc.threads:
        assert t.cycles_spill > 0 and t.cycles_sharing > 0
    assert "cyc/iter" in render_table3([sc])
