"""Unit tests for the npc lexer and parser."""

import pytest

from repro.npc import ast
from repro.npc.lexer import NpcSyntaxError, tokenize
from repro.npc.parser import parse


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


def test_tokenize_basic():
    assert kinds("x = 1;") == [
        ("name", "x"), ("op", "="), ("number", "1"), ("op", ";")
    ]


def test_tokenize_maximal_munch():
    assert kinds("a<<b <= c == d") == [
        ("name", "a"), ("op", "<<"), ("name", "b"),
        ("op", "<="), ("name", "c"), ("op", "=="), ("name", "d"),
    ]


def test_tokenize_hex_and_comments():
    toks = kinds("x = 0xFF; // trailing\n")
    assert ("number", "0xFF") in toks
    assert all(t[0] != "comment" for t in toks)


def test_tokenize_tracks_lines():
    toks = tokenize("x = 1;\ny = 2;\n")
    y = next(t for t in toks if t.text == "y")
    assert y.line == 2


def test_tokenize_rejects_junk():
    with pytest.raises(NpcSyntaxError):
        tokenize("x = $;")


def test_parse_assignment():
    prog = parse("x = 1 + 2 * 3;")
    (stmt,) = prog.body
    assert isinstance(stmt, ast.Assign)
    assert isinstance(stmt.value, ast.Binary)
    assert stmt.value.op == "+"
    assert stmt.value.right.op == "*"  # precedence


def test_parse_parentheses_override():
    (stmt,) = parse("x = (1 + 2) * 3;").body
    assert stmt.value.op == "*"


def test_parse_left_associativity():
    (stmt,) = parse("x = 10 - 4 - 3;").body
    assert stmt.value.op == "-"
    assert isinstance(stmt.value.left, ast.Binary)


def test_parse_mem_read_write():
    prog = parse("x = mem[p + 1]; mem[p] = x;")
    read, write = prog.body
    assert isinstance(read.value, ast.MemRead)
    assert isinstance(write, ast.MemWrite)


def test_parse_if_else_chain():
    prog = parse(
        "if (a < b) { x = 1; } else if (a == b) { x = 2; } else { x = 3; }"
    )
    (stmt,) = prog.body
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.else_body[0], ast.If)


def test_parse_while_break_continue():
    prog = parse("while (1) { if (x == 0) break; continue; }")
    (loop,) = prog.body
    assert isinstance(loop, ast.While)


def test_parse_braceless_bodies():
    prog = parse("if (x) y = 1; else y = 2;")
    (stmt,) = prog.body
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_parse_intrinsics():
    prog = parse("p = recv(); send(p); ctx(); halt();")
    kinds_ = [type(s).__name__ for s in prog.body]
    assert kinds_ == ["Assign", "Send", "CtxSwitch", "Halt"]


def test_parse_var_declarations():
    prog = parse("var a, b; a = 1; b = 2;")
    assert prog.declared == ("a", "b")


def test_parse_error_reports_line():
    with pytest.raises(NpcSyntaxError) as exc:
        parse("x = 1;\ny = ;\n")
    assert "line 2" in str(exc.value)


def test_parse_missing_semicolon():
    with pytest.raises(NpcSyntaxError):
        parse("x = 1")
