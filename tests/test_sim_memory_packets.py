"""Unit tests for the memory model and packet workloads."""

import pytest

from repro.errors import SimulationError
from repro.sim.memory import Memory
from repro.sim.packets import Lcg, PACKET_SCRATCH, make_workload


def test_memory_default_zero():
    m = Memory()
    assert m.read(1234) == 0


def test_memory_write_read():
    m = Memory()
    m.write(10, 0xDEADBEEF)
    assert m.read(10) == 0xDEADBEEF


def test_memory_wraps_values():
    m = Memory()
    m.write(1, 2**32 + 7)
    assert m.read(1) == 7


def test_memory_bounds_checked():
    m = Memory(size=100)
    with pytest.raises(SimulationError):
        m.read(100)
    with pytest.raises(SimulationError):
        m.write(3000, 1)


def test_block_helpers():
    m = Memory()
    m.write_block(50, [1, 2, 3])
    assert m.read_block(50, 3) == [1, 2, 3]


def test_lcg_determinism():
    a = Lcg(42)
    b = Lcg(42)
    assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]


def test_lcg_seed_sensitivity():
    assert Lcg(1).next() != Lcg(2).next()


def test_lcg_range():
    rng = Lcg(7)
    for _ in range(200):
        x = rng.next_in(4, 16)
        assert 4 <= x <= 16


def test_workload_layout():
    m = Memory()
    wl = make_workload(m, base=1000, n_packets=3, payload_words=8, seed=5)
    assert len(wl) == 3
    for base, size in zip(wl.bases, wl.payload_words):
        assert m.read(base) == size
        assert size == 8
    # Buffers do not overlap (length word + payload + scratch).
    for i in range(len(wl) - 1):
        assert wl.bases[i + 1] >= wl.bases[i] + 1 + 8 + PACKET_SCRATCH


def test_workload_deterministic():
    m1, m2 = Memory(), Memory()
    a = make_workload(m1, 0, 4, 8, seed=9)
    b = make_workload(m2, 0, 4, 8, seed=9)
    assert a.bases == b.bases
    assert m1.snapshot() == m2.snapshot()


def test_workload_varying_sizes():
    m = Memory()
    wl = make_workload(m, 0, 20, 16, seed=3, vary_size=True)
    assert min(wl.payload_words) >= 4
    assert max(wl.payload_words) <= 16
    assert len(set(wl.payload_words)) > 1
