"""Differential tests: every harness yields identical results with
``jobs>1`` as serially (the sweep executor must be invisible)."""

from repro.core.cache import scoped
from repro.harness.fig14 import run_fig14
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2
from repro.harness.table3 import run_table3

LIGHT = ["frag", "drr"]


def rows(result):
    return [r.to_dict() for r in result]


def test_table1_parallel_matches_serial():
    with scoped():
        serial = rows(run_table1(LIGHT, packets=2))
    with scoped():
        parallel = rows(run_table1(LIGHT, packets=2, jobs=2))
    assert parallel == serial


def test_table2_parallel_matches_serial():
    with scoped():
        serial = rows(run_table2(LIGHT))
    with scoped():
        parallel = rows(run_table2(LIGHT, jobs=2))
    assert parallel == serial


def test_fig14_parallel_matches_serial():
    with scoped():
        serial = rows(run_fig14(LIGHT, nthd=4, nreg=128))
    with scoped():
        parallel = rows(run_fig14(LIGHT, nthd=4, nreg=128, jobs=2))
    assert parallel == serial


def test_table3_parallel_matches_serial():
    # Two scenarios so jobs=2 actually builds a pool (a single item
    # short-circuits to the serial path).
    scenarios = {
        "frag x4": ("frag", "frag", "frag", "frag"),
        "drr x4": ("drr", "drr", "drr", "drr"),
    }
    with scoped():
        serial = rows(run_table3(scenarios, nreg=64, packets=2, verify=False))
    with scoped():
        parallel = rows(
            run_table3(scenarios, nreg=64, packets=2, verify=False, jobs=2)
        )
    assert parallel == serial
