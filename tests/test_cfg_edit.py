"""Unit tests for program editing (insertion, edge splitting)."""

import pytest

from repro.cfg.edit import InsertMode, ProgramEditor
from repro.errors import ValidationError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, VirtualReg
from repro.ir.parser import parse_program
from repro.ir.printer import format_program
from repro.ir.validate import validate_program
from repro.sim.run import outputs_match, run_reference


def nopi(n=1):
    return [Instruction(Opcode.NOP, ()) for _ in range(n)]


def test_insert_before_shifts_labels(mini_kernel):
    editor = ProgramEditor(mini_kernel)
    old_loop = mini_kernel.labels["loop"]
    editor.insert_before(0, nopi(2))
    out = editor.commit()
    assert out.labels["loop"] == old_loop + 2
    validate_program(out)


def test_insert_all_paths_lands_after_label(mini_kernel):
    target = mini_kernel.labels["loop"]
    editor = ProgramEditor(mini_kernel)
    editor.insert_before(target, nopi(1), InsertMode.ALL_PATHS)
    out = editor.commit()
    # The label now points AT the inserted nop (runs on jumps too).
    assert out.instrs[out.labels["loop"]].opcode is Opcode.NOP


def test_insert_fallthrough_only_lands_before_label(mini_kernel):
    target = mini_kernel.labels["loop"]
    editor = ProgramEditor(mini_kernel)
    editor.insert_before(target, nopi(1), InsertMode.FALLTHROUGH_ONLY)
    out = editor.commit()
    # Jumps to the label skip the inserted nop.
    assert out.instrs[out.labels["loop"]].opcode is not Opcode.NOP
    assert out.instrs[out.labels["loop"] - 1].opcode is Opcode.NOP


def test_insert_after_rejects_terminal():
    p = parse_program("br x\nx:\n halt\n", "t")
    editor = ProgramEditor(p)
    with pytest.raises(ValidationError):
        editor.insert_after(0, nopi())


def test_edge_split_on_branch_edge_uses_trampoline(fig3_t1):
    # Edge from the conditional branch (index 2) to L1.
    src = 2
    dst = fig3_t1.labels["L1"]
    editor = ProgramEditor(fig3_t1)
    editor.insert_on_edge(src, dst, nopi(1))
    out = editor.commit()
    validate_program(out, check_init=False)
    # L1 has two predecessors... actually only the branch; but the editor
    # may still choose direct insertion; either way semantics hold: the
    # branch target must reach a nop before the original L1 code.
    assert len(out.instrs) == len(fig3_t1.instrs) + 1 or (
        len(out.instrs) == len(fig3_t1.instrs) + 2  # nop + trampoline br
    )


def test_edge_split_preserves_semantics(mini_kernel):
    # Insert a harmless self-move on every CFG edge out of the branch at
    # 'loop' and check observable behaviour is unchanged.
    head = mini_kernel.labels["loop"]
    instr = mini_kernel.instrs[head]
    assert instr.spec.is_branch
    editor = ProgramEditor(mini_kernel)
    mov = Instruction(
        Opcode.MOV, (VirtualReg("sum"), VirtualReg("sum"))
    )
    for succ in mini_kernel.successors(head):
        editor.insert_on_edge(head, succ, [mov])
    out = editor.commit()
    validate_program(out)
    a = run_reference([mini_kernel], packets_per_thread=4)
    b = run_reference([out], packets_per_thread=4)
    assert outputs_match(a, b)


def test_fallthrough_edge_insertion_only_on_that_path():
    p = parse_program(
        """
        movi %a, 0
        movi %n, 3
    loop:
        addi %a, %a, 1
        bnei %a, 2, skip
        movi %a, 10
    skip:
        blt %a, %n, loop
        store %a, [%n]
        halt
        """,
        "t",
    )
    # Insert on the fallthrough edge (bnei -> movi %a, 10).
    bnei = next(i for i, ins in enumerate(p.instrs) if ins.opcode is Opcode.BNEI)
    editor = ProgramEditor(p)
    editor.insert_on_edge(bnei, bnei + 1, nopi(1))
    out = editor.commit()
    validate_program(out)
    a = run_reference([p])
    b = run_reference([out])
    assert outputs_match(a, b)


def test_multiple_edits_against_original_indices(mini_kernel):
    editor = ProgramEditor(mini_kernel)
    editor.insert_before(2, nopi(1))
    editor.insert_before(5, nopi(2))
    editor.insert_after(0, nopi(1))
    out = editor.commit()
    assert len(out.instrs) == len(mini_kernel.instrs) + 4
    validate_program(out)
    a = run_reference([mini_kernel], packets_per_thread=3)
    b = run_reference([out], packets_per_thread=3)
    assert outputs_match(a, b)
