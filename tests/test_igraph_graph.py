"""Unit tests for the undirected graph type."""

import pytest

from repro.igraph.graph import UndirectedGraph


def g_with(*edges):
    g = UndirectedGraph()
    for a, b in edges:
        g.add_edge(a, b)
    return g


def test_add_edge_symmetry():
    g = g_with(("a", "b"))
    assert g.has_edge("a", "b") and g.has_edge("b", "a")
    assert g.degree("a") == 1


def test_self_loop_rejected():
    g = UndirectedGraph()
    with pytest.raises(ValueError):
        g.add_edge("a", "a")


def test_nodes_sorted_deterministically():
    g = g_with(("c", "a"), ("b", "a"))
    assert g.nodes() == ["a", "b", "c"]


def test_edges_listed_once():
    g = g_with(("a", "b"), ("b", "c"), ("a", "c"))
    assert g.edges() == [("a", "b"), ("a", "c"), ("b", "c")]
    assert g.n_edges() == 3


def test_remove_node_cleans_neighbors():
    g = g_with(("a", "b"), ("b", "c"))
    g.remove_node("b")
    assert "b" not in g
    assert g.degree("a") == 0 and g.degree("c") == 0


def test_copy_is_independent():
    g = g_with(("a", "b"))
    h = g.copy()
    h.remove_node("a")
    assert g.has_edge("a", "b")
    assert "a" not in h


def test_subgraph():
    g = g_with(("a", "b"), ("b", "c"), ("c", "d"))
    sub = g.subgraph(["a", "b", "c"])
    assert sub.has_edge("a", "b") and sub.has_edge("b", "c")
    assert "d" not in sub
    assert sub.n_edges() == 2


def test_cached_views_track_mutation():
    g = g_with(("a", "b"))
    assert g.nodes() == ["a", "b"]
    assert g.edges() == [("a", "b")]
    g.add_edge("a", "c")
    assert g.nodes() == ["a", "b", "c"]
    assert g.edges() == [("a", "b"), ("a", "c")]
    g.remove_edge("a", "b")
    assert g.edges() == [("a", "c")]
    g.remove_node("c")
    assert g.nodes() == ["a", "b"]
    assert g.edges() == []


def test_cached_views_survive_noop_mutations():
    g = g_with(("a", "b"))
    nodes_before = g.nodes()
    g.add_node("a")           # already present
    g.remove_node("zzz")      # absent
    g.remove_edge("a", "zzz")  # absent
    assert g.nodes() is nodes_before  # cache not invalidated needlessly


def test_neighbors_sorted_and_fresh():
    g = g_with(("b", "a"), ("b", "c"))
    assert g.neighbors("b") == ["a", "c"]
    g.add_edge("b", "d")
    assert g.neighbors("b") == ["a", "c", "d"]


def test_copy_does_not_share_caches():
    g = g_with(("a", "b"))
    g.nodes()
    h = g.copy()
    h.add_edge("a", "c")
    assert g.nodes() == ["a", "b"]
    assert h.nodes() == ["a", "b", "c"]
