"""Unit tests for the undirected graph type."""

import pytest

from repro.igraph.graph import UndirectedGraph


def g_with(*edges):
    g = UndirectedGraph()
    for a, b in edges:
        g.add_edge(a, b)
    return g


def test_add_edge_symmetry():
    g = g_with(("a", "b"))
    assert g.has_edge("a", "b") and g.has_edge("b", "a")
    assert g.degree("a") == 1


def test_self_loop_rejected():
    g = UndirectedGraph()
    with pytest.raises(ValueError):
        g.add_edge("a", "a")


def test_nodes_sorted_deterministically():
    g = g_with(("c", "a"), ("b", "a"))
    assert g.nodes() == ["a", "b", "c"]


def test_edges_listed_once():
    g = g_with(("a", "b"), ("b", "c"), ("a", "c"))
    assert g.edges() == [("a", "b"), ("a", "c"), ("b", "c")]
    assert g.n_edges() == 3


def test_remove_node_cleans_neighbors():
    g = g_with(("a", "b"), ("b", "c"))
    g.remove_node("b")
    assert "b" not in g
    assert g.degree("a") == 0 and g.degree("c") == 0


def test_copy_is_independent():
    g = g_with(("a", "b"))
    h = g.copy()
    h.remove_node("a")
    assert g.has_edge("a", "b")
    assert "a" not in h


def test_subgraph():
    g = g_with(("a", "b"), ("b", "c"), ("c", "d"))
    sub = g.subgraph(["a", "b", "c"])
    assert sub.has_edge("a", "b") and sub.has_edge("b", "c")
    assert "d" not in sub
    assert sub.n_edges() == 2
