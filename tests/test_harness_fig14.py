"""Regression tests for the Figure-14 shared-analysis fast path.

``run_fig14`` used to analyse the same kernel once per thread copy;
now it analyses once and shares the :class:`ThreadAnalysis` across all
``nthd`` slots.  These tests pin down that the shortcut is sound: the
results are identical to per-copy analyses, and the inter-thread
allocator never mutates the shared analysis.
"""

import copy

from repro.core.analysis import analyze_thread
from repro.core.cache import scoped
from repro.core.inter import allocate_threads
from repro.harness.fig14 import run_fig14
from repro.suite.registry import load

LIGHT = ["frag", "drr"]


def test_shared_analysis_matches_per_copy():
    for name in LIGHT:
        # The old code path: a fresh analysis per thread copy.
        separate = [analyze_thread(load(name)) for _ in range(4)]
        want = allocate_threads(separate, nreg=128, zero_cost_only=True)
        with scoped():
            row = run_fig14([name], nthd=4, nreg=128)[0]
        assert row.pr == max(t.pr for t in want.threads)
        assert row.sr == want.sgr


def test_allocation_does_not_mutate_shared_analysis():
    an = analyze_thread(load("frag"))
    baseline = {
        "slots": copy.deepcopy(an.slots),
        "flow_edges": copy.deepcopy(an.flow_edges),
        "occupants": copy.deepcopy(an.occupants),
        "conflicts_at": copy.deepcopy(an.conflicts_at),
        "csb_slots_of": copy.deepcopy(an.csb_slots_of),
    }
    first = allocate_threads([an] * 4, nreg=128, zero_cost_only=True)
    second = allocate_threads([an] * 4, nreg=128, zero_cost_only=True)
    # Same inputs, same outputs: nothing leaked between runs.
    assert [(t.pr, t.sr) for t in first.threads] == [
        (t.pr, t.sr) for t in second.threads
    ]
    assert first.sgr == second.sgr
    for field, want in baseline.items():
        assert getattr(an, field) == want, f"{field} mutated"


def test_rows_stable_across_repeated_runs():
    with scoped():
        first = [r.to_dict() for r in run_fig14(LIGHT, nthd=4, nreg=128)]
        second = [r.to_dict() for r in run_fig14(LIGHT, nthd=4, nreg=128)]
    assert first == second
