"""Tests for the telemetry subsystem (repro.obs)."""

import json

import pytest

from repro.core.pipeline import allocate_programs
from repro.errors import SimulationError
from repro.ir.parser import parse_program
from repro.obs import events, metrics
from repro.obs.export import (
    bench_snapshot,
    run_snapshot,
    to_jsonable,
    write_json,
    write_jsonl,
)
from repro.sim.machine import Machine
from repro.suite.registry import load


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------

def test_span_nesting_paths_and_timing():
    ticks = iter(range(100))
    em = events.Emitter(clock=lambda: float(next(ticks)))
    with em.span("outer"):
        em.emit("point", x=1)
        with em.span("inner"):
            pass
    inner = em.events_named("inner")[0]
    outer = em.events_named("outer")[0]
    point = em.events_named("point")[0]
    assert point.span == "outer"
    assert inner.span == "outer"
    assert inner.path == "outer/inner"
    assert outer.span is None
    assert inner.dur is not None and inner.dur > 0
    assert outer.dur > inner.dur
    # Spans are sequenced at exit: inner closes before outer.
    assert point.seq < inner.seq < outer.seq


def test_phase_timings_accumulate_repeated_spans():
    ticks = iter(range(100))
    em = events.Emitter(clock=lambda: float(next(ticks)))
    for _ in range(3):
        with em.span("phase"):
            pass
    timings = em.phase_timings()
    assert set(timings) == {"phase"}
    assert timings["phase"] == sum(
        e.dur for e in em.events_named("phase")
    )


def test_capture_installs_and_restores():
    assert events.get_emitter() is events.NULL
    with events.capture() as em:
        assert events.get_emitter() is em
        events.emit("hello", n=1)
    assert events.get_emitter() is events.NULL
    assert em.counts() == {"hello": 1}


def test_disabled_by_default_records_nothing():
    """The zero-cost guarantee: no emitter installed, nothing recorded."""
    em = events.get_emitter()
    assert em is events.NULL
    assert not em.enabled
    program = load("fir2dim")
    allocate_programs([program], nreg=64)
    machine = Machine([parse_program("movi %a, 1\nhalt\n", "t")])
    machine.run()
    assert em.events == ()
    assert machine.timeline is None  # timeline follows obs.enabled()


def test_event_to_dict_omits_empty_optionals():
    em = events.Emitter(clock=lambda: 0.0)
    d = em.emit("bare").to_dict()
    assert set(d) == {"name", "kind", "ts", "seq"}
    d = em.emit("full", a=1).to_dict()
    assert d["fields"] == {"a": 1}


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

def test_metrics_snapshot_json_round_trip():
    with metrics.scoped() as reg:
        reg.counter("inter.steps").inc(3)
        reg.gauge("sim.util").set(0.75)
        h = reg.histogram("inter.step_delta")
        for v in (0, 1, 7, 1000):
            h.observe(v)
        snap = reg.snapshot()
    back = json.loads(json.dumps(snap))
    assert back == snap
    assert back["counters"]["inter.steps"] == 3
    assert back["gauges"]["sim.util"] == 0.75
    hist = back["histograms"]["inter.step_delta"]
    assert hist["count"] == 4
    assert hist["min"] == 0 and hist["max"] == 1000
    assert hist["buckets"]["0"] == 1
    assert sum(hist["buckets"].values()) == hist["count"]


def test_scoped_registry_isolates():
    outer = metrics.registry()
    with metrics.scoped() as reg:
        assert metrics.registry() is reg
        reg.counter("x").inc()
    assert metrics.registry() is outer
    assert "x" not in outer.snapshot()["counters"]


def test_labeled_series_are_independent_and_deterministic():
    with metrics.scoped() as reg:
        reg.counter("inter.steps").inc(5)
        # Keyword order must not matter: both calls hit one series.
        reg.counter("sim.thread.busy_cycles", thread=2, kernel="md5").inc(7)
        reg.counter("sim.thread.busy_cycles", kernel="md5", thread=2).inc(1)
        snap = reg.snapshot()
    counters = snap["counters"]
    assert counters["inter.steps"] == 5  # unlabeled series unchanged
    assert counters['sim.thread.busy_cycles{kernel="md5",thread="2"}'] == 8
    # Snapshot ordering is a plain string sort over the full keys.
    assert list(counters) == sorted(counters)


def test_label_key_format_parse_round_trip():
    pairs = metrics.normalize_labels(
        {"kernel": 'we"ird\\name', "thread": 3, "note": "a\nb"}
    )
    key = metrics.format_key("sim.x", pairs)
    name, back = metrics.parse_key(key)
    assert name == "sim.x" and back == pairs
    assert metrics.parse_key("plain") == ("plain", ())
    with pytest.raises(ValueError):
        metrics.parse_key("bad{unterminated")


def test_merge_snapshot_adds_labels_and_folds_values():
    donor = metrics.MetricsRegistry()
    donor.counter("cache.hit", kernel="crc").inc(3)
    donor.gauge("sim.util").set(0.5)
    donor.histogram("inter.step_delta").observe(7)
    snap = donor.snapshot()

    target = metrics.MetricsRegistry()
    target.counter("cache.hit", kernel="crc", item=0).inc(1)
    target.merge_snapshot(snap, labels={"item": 0})
    target.merge_snapshot(snap, labels={"item": 1})
    out = target.snapshot()
    assert out["counters"]['cache.hit{item="0",kernel="crc"}'] == 4
    assert out["counters"]['cache.hit{item="1",kernel="crc"}'] == 3
    assert out["gauges"]['sim.util{item="0"}'] == 0.5
    hist = out["histograms"]['inter.step_delta{item="1"}']
    assert hist["count"] == 1 and hist["max"] == 7
    # Merged histograms keep the donor's exact bucket keys.
    assert list(hist["buckets"]) == [
        str(b) for b in metrics.DEFAULT_BUCKETS
    ] + ["+inf"]


def test_timing_buckets_resolve_sub_second_observations():
    """DEFAULT_BUCKETS collapses all sub-second timings into one bucket;
    TIMING_BUCKETS must spread them out."""
    with metrics.scoped() as reg:
        h = reg.histogram("alloc.phase_seconds", bounds=metrics.TIMING_BUCKETS)
        for v in (0.0002, 0.003, 0.04, 0.5):
            h.observe(v)
        buckets = h.snapshot()["buckets"]
    assert sum(1 for c in buckets.values() if c) == 4


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------

def test_to_jsonable_strictness():
    assert to_jsonable(float("nan")) is None
    assert to_jsonable(float("inf")) is None
    assert to_jsonable({1: (2, 3)}) == {"1": [2, 3]}


def test_write_json_and_jsonl(tmp_path):
    p = write_json(tmp_path / "a.json", {"v": float("nan")})
    assert json.loads(p.read_text()) == {"v": None}
    p = write_jsonl(tmp_path / "b.jsonl", [{"a": 1}, {"b": 2}])
    rows = [json.loads(line) for line in p.read_text().splitlines()]
    assert rows == [{"a": 1}, {"b": 2}]


def test_bench_snapshot_shape(tmp_path):
    path = bench_snapshot("t1", [{"name": "md5", "x": 1}], tmp_path)
    assert path.name == "BENCH_t1.json"
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro.bench/1"
    assert doc["bench"] == "t1"
    assert doc["data"] == [{"name": "md5", "x": 1}]


# ----------------------------------------------------------------------
# instrumented pipeline + simulator
# ----------------------------------------------------------------------

def test_pipeline_emits_phase_spans():
    programs = [load("md5"), load("fir2dim")]
    with events.capture() as em:
        allocate_programs(programs, nreg=128)
    timings = em.phase_timings()
    for phase in (
        "allocate",
        "allocate/validate",
        "allocate/analyze",
        "allocate/bounds",
        "allocate/inter",
        "allocate/assign",
        "allocate/rewrite",
    ):
        assert phase in timings, timings
    # The phases partition the top-level span.
    parts = sum(v for k, v in timings.items() if k.startswith("allocate/"))
    assert parts <= timings["allocate"]


def test_inter_steps_recorded_under_pressure():
    programs = [load("md5"), load("fir2dim")]
    with metrics.scoped() as reg, events.capture() as em:
        allocate_programs(programs, nreg=64)
    starts = em.events_named("inter.start")
    dones = em.events_named("inter.done")
    steps = em.events_named("inter.step")
    assert len(starts) == len(dones) == 1
    assert starts[0].fields["requirement"] > starts[0].fields["nreg"]
    assert steps, "a squeezed budget must force greedy reductions"
    assert dones[0].fields["fits"] is True
    assert dones[0].fields["steps"] == len(steps)
    counters = reg.snapshot()["counters"]
    assert counters["inter.steps"] == len(steps)


def test_timeline_segments_sum_to_machine_cycles():
    a = parse_program("movi %x, 1\nctx\nmovi %x, 2\nhalt\n", "alpha")
    b = parse_program("load %y, [%x]\nctx\nhalt\n", "beta")
    machine = Machine([a, b], timeline=True)
    stats = machine.run()
    acct = machine.timeline_accounting()
    assert acct["cycles"] == stats.cycles
    total = acct["idle"] + sum(
        t["run"] + t["switch"] for t in acct["threads"]
    )
    assert total == stats.cycles
    # Segments tile [0, cycles) with no gaps or overlaps.
    segments = sorted(machine.timeline, key=lambda s: s.start)
    assert segments[0].start == 0
    assert segments[-1].end == stats.cycles
    for prev, cur in zip(segments, segments[1:]):
        assert prev.end == cur.start


def test_timeline_accounting_requires_timeline():
    machine = Machine([parse_program("halt\n", "t")])
    machine.run()
    with pytest.raises(SimulationError):
        machine.timeline_accounting()


def test_sim_accounting_event_under_capture():
    p = parse_program("movi %a, 1\nctx\nhalt\n", "t")
    with events.capture() as em:
        stats = Machine([p]).run()
    accts = em.events_named("sim.accounting")
    assert len(accts) == 1
    assert accts[0].fields["cycles"] == stats.cycles


# ----------------------------------------------------------------------
# run_snapshot + CLI
# ----------------------------------------------------------------------

def test_run_snapshot_shape():
    programs = [load("md5"), load("fir2dim")]
    with metrics.scoped() as reg, events.capture() as em:
        allocate_programs(programs, nreg=64)
    snap = run_snapshot(em, reg)
    assert snap["schema"] == "repro.obs/1"
    assert "allocate/inter" in snap["phases"]
    names = [s["event"] for s in snap["inter_steps"]]
    assert names[0] == "inter.start" and names[-1] == "inter.done"
    assert "inter.step" in names
    # Strict JSON end to end.
    json.dumps(snap, allow_nan=False)


def test_cli_metrics_flag(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "m.json"
    trace = tmp_path / "t.jsonl"
    rc = main(
        [
            "run",
            "bench:md5",
            "--allocated",
            "--packets",
            "2",
            "--metrics",
            str(out),
            "--trace-json",
            str(trace),
        ]
    )
    assert rc == 0
    snap = json.loads(out.read_text())
    assert snap["schema"] == "repro.obs/1"
    assert any(k.startswith("allocate") for k in snap["phases"])
    assert snap["sim"], "simulated runs must leave accounting records"
    for acct in snap["sim"]:
        total = acct["idle"] + sum(
            t["run"] + t["switch"] for t in acct["threads"]
        )
        assert total == acct["cycles"]
    rows = [json.loads(l) for l in trace.read_text().splitlines()]
    assert rows and all("name" in r and "seq" in r for r in rows)
    # After the CLI run the globals are restored.
    assert events.get_emitter() is events.NULL


def test_cli_prom_and_chrome_flags(tmp_path, capsys):
    from repro.cli import main

    prom = tmp_path / "m.prom"
    chrome = tmp_path / "t.json"
    rc = main(
        [
            "run",
            "bench:md5",
            "--allocated",
            "--packets",
            "2",
            "--prom",
            str(prom),
            "--trace-chrome",
            str(chrome),
        ]
    )
    assert rc == 0
    text = prom.read_text()
    assert "# TYPE repro_cache_hit counter" in text or \
        "# TYPE repro_cache_miss counter" in text
    assert '{kernel="md5"}' in text
    doc = json.loads(chrome.read_text())
    names = {r["name"] for r in doc["traceEvents"]}
    assert "allocate" in names and "inter" in names
    assert events.get_emitter() is events.NULL


def test_cli_chaos_accepts_telemetry_flags(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "m.json"
    rc = main(
        ["chaos", "--kernels", "crc", "--metrics", str(out)]
    )
    assert rc == 0
    snap = json.loads(out.read_text())
    assert snap["schema"] == "repro.obs/1"
    assert snap["metrics"]["counters"], "chaos must record metric series"


def test_cli_profile_command(capsys):
    from repro.cli import main

    rc = main(["profile", "bench:md5", "bench:fir2dim", "--nreg", "64",
               "--packets", "2"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "allocate/inter" in text
    assert "wall" in text.lower()


def test_profile_programs_api():
    from repro.obs.profile import profile_programs

    report = profile_programs(
        [load("md5"), load("fir2dim")], nreg=64, packets=2
    )
    assert report.wall_s > 0
    assert "allocate" in report.phases
    d = report.to_dict()
    json.dumps(d, allow_nan=False)
