"""Unit tests for the Program container."""

import pytest

from repro.errors import ValidationError
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_program
from repro.ir.program import Program


def test_successors_fallthrough(straight):
    assert straight.successors(0) == (1,)


def test_successors_halt(straight):
    last = len(straight.instrs) - 1
    assert straight.successors(last) == ()


def test_successors_conditional(fig3_t1):
    # The bnei at index 2 falls through and jumps to L1.
    succs = fig3_t1.successors(2)
    assert 3 in succs
    assert fig3_t1.labels["L1"] in succs


def test_successors_unconditional(fig3_t1):
    br = next(
        i for i, ins in enumerate(fig3_t1.instrs) if ins.opcode is Opcode.BR
    )
    assert fig3_t1.successors(br) == (fig3_t1.labels["L2"],)


def test_resolve_unknown_label(straight):
    with pytest.raises(ValidationError):
        straight.resolve("ghost")


def test_label_queries(mini_kernel):
    idx = mini_kernel.labels["loop"]
    assert mini_kernel.label_at(idx) == "loop"
    assert mini_kernel.labels_at(idx) == ["loop"]
    assert mini_kernel.label_at(idx + 1) is None


def test_virtual_and_phys_regs(mini_kernel):
    assert mini_kernel.virtual_regs()
    assert not mini_kernel.phys_regs()


def test_count_opcode(mini_kernel):
    assert mini_kernel.count_opcode(Opcode.HALT) == 1
    assert mini_kernel.count_opcode(Opcode.RECV) == 1


def test_fresh_label(mini_kernel):
    assert mini_kernel.fresh_label("brandnew") == "brandnew"
    taken = mini_kernel.fresh_label("loop")
    assert taken != "loop"
    assert taken not in mini_kernel.labels


def test_fresh_vreg(mini_kernel):
    fresh = mini_kernel.fresh_vreg("sum")
    assert fresh.name != "sum"
    fresh2 = mini_kernel.fresh_vreg("zzz")
    assert fresh2.name == "zzz"


def test_copy_is_structural(mini_kernel):
    clone = mini_kernel.copy()
    clone.instrs.pop()
    clone.labels["extra"] = 0
    assert len(mini_kernel.instrs) == len(clone.instrs) + 1
    assert "extra" not in mini_kernel.labels


def test_iteration_and_len(straight):
    assert len(straight) == len(straight.instrs)
    assert list(straight) == straight.instrs


def test_target_pcs_resolved(mini_kernel):
    targets = mini_kernel.target_pcs()
    assert len(targets) == len(mini_kernel.instrs)
    loop_pc = mini_kernel.labels["loop"]
    resolved = [t for t in targets if t is not None]
    assert loop_pc in resolved
    for pc, target in enumerate(targets):
        instr = mini_kernel.instrs[pc]
        if not instr.spec.is_branch:
            assert target is None
        else:
            assert target == mini_kernel.labels[instr.target.name]


def test_target_pcs_straightline_all_none(straight):
    assert straight.target_pcs() == tuple(
        None for _ in straight.instrs
    )


def test_undefined_label_still_rejected_at_validate():
    # Regression guard: pre-resolving branch targets for the fast
    # engine must not weaken validation of dangling labels.
    from repro.ir.validate import validate_program

    program = parse_program("movi %a, 1\nbr nowhere\nhalt\n", "bad")
    with pytest.raises(ValidationError, match="nowhere"):
        validate_program(program)
    # target_pcs itself stays lazy about dangling labels (None entry);
    # validation above is the front line, decode is the second.
    assert program.target_pcs()[1] is None


def test_undefined_label_rejected_at_decode():
    from repro.errors import ValidationError as VE
    from repro.sim.decode import decode_program

    program = parse_program("br nowhere\nhalt\n", "bad")
    with pytest.raises(VE, match="nowhere"):
        decode_program(program)
