"""Round-trip tests: parse(format(p)) == p."""

import pytest

from repro.ir.parser import parse_instruction, parse_program
from repro.ir.printer import format_instruction, format_program
from repro.suite.registry import BENCHMARKS, load


@pytest.mark.parametrize(
    "text",
    [
        "add %a, %b, %c",
        "addi %a, %b, 42",
        "movi %a, 4294967295",
        "mov $r3, $r12",
        "load %w, [%buf + 4]",
        "load %w, [%buf]",
        "store %w, [%buf + 2]",
        "beq %a, %b, loop",
        "blti %i, 16, loop",
        "br out",
        "ctx",
        "halt",
        "nop",
        "recv %p",
        "send %p",
    ],
)
def test_instruction_round_trip(text):
    instr = parse_instruction(text)
    assert parse_instruction(format_instruction(instr)) == instr


def test_program_round_trip(mini_kernel):
    rt = parse_program(format_program(mini_kernel), mini_kernel.name)
    assert rt.instrs == mini_kernel.instrs
    assert rt.labels == mini_kernel.labels


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_round_trip(name):
    program = load(name)
    rt = parse_program(format_program(program), name)
    assert rt.instrs == program.instrs
    assert rt.labels == program.labels
