"""Differential tests: every batch lane is bit-identical to a scalar run.

The batch engine (:mod:`repro.sim.batch`) has no authority of its own --
its only contract is producing, for every lane, exactly the reference
interpreter's MachineStats, send queues, store traces, memory contents,
and final thread state for the scalar run with that lane's seed.  These
tests enforce that contract over the whole benchmark suite, mixed-kernel
machines, every runtime knob, the lane-divergence edge cases (size-1
batches, mixed watchdog lanes, shared decode), error paths, and
hypothesis-generated programs, plus the engine-selection policy and the
once-per-process fallback warning.
"""

from __future__ import annotations

import warnings

import pytest

np = pytest.importorskip("numpy")

from repro.errors import EngineError, SimulationError, WatchdogError
from repro.ir.parser import parse_program
from repro.ir.validate import validate_program
from repro.resilience import faults
from repro.sim.batch import (
    BatchMachine,
    build_batch_machine,
    simulate_batch,
)
from repro.sim.engine import (
    _reset_fallback_warnings,
    create_machine,
    select_engine,
    set_default_engine,
)
from repro.sim.fast import decode_cached
from repro.sim.machine import Machine
from repro.sim.memory import Memory
from repro.sim.packets import make_workload
from repro.sim.run import (
    PACKET_AREA_BASE,
    run_seed_sweep,
    run_threads,
)
from repro.suite.registry import BENCHMARKS, load
from tests.conftest import MINI_KERNEL

SEEDS = [1, 9, 42]


def ref_run(programs, seed, **kwargs):
    return run_threads(programs, seed=seed, engine="reference", **kwargs)


def assert_lane_identical(machine, outcome, ref):
    """One batch lane vs the scalar run with the same seed."""
    assert outcome.error is None
    assert outcome.stats == ref.stats
    for thread, rt in zip(
        machine.lane_threads(outcome.lane), ref.machine.threads
    ):
        assert list(thread.out_queue) == list(rt.out_queue)
        assert list(thread.stores) == list(rt.stores)
        assert thread.pc == rt.pc
        assert thread.halted == rt.halted
        assert thread.blocked_until == rt.blocked_until
        for name, value in rt.vregs.items():
            assert thread.vregs.get(name, 0) == value
        for name in set(thread.vregs) - set(rt.vregs):
            # Like the fast engine, batch mirrors every decoded vreg
            # after the run; names the program never wrote must be 0.
            assert thread.vregs[name] == 0
    assert (
        machine.memories[outcome.lane].snapshot()
        == ref.machine.memory.snapshot()
    )


# ----------------------------------------------------------------------
# Differential: the whole benchmark suite, one lane per seed.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_differential_suite_kernel(name):
    program = load(name)
    machine = build_batch_machine([program], SEEDS, packets_per_thread=5)
    outcomes = machine.run_batch()
    for seed, outcome in zip(SEEDS, outcomes):
        ref = ref_run([program], seed, packets_per_thread=5)
        assert_lane_identical(machine, outcome, ref)


def test_differential_mixed_kernels():
    programs = [load(n) for n in ("frag", "ipchains", "wraps_send", "drr")]
    machine = build_batch_machine(programs, SEEDS, packets_per_thread=4)
    outcomes = machine.run_batch()
    for seed, outcome in zip(SEEDS, outcomes):
        ref = ref_run(programs, seed, packets_per_thread=4)
        assert_lane_identical(machine, outcome, ref)


def test_differential_vary_size():
    program = load("url")
    machine = build_batch_machine(
        [program], SEEDS, packets_per_thread=6, vary_size=True
    )
    outcomes = machine.run_batch()
    for seed, outcome in zip(SEEDS, outcomes):
        ref = ref_run([program], seed, packets_per_thread=6, vary_size=True)
        assert_lane_identical(machine, outcome, ref)


def test_differential_measure_and_stop_on_first_halt():
    programs = [load("drr"), load("crc")]
    machine = build_batch_machine(
        programs, SEEDS, packets_per_thread=6, measure_iterations=2
    )
    outcomes = machine.run_batch(stop_on_first_halt=True)
    for seed, outcome in zip(SEEDS, outcomes):
        ref = ref_run(
            programs,
            seed,
            packets_per_thread=6,
            measure_iterations=2,
            stop_on_first_halt=True,
        )
        assert_lane_identical(machine, outcome, ref)


def test_differential_latency_regions_and_knobs():
    regions = [(PACKET_AREA_BASE, PACKET_AREA_BASE + 0x1000, 5)]
    program = load("frag")
    machine = BatchMachine(
        [program],
        n_lanes=len(SEEDS),
        latency_regions=regions,
        mem_latency=7,
        ctx_cost=3,
    )
    for lane, seed in enumerate(SEEDS):
        workload = make_workload(
            machine.memories[lane],
            base=PACKET_AREA_BASE,
            n_packets=4,
            payload_words=16,
            seed=seed,
        )
        machine.lane_threads(lane)[0].in_queue = list(workload.bases)
    outcomes = machine.run_batch()
    for seed, outcome in zip(SEEDS, outcomes):
        memory = Memory()
        ref = Machine(
            [program],
            memory=memory,
            latency_regions=regions,
            mem_latency=7,
            ctx_cost=3,
        )
        workload = make_workload(
            memory,
            base=PACKET_AREA_BASE,
            n_packets=4,
            payload_words=16,
            seed=seed,
        )
        ref.threads[0].in_queue = list(workload.bases)
        assert outcome.error is None
        assert outcome.stats == ref.run()


# ----------------------------------------------------------------------
# Lane-divergence edge cases.
# ----------------------------------------------------------------------
def test_single_lane_batch_equals_scalar():
    """A batch of size 1 (as built by the engine registry) is
    byte-for-byte a scalar run."""
    program = parse_program(MINI_KERNEL, "mini")
    memory = Memory()
    machine = create_machine([program], "batch", memory=memory)
    assert isinstance(machine, BatchMachine)
    ref_memory = Memory()
    ref = Machine([program], memory=ref_memory)
    for m, mem in ((machine, memory), (ref, ref_memory)):
        workload = make_workload(
            mem,
            base=PACKET_AREA_BASE,
            n_packets=5,
            payload_words=16,
            seed=1,
        )
        m.threads[0].in_queue = list(workload.bases)
    stats = machine.run()
    ref_stats = ref.run()
    assert stats == ref_stats
    assert machine.cycle == ref.cycle
    for thread, rt in zip(machine.threads, ref.threads):
        assert list(thread.out_queue) == list(rt.out_queue)
        assert thread.stores == rt.stores
        assert thread.pc == rt.pc
        assert thread.halted == rt.halted
        for name, value in rt.vregs.items():
            assert thread.vregs.get(name, 0) == value
    assert memory.snapshot() == ref_memory.snapshot()


def test_watchdog_mixed_lanes():
    """Lanes that trip the watchdog fail individually (same typed error,
    same message as the reference engine); healthy lanes still return
    stats identical to their scalar runs."""
    seeds = list(range(20, 28))
    program = load("url")
    machine = build_batch_machine(
        [program], seeds, packets_per_thread=8, vary_size=True
    )
    outcomes = machine.run_batch(max_cycles=4800)
    dogged = 0
    for seed, outcome in zip(seeds, outcomes):
        try:
            ref = ref_run(
                [program],
                seed,
                packets_per_thread=8,
                vary_size=True,
                max_cycles=4800,
            )
        except WatchdogError as exc:
            dogged += 1
            assert isinstance(outcome.error, WatchdogError)
            assert not outcome.ok
            assert str(outcome.error) == str(exc)
        else:
            assert outcome.ok
            assert_lane_identical(machine, outcome, ref)
    # The calibration must actually mix: some lanes die, some survive.
    assert 0 < dogged < len(seeds)


def test_lanes_share_one_decode():
    """Different-seed lanes of the same program share a single decode
    (and so does any other machine built from the same program)."""
    program = load("drr")
    machine = build_batch_machine([program], [1, 2, 3], packets_per_thread=2)
    assert machine._decoded[0] is decode_cached(program)
    other = build_batch_machine([program], [7], packets_per_thread=2)
    assert other._decoded[0] is machine._decoded[0]


def test_watchdog_message_matches_reference():
    spin = parse_program("spin:\n br spin\n", "spin")
    with pytest.raises(WatchdogError) as ref_err:
        Machine([spin], memory=Memory()).run(max_cycles=500)
    with pytest.raises(WatchdogError) as batch_err:
        BatchMachine([spin]).run(max_cycles=500)
    assert str(batch_err.value) == str(ref_err.value)


def test_bad_address_surfaces_per_lane():
    text = "movi %p, 0\nsubi %p, %p, 1\nstore %p, [%p]\nhalt\n"
    program = parse_program(text, "bad")
    validate_program(program)
    machine = BatchMachine([program], n_lanes=2)
    results = machine.run_batch()
    for result in results:
        assert isinstance(result.error, SimulationError)
        assert not result.ok


# ----------------------------------------------------------------------
# Workload-level APIs.
# ----------------------------------------------------------------------
def test_simulate_batch_matches_run_threads():
    program = parse_program(MINI_KERNEL, "mini")
    stats = simulate_batch([program], SEEDS, packets_per_thread=4)
    for seed, lane_stats in zip(SEEDS, stats):
        assert lane_stats == ref_run(
            [program], seed, packets_per_thread=4
        ).stats


def test_simulate_batch_return_errors():
    spin = parse_program("spin:\n br spin\n", "spin")
    results = simulate_batch(
        [spin], [1, 2], packets_per_thread=1, max_cycles=200,
        return_errors=True,
    )
    assert [r.lane for r in results] == [0, 1]
    assert all(isinstance(r.error, WatchdogError) for r in results)
    with pytest.raises(WatchdogError):
        simulate_batch([spin], [1, 2], packets_per_thread=1, max_cycles=200)


def test_run_seed_sweep_batch_matches_fast():
    program = load("wraps_send")
    seeds = [3, 5, 8]
    batch = run_seed_sweep([program], seeds, packets_per_thread=4,
                           engine="batch")
    fast = run_seed_sweep([program], seeds, packets_per_thread=4,
                          engine="fast")
    assert [r.stats for r in batch] == [r.stats for r in fast]
    assert [r.out_queues for r in batch] == [r.out_queues for r in fast]
    assert [r.stores for r in batch] == [r.stores for r in fast]


# ----------------------------------------------------------------------
# Engine-selection policy and error paths.
# ----------------------------------------------------------------------
def test_auto_never_picks_batch():
    assert select_engine("auto") == "fast"
    assert select_engine(None) == "fast"


def test_explicit_batch_conflicts_raise():
    program = load("frag")
    with pytest.raises(EngineError):
        select_engine("batch", trace=True)
    with pytest.raises(EngineError):
        select_engine("batch", assignment=object())
    with pytest.raises(EngineError):
        BatchMachine([program], trace=True)
    with pytest.raises(EngineError):
        BatchMachine([program], timeline=True)
    with pytest.raises(EngineError):
        BatchMachine([program], assignment=object())
    with pytest.raises(EngineError):
        create_machine([program], "batch", trace=True)


def test_shared_memory_multi_lane_rejected():
    program = load("frag")
    with pytest.raises(EngineError):
        BatchMachine([program], n_lanes=2, memory=Memory())
    with pytest.raises(SimulationError):
        BatchMachine([program], n_lanes=2, memories=[Memory()])


def test_run_rejects_multi_lane():
    machine = BatchMachine([load("frag")], n_lanes=2)
    with pytest.raises(EngineError):
        machine.run()


def test_armed_fault_plan_rejected():
    machine = build_batch_machine([load("frag")], [1], packets_per_thread=1)
    with faults.inject():
        with pytest.raises(EngineError):
            machine.run_batch()


def test_fallback_warning_deduplicated():
    """A conflicting engine *default* warns once per process, not once
    per create() call (the degradation record still fires each time)."""
    previous = set_default_engine("batch")
    _reset_fallback_warnings()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert select_engine(None, trace=True) == "reference"
            assert select_engine(None, trace=True) == "reference"
        runtime = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime) == 1
        # The test hook forgets issued warnings; the next conflict
        # warns again.
        _reset_fallback_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert select_engine(None, trace=True) == "reference"
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )
    finally:
        set_default_engine(previous)
        _reset_fallback_warnings()


# ----------------------------------------------------------------------
# Observability: the sim.batch.* label schema.
# ----------------------------------------------------------------------
def test_batch_metrics_labels():
    from repro.obs import events, metrics

    program = load("drr")
    with metrics.scoped() as registry, events.capture() as emitter:
        simulate_batch([program], [1, 2], packets_per_thread=2)
    snap = registry.snapshot()["counters"]
    assert snap['sim.batch.runs{kernel="drr",lanes="2"}'] == 1
    assert snap['sim.batch.lanes{kernel="drr",lanes="2"}'] == 2
    assert 'sim.batch.splits{kernel="drr",lanes="2"}' in snap
    runs = emitter.events_named("sim.batch.run")
    assert len(runs) == 1
    assert runs[0].fields["lanes"] == 2
    assert runs[0].fields["kernel"] == "drr"


# ----------------------------------------------------------------------
# Harness and CLI adoption.
# ----------------------------------------------------------------------
def test_batchperf_smoke():
    from repro.harness.batchperf import (
        render_batchperf,
        run_batchperf,
        summarize_batchperf,
    )

    rows = run_batchperf(names=["drr"], lanes=4, packets=3)
    assert len(rows) == 1
    assert rows[0].lanes_identical
    summary = summarize_batchperf(rows)
    assert summary["lanes"] == 4
    assert summary["lanes_identical"]
    assert "AGGREGATE" in render_batchperf(rows)


def test_trend_watches_batch_metrics():
    from repro.harness.trend import WATCHED, watched_from_bench

    assert WATCHED["sim.batch_speedup"] == "higher"
    data = {"summary": {"speedup": 4.5, "batch_ips": 1e7,
                        "lanes_identical": True}}
    assert watched_from_bench("batch", data) == {
        "sim.batch_speedup": 4.5,
        "sim.batch_ips": 1e7,
    }
    data["summary"]["lanes_identical"] = False
    assert watched_from_bench("batch", data) == {}


def test_chaos_runaway_batch_scenario():
    from repro.harness.chaos import _BY_NAME, run_scenario

    result = run_scenario(_BY_NAME["runaway-batch"], "-")
    assert result.outcome == "typed-error"
    assert "WatchdogError" in result.error


def test_cli_run_batch_engine(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "kernel.npir"
    path.write_text(MINI_KERNEL)
    assert main(["run", str(path), "--engine", "batch"]) == 0
    assert "cycles:" in capsys.readouterr().out


def test_cli_run_allocated_rejects_batch(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "kernel.npir"
    path.write_text(MINI_KERNEL)
    code = main(["run", str(path), "--allocated", "--engine", "batch"])
    assert code == 2
    err = capsys.readouterr().err
    # The error names the flag that forced the conflict.
    assert "--allocated" in err
    assert "batch" in err


def test_cli_chaos_accepts_engine_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["chaos", "--scenarios", "runaway-batch", "--engine", "fast"]
    )
    assert args.engine == "fast"


# ----------------------------------------------------------------------
# Differential: hypothesis-generated programs.
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import assume, given  # noqa: E402

from tests.test_properties import (  # noqa: E402
    SETTINGS,
    branching_program,
    straightline_program,
)


def _hypothesis_differential(text):
    program = parse_program(text, "gen")
    validate_program(program)
    batch = BatchMachine([program, program], n_lanes=2)
    for lane in range(2):
        for thread in batch.lane_threads(lane):
            thread.in_queue = [PACKET_AREA_BASE]
    ref = Machine([program, program], memory=Memory())
    for thread in ref.threads:
        thread.in_queue = [PACKET_AREA_BASE]
    try:
        ref_stats = ref.run(max_cycles=200_000)
    except SimulationError:
        results = batch.run_batch(max_cycles=200_000)
        assert all(isinstance(r.error, SimulationError) for r in results)
        assume(False)
        return
    results = batch.run_batch(max_cycles=200_000)
    for result in results:
        assert result.error is None
        assert result.stats == ref_stats
        for thread, rt in zip(
            batch.lane_threads(result.lane), ref.threads
        ):
            assert list(thread.out_queue) == list(rt.out_queue)
            assert thread.stores == rt.stores
        assert (
            batch.memories[result.lane].snapshot()
            == ref.memory.snapshot()
        )


@SETTINGS
@given(straightline_program())
def test_hypothesis_differential_straightline(text):
    _hypothesis_differential(text)


@SETTINGS
@given(branching_program())
def test_hypothesis_differential_branching(text):
    _hypothesis_differential(text)
