"""Tests for multi-PU pipelines."""

import pytest

from repro.core.pipeline import allocate_programs
from repro.errors import SimulationError
from repro.ir.parser import parse_program
from repro.sim.pipeline import PipelineStage, run_pipeline
from repro.suite.registry import load

INCREMENT = """
start:
    recv %p
    beqi %p, 0, done
    load %v, [%p + 1]
    addi %v, %v, 1
    store %v, [%p + 1]
    send %p
    br start
done:
    halt
"""


def inc(name):
    return parse_program(INCREMENT, name)


def test_two_stage_pipeline_delivers_everything():
    result = run_pipeline(
        [
            PipelineStage([inc("rx0"), inc("rx1")], name="rx"),
            PipelineStage([inc("tx")], name="tx"),
        ],
        n_packets=10,
    )
    assert result.stages[0].packets == 10
    assert len(result.delivered()) == 10


def test_each_stage_transforms_packets():
    result = run_pipeline(
        [PipelineStage([inc("a")]), PipelineStage([inc("b")])],
        n_packets=4,
    )
    # Both stages incremented word 1 of every buffer.
    for base in result.delivered():
        original = result.memory  # word1 was random; check +2 via replay
    # Replay: rebuild the same workload in a fresh memory and compare.
    from repro.sim.memory import Memory
    from repro.sim.packets import make_workload
    from repro.sim.run import PACKET_AREA_BASE

    fresh = Memory()
    wl = make_workload(fresh, PACKET_AREA_BASE, 4, 16, seed=1)
    for base in wl.bases:
        assert result.memory.read(base + 1) == (fresh.read(base + 1) + 2) % 2**32


def test_bottleneck_identified():
    heavy = load("crc")
    result = run_pipeline(
        [
            PipelineStage([inc("light")], name="light"),
            PipelineStage([heavy], name="heavy"),
        ],
        n_packets=4,
    )
    assert result.bottleneck().label == "heavy"


def test_round_robin_distribution_across_threads():
    result = run_pipeline(
        [PipelineStage([inc("a"), inc("b"), inc("c")], name="rx")],
        n_packets=7,
    )
    stats = result.stages[0].stats
    iters = [t.iterations for t in stats.threads]
    assert sum(iters) == 7
    assert max(iters) - min(iters) <= 1


def test_allocated_stage_with_safety_checker():
    out = allocate_programs([inc("x"), inc("y")], nreg=8)
    result = run_pipeline(
        [
            PipelineStage(
                out.programs,
                nreg=8,
                assignment=out.assignment,
                name="alloc",
            )
        ],
        n_packets=6,
    )
    assert len(result.delivered()) == 6


def test_empty_pipeline_rejected():
    with pytest.raises(SimulationError):
        run_pipeline([], n_packets=1)
