"""Tests for the statistics counters."""

import math

from repro.ir.parser import parse_program
from repro.sim.machine import Machine
from repro.sim.run import run_reference
from repro.sim.stats import MachineStats, ThreadStats
from tests.conftest import MINI_KERNEL


def test_instruction_classification():
    p = parse_program(
        """
        movi %a, 1
        add %a, %a, %a
        mov %b, %a
        ctx
        store %b, [%a]
        halt
        """,
        "t",
    )
    machine = Machine([p])
    stats = machine.run()
    t = stats.threads[0]
    assert t.instructions == 6
    assert t.alu_ops == 2  # movi + add
    assert t.moves == 1
    assert t.ctx_instrs == 1
    assert t.mem_ops == 1
    assert t.csb_instrs == 2


def test_busy_cycles_accounting():
    p = parse_program("movi %a, 1\nctx\nhalt\n", "t")
    stats = Machine([p]).run()
    t = stats.threads[0]
    # 3 issues + 2 relinquishes (ctx and halt) at 1 cycle each.
    assert t.busy_cycles == 5


def test_machine_utilization_bounds():
    res = run_reference([parse_program(MINI_KERNEL, "k")], packets_per_thread=3)
    assert 0.0 < res.stats.utilization() <= 1.0
    assert res.stats.busy_cycles + res.stats.idle_cycles == res.stats.cycles


def test_cycles_per_iteration_zero_without_iterations():
    t = ThreadStats()
    assert t.cycles_per_iteration() == 0.0
    assert t.busy_cycles_per_iteration() == 0.0


def test_cycles_per_iteration_nan_when_unfinished():
    t = ThreadStats(iterations=5, finish_cycle=None)
    assert math.isnan(t.cycles_per_iteration())


def test_unfinished_thread_renders_na():
    from repro.harness.report import text_table

    t = ThreadStats(iterations=5, finish_cycle=None)
    table = text_table(["cyc/iter"], [(t.cycles_per_iteration(),)])
    assert "n/a" in table
    assert "nan" not in table


def test_measured_cpi_preferred():
    t = ThreadStats(busy_cycles=1000, iterations=10, measured_cpi=42.5)
    assert t.busy_cycles_per_iteration() == 42.5


def test_finish_cycle_recorded():
    p = parse_program("movi %a, 1\nhalt\n", "t")
    stats = Machine([p]).run()
    assert stats.threads[0].finish_cycle is not None
