"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AllocationError,
    AsmSyntaxError,
    ReproError,
    SafetyViolation,
    SimulationError,
    ValidationError,
)


def test_hierarchy():
    for exc in (
        AsmSyntaxError,
        ValidationError,
        AllocationError,
        SimulationError,
        SafetyViolation,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(SafetyViolation, SimulationError)


def test_asm_syntax_error_formats_location():
    err = AsmSyntaxError("bad token", line_no=7, line="  frob %x\n")
    assert "line 7" in str(err)
    assert "frob" in str(err)
    assert err.line_no == 7


def test_asm_syntax_error_without_location():
    err = AsmSyntaxError("empty program")
    assert str(err) == "empty program"


def test_library_raises_only_repro_errors():
    from repro.ir.parser import parse_program

    with pytest.raises(ReproError):
        parse_program("???", "x")
    from repro.ir.validate import validate_program

    with pytest.raises(ReproError):
        validate_program(parse_program("movi %a, 1\nmovi %b, 2\n", "x"))
