"""Tests for ``Program.fingerprint`` -- the analysis-cache key.

The cache in :mod:`repro.core.cache` is content-addressed, so the whole
correctness story rests on two properties checked here: any structural
mutation changes the digest (no stale entry can ever be served), and
parse -> print -> parse round trips preserve it (re-loading a kernel
hits the cache).
"""

from __future__ import annotations

from typing import List

import pytest

from repro.ir.parser import parse_program
from repro.ir.printer import format_program
from tests.conftest import FIG3_T1, MINI_KERNEL

BASE = """
start:
  movi %a, 1
  movi %b, 2
  add %c, %a, %b
  beqi %c, 3, start
  store %c, [%a + 4]
  halt
"""


def fp(text, name="k"):
    return parse_program(text, name).fingerprint()


def test_deterministic_across_objects():
    assert fp(BASE) == fp(BASE)
    assert fp(MINI_KERNEL) == fp(MINI_KERNEL)


def test_name_is_part_of_identity():
    assert fp(BASE, "a") != fp(BASE, "b")


@pytest.mark.parametrize(
    "mutation",
    [
        BASE.replace("%a, 1", "%a, 9"),           # immediate
        BASE.replace("add %c", "sub %c"),          # opcode
        BASE.replace("%c, %a, %b", "%c, %b, %a"),  # operand order
        BASE.replace("%b", "%bb"),                 # register rename
        BASE.replace("+ 4", "+ 5"),                # memory offset
        BASE.replace("  halt", "  ctx\n  halt"),   # inserted instruction
        BASE.replace("  store %c, [%a + 4]\n", ""),  # deleted instruction
    ],
)
def test_mutation_changes_digest(mutation):
    assert mutation != BASE
    assert fp(mutation) != fp(BASE)


def test_label_rename_changes_digest():
    renamed = BASE.replace("start", "begin")
    assert fp(renamed) != fp(BASE)


def test_round_trip_stable():
    for text in (BASE, MINI_KERNEL, FIG3_T1):
        p = parse_program(text, "k")
        q = parse_program(format_program(p), "k")
        assert q.fingerprint() == p.fingerprint()


def test_suite_kernels_distinct_and_stable():
    from repro.suite.registry import BENCHMARKS, load

    digests = {}
    for name in BENCHMARKS:
        p = load(name)
        assert load(name).fingerprint() == p.fingerprint()
        digests[name] = p.fingerprint()
    assert len(set(digests.values())) == len(digests)


# ----------------------------------------------------------------------
# Property: random programs round-trip and are mutation-sensitive.
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

REG_NAMES = ["a", "b", "c", "d"]

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def random_program_text(draw):
    """A random-but-valid straight-line program (defs before uses)."""
    defined: List[str] = ["a"]
    lines: List[str] = ["movi %a, 1"]
    n = draw(st.integers(min_value=1, max_value=10))
    for _ in range(n):
        c = draw(st.integers(0, 3))
        if c == 0:
            r = draw(st.sampled_from(REG_NAMES))
            lines.append(f"movi %{r}, {draw(st.integers(0, 255))}")
            if r not in defined:
                defined.append(r)
        elif c == 1:
            d = draw(st.sampled_from(REG_NAMES))
            x = draw(st.sampled_from(defined))
            y = draw(st.sampled_from(defined))
            op = draw(st.sampled_from(["add", "sub", "xor"]))
            lines.append(f"{op} %{d}, %{x}, %{y}")
            if d not in defined:
                defined.append(d)
        elif c == 2:
            lines.append("ctx")
        else:
            x = draw(st.sampled_from(defined))
            y = draw(st.sampled_from(defined))
            lines.append(f"store %{x}, [%{y} + {draw(st.integers(0, 7))}]")
    lines.append("halt")
    return "\n".join(lines)


@SETTINGS
@given(random_program_text())
def test_property_round_trip_preserves_fingerprint(text):
    p = parse_program(text, "rand")
    q = parse_program(format_program(p), "rand")
    assert q.fingerprint() == p.fingerprint()


@SETTINGS
@given(random_program_text(), st.data())
def test_property_instruction_edit_changes_fingerprint(text, data):
    p = parse_program(text, "rand")
    lines = [ln for ln in text.splitlines() if ln.strip()]
    i = data.draw(
        st.integers(min_value=0, max_value=len(lines) - 1), label="line"
    )
    mutated = lines[:i] + ["ctx"] + lines[i:]  # insert a context switch
    q = parse_program("\n".join(mutated), "rand")
    assert q.fingerprint() != p.fingerprint()
