"""Unit tests for physical register assignment."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.assign import ThreadRegisterMap, assign_physical
from repro.core.inter import allocate_threads
from repro.errors import AllocationError
from repro.ir.operands import PhysReg
from repro.ir.parser import parse_program
from tests.conftest import FIG3_T1, FIG3_T2


def result_for(nreg=64):
    ans = [
        analyze_thread(parse_program(FIG3_T1, "t1")),
        analyze_thread(parse_program(FIG3_T2, "t2")),
    ]
    return allocate_threads(ans, nreg=nreg)


def test_private_windows_disjoint():
    result = result_for()
    assignment = assign_physical(result)
    windows = [m.private_registers() for m in assignment.maps]
    for i in range(len(windows)):
        for j in range(i + 1, len(windows)):
            a, b = windows[i], windows[j]
            assert a[1] <= b[0] or b[1] <= a[0]


def test_shared_window_after_privates():
    result = result_for()
    assignment = assign_physical(result)
    s0, s1 = assignment.shared_registers()
    assert s0 == sum(t.pr for t in result.threads)
    assert s1 - s0 == result.sgr
    for m in assignment.maps:
        assert m.private_registers()[1] <= s0


def test_shared_colors_map_identically_across_threads():
    result = result_for()
    assignment = assign_physical(result)
    for m in assignment.maps:
        for k in range(m.sr):
            assert m.phys(m.pr + k) == PhysReg(assignment.shared_base + k)


def test_private_colors_map_into_own_window():
    result = result_for()
    assignment = assign_physical(result)
    for m in assignment.maps:
        lo, hi = m.private_registers()
        for c in range(m.pr):
            assert lo <= m.phys(c).index < hi


def test_color_out_of_palette_rejected():
    m = ThreadRegisterMap(private_base=0, pr=2, sr=1, shared_base=10)
    with pytest.raises(AllocationError):
        m.phys(3)
    with pytest.raises(AllocationError):
        m.phys(-1)


def test_over_budget_rejected():
    result = result_for()
    result.nreg = result.total_registers - 1
    with pytest.raises(AllocationError):
        assign_physical(result)
