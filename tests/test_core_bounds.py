"""Unit tests for register-requirement bounds."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.igraph.coloring import validate_coloring
from repro.suite.registry import BENCHMARKS, load


def bounds_of(program):
    an = analyze_thread(program)
    return an, estimate_bounds(an)


def test_fig3_bounds(fig3_t1):
    an, b = bounds_of(fig3_t1)
    # Paper: MinPR = 1 (only %a crosses a CSB), MinR = 2 (pressure),
    # MaxR = 3 (the a-b-c triangle forces a third color without moves).
    assert b.min_pr == 1
    assert b.min_r == 2
    assert b.max_r == 3


def test_ordering_invariants_on_fixtures(straight, fig3_t1, mini_kernel):
    for program in (straight, fig3_t1, mini_kernel):
        an, b = bounds_of(program)
        assert b.min_pr <= b.max_pr
        assert b.min_r <= b.max_r
        assert b.max_pr <= b.max_r
        assert b.min_pr <= b.min_r


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_ordering_invariants_on_suite(name):
    an, b = bounds_of(load(name))
    assert b.min_pr <= b.max_pr <= b.max_r
    assert b.min_pr <= b.min_r <= b.max_r


def test_estimation_coloring_is_valid(mini_kernel):
    an, b = bounds_of(mini_kernel)
    validate_coloring(an.graphs.gig, b.coloring)
    for reg in an.graphs.boundary:
        assert b.coloring[reg] < b.max_pr
    assert all(0 <= c < b.max_r for c in b.coloring.values())


def test_csb_free_program_needs_no_private():
    from repro.ir.parser import parse_program

    p = parse_program(
        "movi %a, 1\nmovi %b, 2\nadd %a, %a, %b\nhalt\n", "t"
    )
    an, b = bounds_of(p)
    assert b.min_pr == 0
    assert b.min_r == 2
