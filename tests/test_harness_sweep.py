"""Unit tests for the parallel sweep executor."""

import functools
import os
import warnings

from repro.harness.sweep import default_jobs, sweep_map
from repro.obs import events, metrics
from repro.resilience import faults, guard
from repro.resilience.faults import FaultSpec


def _square(x):
    return x * x


def _metered_square(x):
    reg = metrics.registry()
    reg.counter("sweep_test.calls").inc()
    reg.counter("sweep_test.calls", kind="even" if x % 2 == 0 else "odd").inc()
    reg.histogram("sweep_test.values").observe(x)
    return x * x


def _counted_square(tmp, x):
    # Marker appends survive process boundaries, so the parent can count
    # exactly how many times each item was invoked.
    with open(os.path.join(tmp, f"{x}.count"), "a") as fh:
        fh.write("1\n")
    return x * x


def test_serial_identity():
    items = [3, 1, 2]
    assert sweep_map(_square, items, jobs=1) == [9, 1, 4]


def test_parallel_preserves_order():
    items = list(range(8))
    serial = sweep_map(_square, items, jobs=1)
    parallel = sweep_map(_square, items, jobs=2)
    assert parallel == serial == [x * x for x in items]


def test_single_item_never_pools():
    # One item runs inline even with jobs > 1 (an unpicklable closure
    # would warn if a pool were attempted).
    assert sweep_map(lambda x: x + 1, [41], jobs=4) == [42]


def test_empty():
    assert sweep_map(_square, [], jobs=4) == []


def test_unpicklable_falls_back_serially():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with events.capture() as em:
            out = sweep_map(lambda x: x * 10, [1, 2, 3], jobs=2)
    assert out == [10, 20, 30]
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    assert any(e.name == "sweep.fallback" for e in em.events)


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_pool_crash_reruns_only_missing_items(tmp_path):
    # An injected mid-harvest pool crash must not lose results, reorder
    # them, or re-execute items whose futures already completed.
    worker = functools.partial(_counted_square, str(tmp_path))
    items = list(range(6))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with guard.watching() as degs:
            with faults.inject(FaultSpec("sweep.pool", mode="crash")):
                out = sweep_map(worker, items, jobs=2)
    assert out == [x * x for x in items]
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    assert any(d.rung == "sweep.parallel_to_serial" for d in degs)
    for x in items:
        invocations = (tmp_path / f"{x}.count").read_text().count("1")
        assert invocations == 1, f"item {x} ran {invocations} times"


def test_worker_telemetry_merges_into_parent_registry():
    # Child-process metrics normally die with the worker; under an
    # active parent capture they must come home, labeled by sweep+item.
    with metrics.scoped() as reg, events.capture():
        out = sweep_map(_metered_square, [0, 1, 2], jobs=2, label="sq")
    assert out == [0, 1, 4]
    counters = reg.snapshot()["counters"]
    for i in (0, 1, 2):
        assert counters[f'sweep_test.calls{{item="{i}",sweep="sq"}}'] == 1
    assert counters['sweep_test.calls{item="0",kind="even",sweep="sq"}'] == 1
    assert counters['sweep_test.calls{item="1",kind="odd",sweep="sq"}'] == 1
    hists = reg.snapshot()["histograms"]
    assert hists['sweep_test.values{item="2",sweep="sq"}']["max"] == 2


def test_worker_results_unwrapped_without_telemetry():
    # No active emitter: workers run bare and nothing leaks into the
    # parent registry (the zero-cost-when-disabled guarantee).
    with metrics.scoped() as reg:
        out = sweep_map(_metered_square, [0, 1, 2], jobs=2, label="sq")
    assert out == [0, 1, 4]
    assert reg.snapshot()["counters"] == {}


def test_worker_telemetry_survives_pool_crash(tmp_path):
    # The failure-path harvest must unwrap (result, snapshot) tuples
    # exactly like the happy path; serially rerun items record straight
    # into the parent registry instead.
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        with metrics.scoped() as reg, events.capture():
            with faults.inject(FaultSpec("sweep.pool", mode="crash")):
                out = sweep_map(_metered_square, list(range(6)), jobs=2)
    assert out == [x * x for x in range(6)]
    counters = reg.snapshot()["counters"]
    merged = sum(
        v for k, v in counters.items()
        if k.startswith("sweep_test.calls{")
        and "item=" in k and "kind=" not in k
    )
    direct = counters.get("sweep_test.calls", 0)
    assert merged + direct == 6


def test_chunked_preserves_order():
    items = list(range(10))
    assert sweep_map(_square, items, jobs=2, chunksize=3) == [
        x * x for x in items
    ]


def test_chunk_heuristic_engages_on_large_sweeps():
    # 40 items at 2 jobs -> default chunksize 5: fewer pickles, same
    # submission-ordered results.
    items = list(range(40))
    assert sweep_map(_square, items, jobs=2) == [x * x for x in items]


def test_chunked_runs_each_item_once(tmp_path):
    worker = functools.partial(_counted_square, str(tmp_path))
    items = list(range(9))
    assert sweep_map(worker, items, jobs=2, chunksize=4) == [
        x * x for x in items
    ]
    for x in items:
        assert (tmp_path / f"{x}.count").read_text().count("1") == 1


def test_chunked_telemetry_keeps_per_item_labels():
    # Chunking is an IPC batching detail: merged worker metrics still
    # carry one {sweep,item} label pair per item, not per chunk.
    with metrics.scoped() as reg, events.capture():
        out = sweep_map(_metered_square, [0, 1, 2, 3], jobs=2,
                        label="ck", chunksize=2)
    assert out == [0, 1, 4, 9]
    counters = reg.snapshot()["counters"]
    for i in range(4):
        assert counters[f'sweep_test.calls{{item="{i}",sweep="ck"}}'] == 1


def test_chunked_pool_crash_reruns_only_missing_items(tmp_path):
    # The failure-path harvest walks chunks, not items; completed
    # chunks keep their results and no item executes twice.
    worker = functools.partial(_counted_square, str(tmp_path))
    items = list(range(8))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with faults.inject(FaultSpec("sweep.pool", mode="crash")):
            out = sweep_map(worker, items, jobs=2, chunksize=3)
    assert out == [x * x for x in items]
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    for x in items:
        invocations = (tmp_path / f"{x}.count").read_text().count("1")
        assert invocations == 1, f"item {x} ran {invocations} times"


def test_pool_hang_still_completes(tmp_path):
    # A hung worker abandons the pool; in-flight items may legitimately
    # run twice (pool + serial rerun), but every result must be present
    # and correct, in order.
    worker = functools.partial(_counted_square, str(tmp_path))
    items = list(range(6))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with faults.inject(FaultSpec("sweep.pool", mode="hang")):
            out = sweep_map(worker, items, jobs=2)
    assert out == [x * x for x in items]
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    for x in items:
        assert (tmp_path / f"{x}.count").read_text().count("1") >= 1
