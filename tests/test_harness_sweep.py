"""Unit tests for the parallel sweep executor."""

import warnings

from repro.harness.sweep import default_jobs, sweep_map
from repro.obs import events


def _square(x):
    return x * x


def test_serial_identity():
    items = [3, 1, 2]
    assert sweep_map(_square, items, jobs=1) == [9, 1, 4]


def test_parallel_preserves_order():
    items = list(range(8))
    serial = sweep_map(_square, items, jobs=1)
    parallel = sweep_map(_square, items, jobs=2)
    assert parallel == serial == [x * x for x in items]


def test_single_item_never_pools():
    # One item runs inline even with jobs > 1 (an unpicklable closure
    # would warn if a pool were attempted).
    assert sweep_map(lambda x: x + 1, [41], jobs=4) == [42]


def test_empty():
    assert sweep_map(_square, [], jobs=4) == []


def test_unpicklable_falls_back_serially():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with events.capture() as em:
            out = sweep_map(lambda x: x * 10, [1, 2, 3], jobs=2)
    assert out == [10, 20, 30]
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    assert any(e.name == "sweep.fallback" for e in em.events)


def test_default_jobs_positive():
    assert default_jobs() >= 1
