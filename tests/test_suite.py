"""Tests for the benchmark suite: structure, determinism, executability."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.ir.validate import validate_program
from repro.sim.run import run_reference
from repro.suite.registry import BENCHMARKS, load, load_all


def test_registry_has_eleven_benchmarks():
    assert len(BENCHMARKS) == 11


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        load("nonesuch")


def test_load_all_matches_registry():
    programs = load_all()
    assert [p.name for p in programs] == list(BENCHMARKS)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_is_valid(name):
    validate_program(load(name))


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_runs_and_terminates(name):
    program = load(name)
    res = run_reference([program], packets_per_thread=3)
    t = res.stats.threads[0]
    assert t.iterations == 3
    assert res.out_queues[0], f"{name} never sent a packet"
    assert t.finish_cycle is not None


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_output_is_deterministic(name):
    a = run_reference([load(name)], packets_per_thread=3)
    b = run_reference([load(name)], packets_per_thread=3)
    assert a.stores == b.stores
    assert a.out_queues == b.out_queues


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_writes_results(name):
    res = run_reference([load(name)], packets_per_thread=2)
    assert res.observable_stores()[0], f"{name} produced no observable stores"


def test_register_hungry_benchmarks_exceed_window():
    # md5 and the wraps kernels must overflow a 32-register window so the
    # fixed-partition baseline spills (the paper's Table 3 setup).
    for name in ("md5", "wraps_recv", "wraps_send"):
        b = estimate_bounds(analyze_thread(load(name)))
        assert b.min_r > 32, name


def test_light_benchmarks_fit_window():
    for name in ("frag", "fir2dim", "l2l3fwd_recv", "l2l3fwd_send"):
        b = estimate_bounds(analyze_thread(load(name)))
        assert b.max_r <= 32, name


def test_md5_has_large_shared_fraction():
    b = estimate_bounds(analyze_thread(load("md5")))
    assert b.max_r - b.max_pr >= 8


def test_ctx_density_reasonable():
    # The paper reports context-switch instructions around 10% of code;
    # our kernels range a bit wider but must stay packet-kernel-like.
    for program in load_all():
        density = program.count_csb() / len(program.instrs)
        assert 0.015 <= density <= 0.5, program.name
