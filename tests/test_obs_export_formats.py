"""Tests for the standard exporters: Prometheus text and Chrome trace."""

import json
import re

import pytest

from repro.obs import events, metrics
from repro.obs.export import (
    prom_name,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_prometheus,
)


def _populated_registry():
    reg = metrics.MetricsRegistry()
    reg.counter("inter.steps").inc(7)
    reg.counter("inter.steps", kind="pr").inc(4)
    reg.counter("inter.steps", kind="sr").inc(3)
    reg.gauge("sim.util", engine="fast").set(0.75)
    h = reg.histogram("inter.step_delta")
    for v in (0, 1, 7, 1000):
        h.observe(v)
    t = reg.histogram(
        "alloc.phase_seconds", bounds=metrics.TIMING_BUCKETS, phase="inter"
    )
    t.observe(0.0004)
    t.observe(0.02)
    return reg


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def test_prom_name_sanitizes():
    assert prom_name("inter.steps") == "repro_inter_steps"
    assert prom_name("weird-name!x") == "repro_weird_name_x"
    assert prom_name("9lives") == "repro__9lives"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)


def _parse_exposition(text):
    """Parse the exposition text back into types + samples."""
    types = {}
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        m = _SAMPLE.match(line)
        assert m, f"unparsable sample line: {line!r}"
        labels = {}
        if m.group("labels"):
            for part in m.group("labels").split(","):
                k, v = part.split("=", 1)
                labels[k] = v.strip('"')
        key = (m.group("name"), tuple(sorted(labels.items())))
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = float(m.group("value"))
    return types, samples


def test_prometheus_round_trips_the_snapshot():
    """Every snapshot series must reappear, value-exact, in the text."""
    snap = _populated_registry().snapshot()
    types, samples = _parse_exposition(to_prometheus(snap))

    assert types["repro_inter_steps"] == "counter"
    assert types["repro_sim_util"] == "gauge"
    assert types["repro_inter_step_delta"] == "histogram"

    for key, value in snap["counters"].items():
        name, pairs = metrics.parse_key(key)
        assert samples[(prom_name(name), tuple(sorted(pairs)))] == value
    for key, value in snap["gauges"].items():
        name, pairs = metrics.parse_key(key)
        assert samples[(prom_name(name), tuple(sorted(pairs)))] == value
    for key, hist in snap["histograms"].items():
        name, pairs = metrics.parse_key(key)
        base = prom_name(name)
        assert samples[(base + "_count", tuple(sorted(pairs)))] == hist["count"]
        assert samples[(base + "_sum", tuple(sorted(pairs)))] == hist["sum"]
        # Cumulative buckets: non-decreasing, +Inf equals _count.
        seen = []
        for bound in hist["buckets"]:
            le = "+Inf" if bound == "+inf" else bound
            label_key = tuple(sorted(list(pairs) + [("le", le)]))
            seen.append(samples[(base + "_bucket", label_key)])
        assert seen == sorted(seen)
        assert seen[-1] == hist["count"]


def test_prometheus_one_type_line_per_family():
    text = to_prometheus(_populated_registry().snapshot())
    type_lines = [l for l in text.splitlines() if l.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines))
    # Labeled and unlabeled inter.steps share one family declaration.
    assert sum("repro_inter_steps " in l for l in type_lines) == 1


def test_prometheus_is_byte_stable():
    snap = _populated_registry().snapshot()
    assert to_prometheus(snap) == to_prometheus(snap)


def test_prometheus_empty_snapshot():
    assert to_prometheus(metrics.MetricsRegistry().snapshot()) == ""


def test_write_prometheus(tmp_path):
    out = write_prometheus(
        tmp_path / "m.prom", _populated_registry().snapshot()
    )
    assert "# TYPE repro_inter_steps counter" in out.read_text()


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def _captured_emitter():
    ticks = iter(x / 1000.0 for x in range(100))
    em = events.Emitter(clock=lambda: float(next(ticks)))
    with em.span("outer", nreg=64):
        em.emit("point", x=1)
        with em.span("inner"):
            pass
    return em


def test_chrome_trace_shape_and_nesting():
    doc = to_chrome_trace(_captured_emitter())
    assert doc["displayTimeUnit"] == "ms"
    recs = doc["traceEvents"]
    by_name = {r["name"]: r for r in recs}

    outer, inner, point = by_name["outer"], by_name["inner"], by_name["point"]
    assert outer["ph"] == inner["ph"] == "X"
    assert point["ph"] == "i" and point["s"] == "t"
    # Microsecond timestamps; children start at/after the parent start
    # and end at/before the parent end.
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    assert outer["ts"] <= point["ts"] <= outer["ts"] + outer["dur"]
    # The category names the enclosing span.
    assert inner["cat"] == "outer" and point["cat"] == "outer"
    assert outer["cat"] == "top"
    assert outer["args"] == {"nreg": 64}


def test_chrome_trace_sorted_parents_first():
    recs = to_chrome_trace(_captured_emitter())["traceEvents"]
    ts = [r["ts"] for r in recs]
    assert ts == sorted(ts)
    # At equal ts the longer (enclosing) span comes first.
    order = [r["name"] for r in recs]
    assert order.index("outer") < order.index("inner")


def test_chrome_trace_is_strict_json(tmp_path):
    out = write_chrome_trace(tmp_path / "t.json", _captured_emitter())
    doc = json.loads(out.read_text())
    assert {r["ph"] for r in doc["traceEvents"]} == {"X", "i"}


def test_chrome_trace_empty_emitter():
    em = events.Emitter(clock=lambda: 0.0)
    assert to_chrome_trace(em)["traceEvents"] == []
