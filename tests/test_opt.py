"""Tests for the optimization passes."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_program
from repro.ir.validate import validate_program
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    optimize,
    propagate_copies,
)
from repro.sim.run import outputs_match, run_reference
from tests.conftest import MINI_KERNEL


def check_equiv(before, after, packets=3):
    validate_program(after, check_init=False)
    a = run_reference([before], packets_per_thread=packets)
    b = run_reference([after], packets_per_thread=packets)
    assert outputs_match(a, b)


def test_fold_movi_chain():
    p = parse_program(
        """
        movi %a, 6
        movi %b, 7
        mul %c, %a, %b
        store %c, [%c]
        halt
        """,
        "t",
    )
    out = fold_constants(p)
    movi_c = out.instrs[2]
    assert movi_c.opcode is Opcode.MOVI
    assert movi_c.operands[1].value == 42
    check_equiv(p, optimize(p))


def test_fold_to_immediate_form():
    p = parse_program(
        """
        movi %k, 3
        recv %x
        add %y, %x, %k
        store %y, [%y]
        halt
        """,
        "t",
    )
    out = fold_constants(p)
    assert out.instrs[2].opcode is Opcode.ADDI


def test_fold_commutative_swaps_operands():
    p = parse_program(
        """
        movi %k, 3
        recv %x
        add %y, %k, %x
        store %y, [%y]
        halt
        """,
        "t",
    )
    out = fold_constants(p)
    assert out.instrs[2].opcode is Opcode.ADDI
    assert out.instrs[2].operands[1].name == "x"


def test_fold_does_not_cross_blocks():
    p = parse_program(
        """
        movi %a, 5
        beqi %a, 5, next
    next:
        addi %b, %a, 1
        store %b, [%b]
        halt
        """,
        "t",
    )
    out = fold_constants(p)
    # %a's constant must not flow into the labelled block.
    assert out.instrs[2].opcode is Opcode.ADDI


def test_copy_propagation():
    p = parse_program(
        """
        recv %x
        mov %y, %x
        addi %z, %y, 1
        store %z, [%y]
        halt
        """,
        "t",
    )
    out = propagate_copies(p)
    assert str(out.instrs[2]) == "addi %z, %x, 1"
    assert str(out.instrs[3]) == "store %z, [%x]"


def test_copy_propagation_killed_by_redefinition():
    p = parse_program(
        """
        recv %x
        mov %y, %x
        recv %x
        store %y, [%x]
        halt
        """,
        "t",
    )
    out = propagate_copies(p)
    # %y must NOT be rewritten to the redefined %x.
    assert str(out.instrs[3]) == "store %y, [%x]"


def test_dead_code_removed():
    p = parse_program(
        """
        movi %used, 1
        movi %dead, 2
        addi %dead2, %dead, 1
        store %used, [%used]
        halt
        """,
        "t",
    )
    out = eliminate_dead_code(p)
    assert len(out.instrs) == 3
    check_equiv(p, out)


def test_dead_load_is_kept():
    # A dead load is still a CSB: never removed.
    p = parse_program(
        """
        movi %a, 9
        load %dead, [%a]
        store %a, [%a]
        halt
        """,
        "t",
    )
    out = optimize(p)
    assert out.count_opcode(Opcode.LOAD) == 1


def test_labels_survive_dce():
    p = parse_program(
        """
        movi %i, 0
    loop:
        movi %dead, 7
        addi %i, %i, 1
        blti %i, 3, loop
        store %i, [%i]
        halt
        """,
        "t",
    )
    out = eliminate_dead_code(p)
    assert "loop" in out.labels
    assert out.instrs[out.labels["loop"]].opcode is Opcode.ADDI
    check_equiv(p, out)


def test_optimize_kernel_preserves_semantics():
    p = parse_program(MINI_KERNEL, "k")
    out = optimize(p)
    check_equiv(p, out, packets=4)


def test_optimize_npc_output_shrinks():
    from repro.npc.codegen import compile_to_text

    text = compile_to_text(
        "x = 2 + 3 * 4; y = x; mem[y + 1] = y; halt();"
    )
    raw = parse_program(text, "raw")
    out = optimize(raw)
    assert len(out.instrs) < len(raw.instrs)
    check_equiv(raw, out)


def test_optimize_idempotent():
    p = parse_program(MINI_KERNEL, "k")
    once = optimize(p)
    twice = optimize(once)
    assert [str(i) for i in once.instrs] == [str(i) for i in twice.instrs]
