"""Edge-case tests for the region-coloring merge (Figure 7)."""

from repro.cfg.liveness import compute_liveness
from repro.cfg.nsr import compute_nsr
from repro.igraph.coloring import validate_coloring
from repro.igraph.interference import build_interference
from repro.igraph.merge import merge_region_colorings
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program


def merged_for(text):
    p = parse_program(text, "t")
    lv = compute_liveness(p)
    g = build_interference(lv, compute_nsr(lv))
    m = merge_region_colorings(g)
    validate_coloring(g.gig, m.coloring)
    for node in g.boundary:
        assert m.coloring[node] < m.max_pr
    return g, m


def test_no_csb_program_all_shared():
    g, m = merged_for("movi %a, 1\nmovi %b, 2\nadd %a, %a, %b\nhalt\n")
    assert m.max_pr == 0
    assert m.max_r >= 2


def test_single_range_program():
    g, m = merged_for("movi %a, 1\nstore %a, [%a]\nhalt\n")
    assert m.max_r >= 1


def test_internal_widening_counts_only_r():
    # Three internal values overlapping in one NSR, no boundary at all.
    g, m = merged_for(
        """
        movi %a, 1
        movi %b, 2
        movi %c, 3
        add %d, %a, %b
        add %d, %d, %c
        store %d, [%a]
        halt
        """
    )
    assert m.max_pr <= 1
    assert m.max_r >= 3


def test_boundary_widening_shifts_shared_colors():
    # Two boundary ranges interfering only internally (different CSBs)
    # plus internal pressure: the merge must keep private colors a
    # contiguous prefix even when it widens PR.
    g, m = merged_for(
        """
        movi %a, 1
        ctx
        movi %b, 2
        add %x, %a, %b
        movi %t1, 5
        movi %t2, 6
        add %x, %t1, %t2
        store %x, [%a]
        store %b, [%b]
        halt
        """
    )
    for node in g.gig.nodes():
        if node not in g.boundary:
            assert 0 <= m.coloring[node] < m.max_r


def test_merge_deterministic(mini_kernel):
    lv = compute_liveness(mini_kernel)
    g = build_interference(lv, compute_nsr(lv))
    a = merge_region_colorings(g)
    b = merge_region_colorings(g)
    assert a.coloring == b.coloring
    assert (a.max_pr, a.max_r) == (b.max_pr, b.max_r)
