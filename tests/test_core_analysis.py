"""Unit tests for the per-thread analysis bundle."""

from repro.core.analysis import analyze_thread
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program


def v(name):
    return VirtualReg(name)


def test_slots_cover_def_and_liveness(straight):
    an = analyze_thread(straight)
    assert an.slots[v("a")] == frozenset({0, 1, 2, 3, 4})
    # %b: defined at 2, used at 3.
    assert an.slots[v("b")] == frozenset({2, 3})


def test_flow_edges_follow_control_flow(straight):
    an = analyze_thread(straight)
    assert (0, 1) in an.flow_edges[v("a")]
    assert (3, 4) in an.flow_edges[v("c")]
    # %b dies at 3: no edge (3, 4).
    assert (3, 4) not in an.flow_edges[v("b")]


def test_occupants_sorted_and_complete(straight):
    an = analyze_thread(straight)
    occ3 = an.occupants[3]
    assert v("a") in occ3 and v("b") in occ3
    assert list(occ3) == sorted(occ3, key=str)


def test_live_across_matches_liveness(straight):
    an = analyze_thread(straight)
    assert an.live_across[1] == frozenset({v("a")})


def test_csb_slots_of_entry_sentinel():
    p = parse_program("store %x, [%x]\nhalt\n", "t")
    an = analyze_thread(p)
    assert -1 in an.csb_slots_of[v("x")]


def test_interferes_at_exception(straight):
    an = analyze_thread(straight)
    # At instruction 3 (add %c, %a, %b): %c defined, %b dies there.
    assert not an.interferes_at(v("c"), v("b"), 3)
    # %a survives (used by the store at 4): conflicts with the def.
    assert an.interferes_at(v("c"), v("a"), 3)


def test_conflicts_at_symmetry(straight):
    an = analyze_thread(straight)
    for reg, pairs in an.conflicts_at.items():
        for s, other in pairs:
            assert (s, reg) in an.conflicts_at[other]


def test_web_renaming_applied():
    p = parse_program(
        """
        movi %t, 1
        store %t, [%t]
        movi %t, 2
        store %t, [%t]
        halt
        """,
        "t",
    )
    an = analyze_thread(p)
    assert len(an.program.virtual_regs()) == 2


def test_nsr_of_slot(straight):
    an = analyze_thread(straight)
    assert an.nsr_of_slot(1) == -1  # the ctx
    assert an.nsr_of_slot(2) >= 0


def test_conflicts_by_slot_matches_linear_scan(straight):
    an = analyze_thread(straight)
    for reg, pairs in an.conflicts_at.items():
        index = an.conflicts_by_slot(reg)
        # Regrouping preserves content and per-slot order...
        rebuilt = [p for s in sorted(index) for p in index[s]]
        assert sorted(rebuilt) == sorted(pairs)
        # ...and walking any slot subset replays the filtered subsequence.
        slots = sorted({s for s, _ in pairs})[::2]
        want = [p for p in pairs if p[0] in set(slots)]
        got = [p for s in slots for p in index.get(s, ())]
        assert sorted(got) == sorted(want)


def test_conflict_pairs_cover_conflicts_at(straight):
    an = analyze_thread(straight)
    pairs = an.conflict_pairs()
    # Each unordered pair appears exactly once, ordered by str().
    for (a, b), slots in pairs.items():
        assert str(a) < str(b)
        assert list(slots) == sorted(slots)
        for s in slots:
            assert (s, b) in an.conflicts_at[a]
            assert (s, a) in an.conflicts_at[b]
    # And every conflicts_at entry is covered.
    total = sum(len(v) for v in an.conflicts_at.values())
    assert 2 * sum(len(v) for v in pairs.values()) == total
    assert an.conflict_pairs() is pairs  # cached
