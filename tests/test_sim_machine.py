"""Unit tests for the micro-engine simulator."""

import pytest

from repro.errors import SimulationError
from repro.ir.parser import parse_program
from repro.sim.machine import Machine
from repro.sim.memory import Memory


def run_program(text, mem=None, **kw):
    p = parse_program(text, "t")
    machine = Machine([p], memory=mem or Memory(), **kw)
    stats = machine.run()
    return machine, stats


def test_alu_semantics():
    machine, _ = run_program(
        """
        movi %a, 7
        movi %b, 3
        add %s, %a, %b
        sub %d, %a, %b
        mul %m, %a, %b
        and %n, %a, %b
        or %o, %a, %b
        xor %x, %a, %b
        shli %l, %b, 4
        shri %r, %a, 1
        store %s, [%a]
        halt
        """
    )
    v = machine.threads[0].vregs
    assert v["s"] == 10 and v["d"] == 4 and v["m"] == 21
    assert v["n"] == 3 and v["o"] == 7 and v["x"] == 4
    assert v["l"] == 48 and v["r"] == 3


def test_arithmetic_wraps_32_bits():
    machine, _ = run_program(
        """
        movi %a, 0xFFFFFFFF
        addi %a, %a, 2
        store %a, [%a]
        halt
        """
    )
    assert machine.threads[0].vregs["a"] == 1


def test_branches_and_loop():
    machine, _ = run_program(
        """
        movi %i, 0
        movi %s, 0
    loop:
        add %s, %s, %i
        addi %i, %i, 1
        blti %i, 5, loop
        store %s, [%i]
        halt
        """
    )
    assert machine.threads[0].vregs["s"] == 10


def test_load_store_roundtrip():
    mem = Memory()
    mem.write(100, 0xABCD)
    machine, _ = run_program(
        """
        movi %p, 100
        load %v, [%p]
        addi %v, %v, 1
        store %v, [%p + 1]
        halt
        """,
        mem=mem,
    )
    assert mem.read(101) == 0xABCE


def test_loadq_storeq():
    mem = Memory()
    mem.write_block(200, [1, 2, 3, 4])
    machine, _ = run_program(
        """
        movi %p, 200
        loadq %a, %b, %c, %d, [%p]
        storeq %d, %c, %b, %a, [%p + 4]
        halt
        """,
        mem=mem,
    )
    assert mem.read_block(204, 4) == [4, 3, 2, 1]


def test_memory_op_costs_latency():
    _, fast = run_program("movi %a, 1\nstore %a, [%a]\nhalt\n")
    _, slow = run_program(
        "movi %a, 1\nstore %a, [%a]\nstore %a, [%a + 1]\nhalt\n"
    )
    assert slow.cycles - fast.cycles >= 20


def test_alu_is_single_cycle():
    _, one = run_program("movi %a, 1\nhalt\n")
    _, two = run_program("movi %a, 1\nmovi %b, 2\nhalt\n")
    assert two.cycles - one.cycles == 1


def test_ctx_round_robin_two_threads():
    a = parse_program(
        "movi %x, 1\nctx\nmovi %x, 2\nstore %x, [%x]\nhalt\n", "a"
    )
    b = parse_program(
        "movi %y, 9\nctx\nmovi %y, 8\nstore %y, [%y]\nhalt\n", "b"
    )
    machine = Machine([a, b])
    stats = machine.run()
    assert all(t.halted for t in machine.threads)
    assert stats.threads[0].ctx_instrs == 1
    assert stats.threads[1].ctx_instrs == 1


def test_latency_hiding_overlaps_threads():
    # One thread alone waits out the memory latency; two threads overlap.
    src = "movi %a, 1\nload %b, [%a]\nstore %b, [%a + 1]\nhalt\n"
    solo = Machine([parse_program(src, "solo")])
    solo_stats = solo.run()
    duo = Machine([parse_program(src, "a"), parse_program(src, "b")])
    duo_stats = duo.run()
    assert duo_stats.cycles < 2 * solo_stats.cycles
    assert duo_stats.idle_cycles < solo_stats.idle_cycles * 2


def test_load_writeback_happens_on_resume():
    # While a load is in flight, another thread may use the shared
    # register file; the destination is written only when the loader
    # resumes (transfer-register semantics).
    loader = parse_program(
        "movi $r0, 55\nstore $r0, [$r0]\nload $r1, [$r0]\nstore $r1, [$r0 + 2]\nhalt\n",
        "loader",
    )
    clobber = parse_program(
        "movi $r1, 77\nmovi $r1, 78\nmovi $r1, 79\nhalt\n", "clobber"
    )
    machine = Machine([loader, clobber])
    machine.run()
    # loader's second store must see the loaded value (55), not 79.
    assert machine.memory.read(57) == 55


def test_runaway_detected():
    with pytest.raises(SimulationError):
        run_program("x:\n br x\n", max_cycles=0) if False else None
        p = parse_program("x:\n br x\n", "t")
        Machine([p]).run(max_cycles=1000)


def test_unknown_register_index_rejected():
    p = parse_program("movi $r99, 1\nhalt\n", "t")
    machine = Machine([p], nreg=8)
    with pytest.raises(SimulationError):
        machine.run()


def test_stop_on_first_halt():
    fast = parse_program("movi %a, 1\nhalt\n", "fast")
    slow = parse_program(
        "movi %i, 0\nl:\n addi %i, %i, 1\n blti %i, 100, l\n halt\n", "slow"
    )
    machine = Machine([fast, slow])
    machine.run(stop_on_first_halt=True)
    assert machine.threads[0].halted
    assert not machine.threads[1].halted
