"""Reproductions of the paper's worked examples (Figures 3, 4/5, 9)."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.inter import allocate_threads
from repro.core.intra import IntraAllocator
from repro.ir.parser import parse_program
from tests.conftest import FIG3_T1, FIG3_T2


def test_figure3_sharing_lowers_requirement():
    """Figure 3.b: with sharing, the two threads fit 3 registers instead
    of the 4 a disjoint partition needs."""
    ans = [
        analyze_thread(parse_program(FIG3_T1, "t1")),
        analyze_thread(parse_program(FIG3_T2, "t2")),
    ]
    result = allocate_threads(ans, nreg=16, zero_cost_only=True)
    # t1: PR=1 (a), needs 2 more for b/c -> R=3.  t2: base persists (PR=1)
    # and d is internal.  Shared registers overlap, so total < sum of Rs.
    no_sharing = sum(t.r for t in result.threads)
    assert result.total_registers < no_sharing


def test_figure3_splitting_reaches_two_registers():
    """Figure 3.c: live-range splitting brings thread 1 from 3 registers
    to 2 with a single inserted move."""
    an = analyze_thread(parse_program(FIG3_T1, "t1"))
    bounds = estimate_bounds(an)
    assert bounds.max_r == 3  # triangle without moves
    assert bounds.min_r == 2  # pressure bound
    alloc = IntraAllocator(an, bounds)
    ctx = alloc.realize(1, 1)
    assert ctx.move_cost() == 1
    ctx.validate()


def test_figure4_frag_nsr_structure():
    """Figure 4: the frag checksum code builds several NSRs bounded by
    reads and voluntary switches; loop halves can share an NSR."""
    from repro.suite.registry import load

    an = analyze_thread(load("frag"))
    assert an.nsr.n_regions >= 3
    # The loop head and body sit in one region through the back edge.
    assert an.nsr.average_region_size() > 1.0


def test_figure5_classification():
    """Figure 5: sum/buf/len boundary, the loop temporaries internal."""
    from repro.ir.operands import VirtualReg
    from repro.suite.registry import load

    an = analyze_thread(load("frag"))
    names_boundary = {r.name for r in an.nsr.boundary}
    names_internal = {r.name for r in an.nsr.internal}
    assert {"sum", "buf", "len", "i"} <= names_boundary
    assert "w" in names_internal


def test_figure9_split_reaches_min_pr():
    """Figure 9's lifetime rotation: A, B, C each cross a different CSB
    and overlap pairwise in between, so the unsplit allocation needs three
    private registers while at most one value crosses any single CSB.
    Live-range splitting reaches the MinPR bound at a move cost."""
    p = parse_program(
        """
        movi %C, 7
        movi %n, 0
    start:
        movi %A, 1
        store %C, [%A]
        ctx
        movi %B, 2
        store %A, [%B]
        ctx
        movi %C, 3
        store %B, [%C]
        ctx
        addi %n, %n, 1
        blti %n, 3, start
        halt
        """,
        "fig9",
    )
    an = analyze_thread(p)
    b = estimate_bounds(an)
    # Each CSB carries the loop counter plus exactly one of A/B/C, but the
    # unsplit rotation needs a private color for each of A, B, C.
    assert b.min_pr == 2
    assert b.max_pr == 4
    assert b.min_r == 3
    alloc = IntraAllocator(an, b)
    ctx = alloc.realize(b.min_pr, b.min_r - b.min_pr)
    ctx.validate()
    assert ctx.move_cost() >= 1
