"""Tests for the append-only run ledger (repro.obs.ledger)."""

import json

import pytest

from repro.obs import ledger


def _row(bench="perf", **metrics):
    return ledger.make_row(bench, metrics or {"sim.speedup": 5.5}, ts=1.0)


# ----------------------------------------------------------------------
# make_row
# ----------------------------------------------------------------------

def test_make_row_shape_and_determinism():
    row = ledger.make_row(
        "alloc",
        {"b": 2.0, "a": 1.0},
        config={"jobs": 4},
        fingerprints=["zz", "aa"],
        ts=123.5,
        commit="abc123",
    )
    assert row["schema"] == ledger.SCHEMA_LEDGER
    assert row["bench"] == "alloc"
    assert list(row["metrics"]) == ["a", "b"]
    assert row["fingerprints"] == ["aa", "zz"]
    assert row["ts"] == 123.5 and row["commit"] == "abc123"
    json.dumps(row, allow_nan=False)


def test_make_row_rejects_empty_bench():
    with pytest.raises(ValueError):
        ledger.make_row("", {"x": 1.0})


def test_make_row_commit_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_COMMIT", "deadbeef")
    assert _row()["commit"] == "deadbeef"
    monkeypatch.delenv("REPRO_COMMIT")
    monkeypatch.setenv("GITHUB_SHA", "cafef00d")
    assert _row()["commit"] == "cafef00d"


# ----------------------------------------------------------------------
# append / read
# ----------------------------------------------------------------------

def test_append_and_reload(tmp_path):
    path = tmp_path / "deep" / "ledger.jsonl"  # parents created on demand
    ledger.append(_row(), path)
    ledger.append([_row("alloc"), _row("analysis")], path)
    rows = ledger.read(path)
    assert [r["bench"] for r in rows] == ["perf", "alloc", "analysis"]
    assert all(r["schema"] == ledger.SCHEMA_LEDGER for r in rows)
    # One compact JSON object per line.
    lines = path.read_text().splitlines()
    assert len(lines) == 3 and all(json.loads(l) for l in lines)


def test_append_refuses_schemaless_rows(tmp_path):
    with pytest.raises(ValueError):
        ledger.append({"bench": "perf"}, tmp_path / "l.jsonl")
    assert not (tmp_path / "l.jsonl").exists()


def test_read_missing_file_is_empty(tmp_path):
    assert ledger.read(tmp_path / "nope.jsonl") == []


def test_read_recovers_from_corrupt_tail(tmp_path):
    path = tmp_path / "l.jsonl"
    ledger.append([_row(), _row("alloc")], path)
    with path.open("a") as fh:
        fh.write('{"schema": "repro.ledger/1", "bench": "tru')  # killed mid-append
    with pytest.warns(RuntimeWarning, match="line 3 is corrupt"):
        rows = ledger.read(path)
    assert [r["bench"] for r in rows] == ["perf", "alloc"]


def test_read_stops_at_first_bad_line(tmp_path):
    """Rows after a corrupt line are not trusted (append-only damage
    happens at the tail; anything beyond it is suspect)."""
    path = tmp_path / "l.jsonl"
    ledger.append(_row(), path)
    with path.open("a") as fh:
        fh.write("GARBAGE\n")
        fh.write(json.dumps(_row("alloc")) + "\n")
    with pytest.warns(RuntimeWarning):
        rows = ledger.read(path)
    assert [r["bench"] for r in rows] == ["perf"]


def test_read_non_object_row_counts_as_corruption(tmp_path):
    path = tmp_path / "l.jsonl"
    ledger.append(_row(), path)
    with path.open("a") as fh:
        fh.write("[1, 2, 3]\n")
    with pytest.warns(RuntimeWarning):
        assert len(ledger.read(path)) == 1


def test_read_strict_raises(tmp_path):
    path = tmp_path / "l.jsonl"
    ledger.append(_row(), path)
    path.open("a").write("not json\n")
    with pytest.raises(ValueError, match="corrupt"):
        ledger.read(path, strict=True)


def test_read_keeps_unknown_schema_rows(tmp_path):
    path = tmp_path / "l.jsonl"
    ledger.append(_row(), path)
    with path.open("a") as fh:
        fh.write(json.dumps({"schema": "repro.ledger/99", "bench": "x"}) + "\n")
    assert [r["bench"] for r in ledger.read(path)] == ["perf", "x"]


def test_rows_for_filters_by_bench(tmp_path):
    path = tmp_path / "l.jsonl"
    ledger.append([_row(), _row("alloc"), _row()], path)
    assert len(ledger.rows_for("perf", path)) == 2
    assert len(ledger.rows_for("alloc", path)) == 1
    assert ledger.rows_for("fig14", path) == []


def test_default_path_env_override(monkeypatch, tmp_path):
    target = tmp_path / "custom.jsonl"
    monkeypatch.setenv(ledger.ENV_LEDGER, str(target))
    assert ledger.default_path() == target
    monkeypatch.delenv(ledger.ENV_LEDGER)
    assert ledger.default_path() == ledger.DEFAULT_RELPATH
