"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import main
from tests.conftest import MINI_KERNEL


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.npir"
    path.write_text(MINI_KERNEL)
    return str(path)


def test_analyze_file(kernel_file, capsys):
    assert main(["analyze", kernel_file]) == 0
    out = capsys.readouterr().out
    assert "non-switch regions" in out
    assert "PR in" in out


def test_analyze_bench_spec(capsys):
    assert main(["analyze", "bench:frag"]) == 0
    assert "frag" in capsys.readouterr().out


def test_allocate_and_write_output(kernel_file, tmp_path, capsys):
    out_dir = tmp_path / "alloc"
    assert (
        main(
            [
                "allocate",
                kernel_file,
                kernel_file,
                "--nreg",
                "16",
                "-o",
                str(out_dir),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "SGR" in out
    written = sorted(p.name for p in out_dir.iterdir())
    assert len(written) == 2
    text = (out_dir / written[0]).read_text()
    assert "$r" in text and "%" not in text


def test_run_reference(kernel_file, capsys):
    assert main(["run", kernel_file, "--packets", "4"]) == 0
    out = capsys.readouterr().out
    assert "4 packets" in out


def test_run_allocated_verifies(kernel_file, capsys):
    assert (
        main(
            ["run", kernel_file, "--packets", "4", "--allocated", "--nreg", "12"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "verified against reference: True" in out


def test_encode_requires_physical(kernel_file, capsys):
    assert main(["encode", kernel_file]) == 1
    assert "allocate it first" in capsys.readouterr().err


def test_encode_round(tmp_path, kernel_file, capsys):
    out_dir = tmp_path / "alloc"
    main(["allocate", kernel_file, "--nreg", "16", "-o", str(out_dir)])
    capsys.readouterr()
    allocated = next(out_dir.iterdir())
    binary = tmp_path / "code.hex"
    assert main(["encode", str(allocated), "-o", str(binary)]) == 0
    lines = binary.read_text().splitlines()
    assert lines and all(len(l) == 16 for l in lines)


def test_suite_listing(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "md5" in out and "wraps_recv" in out


NPC_SRC = """
while (1) {
    p = recv();
    if (p == 0) break;
    mem[p + 1] = mem[p] * 4 + 2;
    send(p);
}
halt();
"""


@pytest.fixture
def npc_file(tmp_path):
    path = tmp_path / "double.npc"
    path.write_text(NPC_SRC)
    return str(path)


def test_compile_npc(npc_file, capsys):
    assert main(["compile", npc_file]) == 0
    out = capsys.readouterr().out
    assert "recv" in out and "halt" in out
    assert "shli" in out  # *4 strength-reduced


def test_compile_npc_no_opt(npc_file, capsys):
    assert main(["compile", npc_file, "--no-opt"]) == 0
    out = capsys.readouterr().out
    assert "muli" in out  # raw codegen keeps the multiply


def test_run_npc_file_allocated(npc_file, capsys):
    assert (
        main(["run", npc_file, "--allocated", "--nreg", "8", "--packets", "3"])
        == 0
    )
    out = capsys.readouterr().out
    assert "verified against reference: True" in out


def test_analyze_npc_file(npc_file, capsys):
    assert main(["analyze", npc_file]) == 0
    assert "bounds" in capsys.readouterr().out
