"""Unit tests for coloring heuristics."""

import pytest

from repro.igraph.coloring import (
    dsatur_color,
    first_free_color,
    greedy_color,
    min_color,
    num_colors,
    simplify_color,
    validate_coloring,
)
from repro.igraph.graph import UndirectedGraph


def clique(n):
    g = UndirectedGraph()
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(f"n{i}", f"n{j}")
    return g


def cycle(n):
    g = UndirectedGraph()
    for i in range(n):
        g.add_edge(f"n{i}", f"n{(i + 1) % n}")
    return g


def test_first_free_color():
    assert first_free_color([]) == 0
    assert first_free_color([0, 1, 3]) == 2


@pytest.mark.parametrize("colorer", [dsatur_color, simplify_color, min_color])
def test_clique_needs_n_colors(colorer):
    g = clique(5)
    c = colorer(g)
    validate_coloring(g, c)
    assert num_colors(c) == 5


@pytest.mark.parametrize("colorer", [dsatur_color, simplify_color, min_color])
def test_even_cycle_two_colors(colorer):
    g = cycle(6)
    c = colorer(g)
    validate_coloring(g, c)
    assert num_colors(c) == 2


@pytest.mark.parametrize("colorer", [dsatur_color, simplify_color, min_color])
def test_odd_cycle_three_colors(colorer):
    g = cycle(7)
    c = colorer(g)
    validate_coloring(g, c)
    assert num_colors(c) == 3


def test_greedy_respects_fixed():
    g = clique(3)
    c = greedy_color(g, fixed={"n0": 5})
    validate_coloring(g, c)
    assert c["n0"] == 5


def test_empty_graph():
    g = UndirectedGraph()
    assert num_colors(min_color(g)) == 0


def test_isolated_nodes_one_color():
    g = UndirectedGraph()
    g.add_node("a")
    g.add_node("b")
    c = min_color(g)
    assert num_colors(c) == 1


def test_validate_detects_conflict():
    g = clique(2)
    with pytest.raises(ValueError):
        validate_coloring(g, {"n0": 0, "n1": 0})


def test_validate_detects_missing_node():
    g = clique(2)
    with pytest.raises(ValueError):
        validate_coloring(g, {"n0": 0})


def test_determinism():
    g = cycle(9)
    assert dsatur_color(g) == dsatur_color(g)
    assert simplify_color(g) == simplify_color(g)
