"""Unit tests for the content-addressed analysis cache."""

import pickle

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.cache import (
    AnalysisCache,
    CacheStats,
    get_cache,
    scoped,
    set_cache_dir,
)
from repro.core.pipeline import allocate_programs
from repro.ir.parser import parse_program
from repro.obs import events, metrics
from tests.conftest import FIG3_T1, FIG3_T2, MINI_KERNEL


def prog(text=MINI_KERNEL, name="k"):
    return parse_program(text, name)


def test_miss_then_hit():
    cache = AnalysisCache()
    p = prog()
    a1 = cache.analyze(p)
    a2 = cache.analyze(prog())  # same text, fresh Program object
    assert a1 is a2
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert len(cache) == 1
    assert p in cache


def test_results_match_uncached():
    cache = AnalysisCache()
    p = prog(FIG3_T1, "t1")
    cached = cache.analyze(p)
    fresh = analyze_thread(prog(FIG3_T1, "t1"))
    assert cached.slots == fresh.slots
    assert cached.conflicts_at == fresh.conflicts_at
    assert cache.bounds(p) == estimate_bounds(fresh)


def test_bounds_lazy_and_memoized():
    cache = AnalysisCache()
    p = prog()
    cache.analyze(p)
    b1 = cache.bounds(p)
    b2 = cache.bounds(p)
    assert b1 is b2
    an, b3 = cache.analyze_with_bounds(p)
    assert b3 is b1 and an is cache.analyze(p)


def test_lru_eviction():
    cache = AnalysisCache(capacity=2)
    p1, p2, p3 = prog(MINI_KERNEL, "a"), prog(FIG3_T1, "b"), prog(FIG3_T2, "c")
    cache.analyze(p1)
    cache.analyze(p2)
    cache.analyze(p1)  # p1 now most recent
    cache.analyze(p3)  # evicts p2
    assert p1 in cache and p3 in cache and p2 not in cache
    assert cache.stats.evictions == 1


def test_clear():
    cache = AnalysisCache()
    cache.analyze(prog())
    cache.clear()
    assert len(cache) == 0


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        AnalysisCache(capacity=0)


def test_disk_layer_round_trip(tmp_path):
    writer = AnalysisCache(cache_dir=tmp_path)
    p = prog(FIG3_T1, "t1")
    writer.analyze(p)
    writer.bounds(p)
    assert list(tmp_path.glob("*.pkl"))

    reader = AnalysisCache(cache_dir=tmp_path)
    b = reader.bounds(prog(FIG3_T1, "t1"))
    assert reader.stats.disk_hits == 1
    assert reader.stats.misses == 0
    assert b == writer.bounds(p)


def test_disk_corrupt_file_is_a_miss(tmp_path):
    cache = AnalysisCache(cache_dir=tmp_path)
    p = prog()
    (tmp_path / f"{p.fingerprint()}.pkl").write_bytes(b"not a pickle")
    cache.analyze(p)
    assert cache.stats.disk_errors == 1
    assert cache.stats.misses == 1


def test_disk_foreign_payload_is_a_miss(tmp_path):
    cache = AnalysisCache(cache_dir=tmp_path)
    p = prog()
    (tmp_path / f"{p.fingerprint()}.pkl").write_bytes(
        pickle.dumps(("something", "else"))
    )
    cache.analyze(p)
    assert cache.stats.disk_errors == 1


def _disk_hammer(arg):
    """Module-level worker: concurrent reader+writer of one cache dir."""
    tmp, rounds = arg
    errors = 0
    out = []
    for _ in range(rounds):
        cache = AnalysisCache(cache_dir=tmp)
        for text, name in (
            (FIG3_T1, "t1"), (FIG3_T2, "t2"), (MINI_KERNEL, "k")
        ):
            p = parse_program(text, name)
            cache.analyze(p)
            out.append((p.fingerprint(), repr(cache.bounds(p))))
        errors += cache.stats.disk_errors
    return out, errors


def test_disk_layer_multiprocess_atomicity(tmp_path):
    # The disk layer's write discipline is write-to-temp + os.replace
    # (and quarantine is itself an os.replace), so any number of
    # processes may race on one cache dir: a reader observes absent or
    # complete, never torn.  Hammer the same three programs from four
    # processes and require zero disk errors, one bounds value per
    # fingerprint, and no temp-file or quarantine litter left behind.
    import multiprocessing as mp

    with mp.Pool(4) as pool:
        outcomes = pool.map(_disk_hammer, [(str(tmp_path), 5)] * 4)
    by_fp = {}
    for out, errors in outcomes:
        assert errors == 0
        for fp, bounds_repr in out:
            by_fp.setdefault(fp, set()).add(bounds_repr)
    assert len(by_fp) == 3
    assert all(len(values) == 1 for values in by_fp.values())
    assert not list(tmp_path.glob("*.tmp"))
    assert not list(tmp_path.glob("*.bad"))


def test_env_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = AnalysisCache()
    assert cache.cache_dir == tmp_path
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert AnalysisCache().cache_dir is None


def test_set_cache_dir(tmp_path):
    with scoped() as cache:
        assert cache.cache_dir is None
        set_cache_dir(tmp_path)
        assert cache.cache_dir == tmp_path
        set_cache_dir(None)
        assert cache.cache_dir is None


def test_telemetry_counters():
    cache = AnalysisCache()
    with metrics.scoped() as reg, events.capture() as em:
        cache.analyze(prog())
        cache.analyze(prog())
    names = [e.name for e in em.events]
    assert names == ["cache.miss", "cache.hit"]
    snap = reg.snapshot()
    assert snap["counters"]["cache.miss"] == 1
    assert snap["counters"]["cache.hit"] == 1


def test_warm_many_serial_and_dedup():
    cache = AnalysisCache()
    programs = [prog(MINI_KERNEL, "a"), prog(MINI_KERNEL, "a"),
                prog(FIG3_T1, "b")]
    pairs = cache.warm_many(programs)
    assert len(pairs) == 3
    assert pairs[0][0] is pairs[1][0]  # duplicates share the entry
    assert cache.stats.misses == 2


def test_warm_many_parallel_matches_serial():
    serial = AnalysisCache()
    parallel = AnalysisCache()
    programs = [prog(MINI_KERNEL, "a"), prog(FIG3_T1, "b"),
                prog(FIG3_T2, "c")]
    want = serial.warm_many(programs)
    got = parallel.warm_many(programs, jobs=2)
    assert parallel.stats.misses == 3
    for (an_w, b_w), (an_g, b_g) in zip(want, got):
        assert an_w.slots == an_g.slots
        assert an_w.conflicts_at == an_g.conflicts_at
        assert b_w == b_g
    # Subsequent lookups are pure hits.
    parallel.analyze(prog(FIG3_T1, "b"))
    assert parallel.stats.misses == 3


def test_scoped_restores_global():
    before = get_cache()
    with scoped() as inner:
        assert get_cache() is inner
        assert get_cache() is not before
    assert get_cache() is before


def test_truncated_disk_entry_quarantined_and_recomputed(tmp_path):
    # Regression: a half-written entry (e.g. a crash mid-store on an fs
    # without atomic rename) must be quarantined -- not retried forever,
    # not silently trusted -- and the analysis recomputed correctly.
    writer = AnalysisCache(cache_dir=tmp_path)
    p = prog(FIG3_T1, "t1")
    writer.analyze(p)
    writer.bounds(p)
    path = tmp_path / f"{p.fingerprint()}.pkl"
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])

    reader = AnalysisCache(cache_dir=tmp_path)
    with events.capture() as em:
        got = reader.analyze(prog(FIG3_T1, "t1"))
    assert reader.stats.disk_errors == 1
    assert reader.stats.misses == 1  # recomputed, not trusted
    assert (tmp_path / f"{p.fingerprint()}.bad").exists()
    disk_events = [e for e in em.events if e.name == "cache.disk_error"]
    assert disk_events and disk_events[0].fields["action"] == "quarantined"
    assert got.slots == analyze_thread(prog(FIG3_T1, "t1")).slots
    # The recomputed entry was re-stored; a third cache disk-hits it.
    third = AnalysisCache(cache_dir=tmp_path)
    third.analyze(prog(FIG3_T1, "t1"))
    assert third.stats.disk_hits == 1
    assert third.stats.disk_errors == 0


def test_injected_disk_faults_are_recoverable(tmp_path):
    from repro.resilience import faults
    from repro.resilience.faults import FaultSpec

    for mode in ("truncate", "corrupt"):
        sub = tmp_path / mode
        writer = AnalysisCache(cache_dir=sub)
        p = prog(FIG3_T1, "t1")
        want = writer.analyze(p)

        reader = AnalysisCache(cache_dir=sub)
        with faults.inject(FaultSpec("cache.disk", mode=mode)) as plan:
            got = reader.analyze(prog(FIG3_T1, "t1"))
        assert plan.fired_at("cache.disk")
        assert reader.stats.disk_errors == 1
        assert got.slots == want.slots


def test_persistent_disk_failures_degrade_to_memory(tmp_path):
    from repro.resilience import guard

    # Point the disk layer below a regular *file*: every load and every
    # store fails with NotADirectoryError, which must trip the
    # cache.disk_to_memory rung instead of failing forever.
    blocker = tmp_path / "blocker.txt"
    blocker.write_text("not a directory")
    cache = AnalysisCache(cache_dir=blocker / "sub", max_disk_errors=2)
    with guard.watching() as degs:
        a = cache.analyze(prog(FIG3_T1, "t1"))
    assert cache.cache_dir is None  # disk layer disabled...
    assert cache.stats.disk_errors >= 2
    assert any(d.rung == "cache.disk_to_memory" for d in degs)
    # ...but the cache still works, memory-only.
    assert cache.analyze(prog(FIG3_T1, "t1")) is a
    assert cache.stats.hits == 1


def test_pipeline_cached_matches_fresh():
    texts = [(MINI_KERNEL, "a"), (MINI_KERNEL, "b")]
    with scoped():
        first = allocate_programs(
            [prog(t, n) for t, n in texts], nreg=64
        )
        hits_before = get_cache().stats.hits
        second = allocate_programs(
            [prog(t, n) for t, n in texts], nreg=64
        )
        assert get_cache().stats.hits > hits_before
    assert [p.fingerprint() for p in first.programs] == [
        p.fingerprint() for p in second.programs
    ]
    assert first.total_registers == second.total_registers
    assert first.total_moves == second.total_moves


def test_quarantine_capped_oldest_first(tmp_path):
    """The ``*.bad`` graveyard is bounded: beyond ``max_quarantine``
    entries the oldest are removed (satellite of the service PR -- a
    long-running server quarantining corrupt entries must not grow the
    directory forever)."""
    import os

    from repro.core.cache import trim_quarantine

    for i in range(6):
        bad = tmp_path / f"entry{i}.bad"
        bad.write_bytes(b"x")
        # Distinct mtimes so "oldest" is well defined on coarse clocks.
        os.utime(bad, (1000 + i, 1000 + i))
    with events.capture() as em:
        removed = trim_quarantine(tmp_path, cap=2)
    assert removed == 4
    survivors = sorted(p.name for p in tmp_path.glob("*.bad"))
    assert survivors == ["entry4.bad", "entry5.bad"]
    trims = [e for e in em.events if e.name == "cache.quarantine_trimmed"]
    assert trims and trims[0].fields["trimmed"] == 4


def test_quarantine_cap_applies_on_cache_quarantine(tmp_path):
    """Quarantining through the cache itself respects the cap."""
    import os

    cache = AnalysisCache(cache_dir=tmp_path, max_quarantine=2)
    texts = [FIG3_T1, FIG3_T2, MINI_KERNEL]
    for i, text in enumerate(texts):
        p = prog(text, f"t{i}")
        cache.analyze(p)
        path = tmp_path / f"{p.fingerprint()}.pkl"
        path.write_bytes(b"garbage")
        os.utime(path, (1000 + i, 1000 + i))
        reader = AnalysisCache(cache_dir=tmp_path, max_quarantine=2)
        reader.analyze(prog(text, f"t{i}"))
        # re-corrupt trail: drop the freshly re-stored good entry so
        # only the .bad files accumulate
        path.unlink()
    assert len(list(tmp_path.glob("*.bad"))) <= 2
