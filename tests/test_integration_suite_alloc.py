"""Integration: allocate every benchmark and verify execution equivalence.

This is the strongest end-to-end guarantee in the repository: for each
benchmark, the allocated (physical-register) program must produce exactly
the reference run's observable behaviour, under the paranoid safety
checker, both at the comfortable budget and squeezed to the minimum.
"""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.pipeline import allocate_programs
from repro.sim.run import outputs_match, run_reference, run_threads
from repro.suite.registry import BENCHMARKS, load


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_single_thread_allocation_equivalence(name):
    program = load(name)
    out = allocate_programs([program], nreg=128)
    ref = run_reference([program], packets_per_thread=3)
    got = run_threads(
        out.programs,
        packets_per_thread=3,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got), name


@pytest.mark.parametrize("name", ["frag", "drr", "url", "l2l3fwd_send", "crc"])
def test_minimum_register_allocation_equivalence(name):
    program = load(name)
    bounds = estimate_bounds(analyze_thread(program))
    nreg = bounds.min_pr + (bounds.min_r - bounds.min_pr)
    out = allocate_programs([program], nreg=nreg)
    assert out.total_registers <= nreg
    ref = run_reference([program], packets_per_thread=3)
    got = run_threads(
        out.programs,
        packets_per_thread=3,
        nreg=nreg,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got), name


def test_four_thread_mixed_pu():
    names = ("frag", "drr", "url", "ipchains")
    programs = [load(n) for n in names]
    out = allocate_programs(programs, nreg=40)
    assert out.total_registers <= 40
    ref = run_reference(programs, packets_per_thread=4)
    got = run_threads(
        out.programs,
        packets_per_thread=4,
        nreg=40,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got)


def test_four_thread_squeezed_pu():
    names = ("frag", "drr", "url", "ipchains")
    programs = [load(n) for n in names]
    bounds = [estimate_bounds(analyze_thread(p)) for p in programs]
    floor = sum(b.min_pr for b in bounds) + max(
        b.min_r - b.min_pr for b in bounds
    )
    out = allocate_programs([load(n) for n in names], nreg=floor)
    assert out.total_registers <= floor
    ref = run_reference(programs, packets_per_thread=4)
    got = run_threads(
        out.programs,
        packets_per_thread=4,
        nreg=floor,
        assignment=out.assignment,
    )
    assert outputs_match(ref, got)
