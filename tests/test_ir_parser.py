"""Unit tests for the assembly parser."""

import pytest

from repro.errors import AsmSyntaxError
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Label, PhysReg, VirtualReg
from repro.ir.parser import parse_instruction, parse_program


def test_parse_alu():
    i = parse_instruction("add %a, %b, %c")
    assert i.opcode is Opcode.ADD
    assert i.operands == (VirtualReg("a"), VirtualReg("b"), VirtualReg("c"))


def test_parse_alu_immediate():
    i = parse_instruction("addi %a, %b, 42")
    assert i.operands[2] == Imm(42)


def test_parse_hex_immediate():
    i = parse_instruction("andi %a, %a, 0xFFFF")
    assert i.operands[2] == Imm(0xFFFF)


def test_parse_negative_immediate_wraps():
    i = parse_instruction("movi %a, -1")
    assert i.operands[1] == Imm(0xFFFFFFFF)


def test_parse_physical_registers():
    i = parse_instruction("mov $r3, $r12")
    assert i.operands == (PhysReg(3), PhysReg(12))


def test_parse_load_memory_operand():
    i = parse_instruction("load %w, [%buf + 4]")
    assert i.opcode is Opcode.LOAD
    assert i.operands == (VirtualReg("w"), VirtualReg("buf"), Imm(4))


def test_parse_load_without_offset():
    i = parse_instruction("load %w, [%buf]")
    assert i.operands[2] == Imm(0)


def test_parse_store_negative_offset():
    i = parse_instruction("store %w, [%buf - 2]")
    assert i.operands[2] == Imm(-2)


def test_parse_branch():
    i = parse_instruction("beq %a, %b, loop")
    assert i.target == Label("loop")


def test_parse_branch_immediate():
    i = parse_instruction("beqi %a, 0, done")
    assert i.operands == (VirtualReg("a"), Imm(0), Label("done"))


def test_unknown_mnemonic():
    with pytest.raises(AsmSyntaxError):
        parse_instruction("frobnicate %a")


def test_wrong_operand_count():
    with pytest.raises(AsmSyntaxError):
        parse_instruction("add %a, %b")


def test_register_where_immediate_expected():
    with pytest.raises(AsmSyntaxError):
        parse_instruction("addi %a, %b, %c")


def test_parse_program_labels(mini_kernel):
    assert mini_kernel.labels["start"] == 0
    assert "loop" in mini_kernel.labels
    assert mini_kernel.instrs[-1].opcode is Opcode.HALT


def test_comments_and_blank_lines():
    p = parse_program(
        """
        ; leading comment
        movi %a, 1   ; trailing comment

        halt
        """,
        "c",
    )
    assert len(p.instrs) == 2


def test_duplicate_label_rejected():
    with pytest.raises(AsmSyntaxError):
        parse_program("x:\n movi %a, 1\nx:\n halt\n", "dup")


def test_trailing_label_rejected():
    with pytest.raises(AsmSyntaxError):
        parse_program("movi %a, 1\nhalt\nend:\n", "t")


def test_empty_program_rejected():
    with pytest.raises(AsmSyntaxError):
        parse_program("; nothing\n", "e")


def test_error_carries_line_number():
    try:
        parse_program("movi %a, 1\nbogus %a\nhalt\n", "n")
    except AsmSyntaxError as e:
        assert e.line_no == 2
    else:  # pragma: no cover
        raise AssertionError("expected AsmSyntaxError")


def test_multiple_labels_share_an_instruction():
    p = parse_program("a:\nb:\n movi %x, 1\n halt\n", "m")
    assert p.labels["a"] == 0 and p.labels["b"] == 0
