"""Unit tests for dominators and natural loops."""

from repro.cfg.blocks import build_blocks
from repro.cfg.loops import dominators, loop_depth, natural_loops
from repro.ir.parser import parse_program


def test_straight_line_no_loops(straight):
    assert natural_loops(straight) == []
    assert all(d == 0 for d in loop_depth(straight))


def test_entry_dominates_everything(mini_kernel):
    blocks = build_blocks(mini_kernel)
    dom = dominators(blocks)
    for b in blocks:
        assert 0 in dom[b.bid]
        assert b.bid in dom[b.bid]


def test_simple_loop_detected(mini_kernel):
    loops = natural_loops(mini_kernel)
    assert loops  # the packet loop plus the word loop
    depths = loop_depth(mini_kernel)
    loop_head = mini_kernel.labels["loop"]
    assert depths[loop_head] >= 1


def test_nested_loops_depth():
    p = parse_program(
        """
        movi %i, 0
    outer:
        movi %j, 0
    inner:
        addi %j, %j, 1
        blti %j, 3, inner
        addi %i, %i, 1
        blti %i, 3, outer
        store %i, [%j]
        halt
        """,
        "nest",
    )
    depths = loop_depth(p)
    inner_i = p.labels["inner"]
    outer_i = p.labels["outer"]
    tail = len(p.instrs) - 2  # the store
    assert depths[inner_i] == 2
    assert depths[outer_i] == 1
    assert depths[tail] == 0


def test_diamond_has_no_loop(fig3_t1):
    assert natural_loops(fig3_t1) == []


def test_self_loop_block():
    p = parse_program(
        """
        movi %i, 0
    spin:
        addi %i, %i, 1
        blti %i, 9, spin
        store %i, [%i]
        halt
        """,
        "t",
    )
    loops = natural_loops(p)
    assert len(loops) == 1
    assert loops[0].header in loops[0]


def test_two_back_edges_same_header():
    p = parse_program(
        """
        movi %i, 0
    head:
        addi %i, %i, 1
        beqi %i, 5, head
        blti %i, 9, head
        store %i, [%i]
        halt
        """,
        "t",
    )
    loops = natural_loops(p)
    assert len(loops) == 2
    # Same-header loops merge for depth purposes: depth stays 1.
    assert max(loop_depth(p)) == 1


def test_spill_cost_prefers_cold_values():
    from repro.baseline.chaitin import _occurrences

    p = parse_program(
        """
        movi %cold, 1
        movi %hot, 0
        movi %i, 0
    loop:
        add %hot, %hot, %i
        addi %i, %i, 1
        blti %i, 9, loop
        store %hot, [%cold]
        halt
        """,
        "t",
    )
    occ = _occurrences(p)
    from repro.ir.operands import VirtualReg

    assert occ[VirtualReg("hot")] > occ[VirtualReg("cold")] * 3
