"""White-box tests for the intra-thread allocator's split machinery."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.context import initial_context
from repro.core.intra import IntraAllocator
from repro.ir.operands import VirtualReg
from repro.ir.parser import parse_program
from tests.conftest import FIG3_T1, MINI_KERNEL


def v(name):
    return VirtualReg(name)


def fresh(program_text, name="t"):
    an = analyze_thread(parse_program(program_text, name))
    bounds = estimate_bounds(an)
    alloc = IntraAllocator(an, bounds)
    return an, bounds, alloc


def test_swap_colors():
    an, bounds, alloc = fresh(FIG3_T1)
    ctx = alloc.context.copy()
    before = {p.pid: p.color for p in ctx.all_pieces()}
    colors = sorted({p.color for p in ctx.all_pieces()})
    if len(colors) < 2:
        pytest.skip("not enough colors to swap")
    a, b = colors[0], colors[1]
    alloc._swap_colors(ctx, a, b)
    for piece in ctx.all_pieces():
        old = before[piece.pid]
        if old == a:
            assert piece.color == b
        elif old == b:
            assert piece.color == a
        else:
            assert piece.color == old


def test_swap_same_color_noop():
    an, bounds, alloc = fresh(FIG3_T1)
    ctx = alloc.context.copy()
    before = {p.pid: p.color for p in ctx.all_pieces()}
    alloc._swap_colors(ctx, 0, 0)
    assert {p.pid: p.color for p in ctx.all_pieces()} == before


def test_shatter_produces_single_slot_fragments():
    an, bounds, alloc = fresh(MINI_KERNEL, "k")
    ctx = alloc.context.copy()
    piece = max(ctx.all_pieces(), key=lambda p: len(p.slots))
    n_slots = len(piece.slots)
    if n_slots < 2:
        pytest.skip("largest piece already atomic")
    fresh_pids = alloc._shatter(ctx, piece, protected=set())
    assert fresh_pids is not None
    assert len(fresh_pids) == n_slots  # n-1 fragments + the piece itself
    for pid in fresh_pids:
        assert len(ctx.pieces[pid].slots) == 1


def test_shatter_refuses_single_slot():
    an, bounds, alloc = fresh(MINI_KERNEL, "k")
    ctx = alloc.context.copy()
    piece = min(ctx.all_pieces(), key=lambda p: len(p.slots))
    if len(piece.slots) != 1:
        pytest.skip("no single-slot piece in fixture")
    assert alloc._shatter(ctx, piece, protected=set()) is None


def test_eliminate_color_reports_failure_cleanly():
    # A clique at a CSB cannot lose a private color below MinPR; the
    # helper must return False rather than corrupt the context.
    an, bounds, alloc = fresh(
        """
        movi %a, 1
        movi %b, 2
        movi %c, 3
        ctx
        store %a, [%b]
        store %b, [%c]
        store %c, [%a]
        halt
        """
    )
    assert bounds.min_pr == 3
    ctx = alloc.context.copy()
    ok = alloc._eliminate_color(ctx, 0)
    if not ok:
        alloc.context.validate()  # accepted context untouched


def test_reduce_keeps_accepted_context_valid_after_many_steps():
    an, bounds, alloc = fresh(MINI_KERNEL, "k")
    steps = 0
    while steps < 10:
        res = alloc.probe_reduce_pr() or alloc.probe_reduce_sr()
        if res is None:
            break
        alloc.commit(res)
        alloc.context.validate()
        steps += 1
    assert alloc.context.pr >= bounds.min_pr
    assert alloc.context.r >= bounds.min_r


def test_eliminate_unnecessary_moves_reduces_cost():
    an, bounds, alloc = fresh(FIG3_T1)
    ctx = alloc.context.copy()
    # Split %b artificially with a pointless color change, then let the
    # move-elimination pass absorb it back.
    piece = ctx.pieces_of(v("b"))[0]
    if len(piece.slots) < 2:
        pytest.skip("b too small to split in this shape")
    part = frozenset([max(piece.slots)])
    frag = ctx.split_piece(piece, part, piece.color)
    other = next(
        c for c in range(ctx.r) if c != piece.color
        and not ctx.conflicts_with_color(frag, c)
    )
    frag.color = other
    cost_before = ctx.move_cost()
    assert cost_before >= 1
    alloc._eliminate_unnecessary_moves(ctx)
    assert ctx.move_cost() < cost_before


def test_probe_shift_respects_min_pr():
    an, bounds, alloc = fresh(FIG3_T1)
    # Drive PR to its minimum first.
    while alloc.context.pr > bounds.min_pr:
        res = alloc.probe_reduce_pr() or alloc.probe_shift()
        if res is None:
            break
        alloc.commit(res)
    if alloc.context.pr == bounds.min_pr:
        assert alloc.probe_shift() is None
