"""Unit tests for symmetric register allocation (section 8)."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.sra import allocate_symmetric
from repro.errors import AllocationError
from repro.ir.parser import parse_program
from repro.suite.registry import load
from tests.conftest import FIG3_T1, MINI_KERNEL


def test_symmetric_budget_respected():
    an = analyze_thread(parse_program(MINI_KERNEL, "k"))
    result = allocate_symmetric(an, nthd=4, nreg=32)
    assert result.total_registers <= 32
    result.context.validate()


def test_symmetric_prefers_zero_moves_when_affordable():
    an = analyze_thread(parse_program(MINI_KERNEL, "k"))
    result = allocate_symmetric(an, nthd=4, nreg=128)
    assert result.move_cost == 0


def test_symmetric_tight_budget_inserts_moves():
    an = analyze_thread(parse_program(FIG3_T1, "t"))
    # Four threads, bounds MinPR=1, MinR=2: floor is 4*1 + 1 = 5.
    result = allocate_symmetric(an, nthd=4, nreg=5)
    assert result.total_registers <= 5
    assert result.pr == 1
    assert result.move_cost >= 1
    result.context.validate()


def test_symmetric_infeasible_raises():
    an = analyze_thread(parse_program(FIG3_T1, "t"))
    with pytest.raises(AllocationError):
        allocate_symmetric(an, nthd=4, nreg=4)


def test_symmetric_on_benchmark():
    an = analyze_thread(load("frag"))
    result = allocate_symmetric(an, nthd=4, nreg=128)
    assert result.total_registers <= 128
    assert result.nthd == 4
    result.context.validate()
