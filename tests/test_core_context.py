"""Unit tests for allocation contexts (pieces, conflicts, splitting)."""

import pytest

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.context import AllocContext, initial_context
from repro.errors import AllocationError
from repro.ir.operands import VirtualReg


def v(name):
    return VirtualReg(name)


def build(program):
    an = analyze_thread(program)
    b = estimate_bounds(an)
    ctx = initial_context(an, b.coloring, b.max_pr, b.max_r - b.max_pr)
    return an, b, ctx


def test_initial_context_valid(fig3_t1):
    an, b, ctx = build(fig3_t1)
    ctx.validate()
    assert ctx.pr == b.max_pr
    assert ctx.r == b.max_r


def test_boundary_classification(fig3_t1):
    an, b, ctx = build(fig3_t1)
    a_piece = ctx.pieces_of(v("a"))[0]
    assert ctx.is_boundary(a_piece)
    b_piece = ctx.pieces_of(v("b"))[0]
    assert not ctx.is_boundary(b_piece)


def test_move_cost_zero_when_unsplit(fig3_t1):
    an, b, ctx = build(fig3_t1)
    assert ctx.move_cost() == 0
    assert ctx.crossing_edges() == []


def test_split_creates_crossings(straight):
    an, b, ctx = build(straight)
    piece = ctx.pieces_of(v("a"))[0]
    # Carve off the tail of %a's range with a different color.
    part = frozenset({3, 4})
    fresh_color = ctx.r - 1
    fragment = ctx.split_piece(piece, part, piece.color)
    fragment.color = (piece.color + 1) % ctx.r
    cost = ctx.move_cost()
    assert cost >= 1
    assert len(ctx.crossing_edges()) == cost
    assert v("a") in ctx.multi_piece_regs


def test_split_requires_proper_subset(straight):
    an, b, ctx = build(straight)
    piece = ctx.pieces_of(v("a"))[0]
    with pytest.raises(AllocationError):
        ctx.split_piece(piece, piece.slots, 0)
    with pytest.raises(AllocationError):
        ctx.split_piece(piece, frozenset(), 0)


def test_copy_is_independent(straight):
    an, b, ctx = build(straight)
    clone = ctx.copy()
    piece = clone.pieces_of(v("a"))[0]
    clone.split_piece(piece, frozenset({4}), piece.color)
    assert len(ctx.pieces_of(v("a"))) == 1
    assert len(clone.pieces_of(v("a"))) == 2


def test_conflict_profile_matches_pointwise_queries(fig3_t1):
    an, b, ctx = build(fig3_t1)
    for piece in ctx.all_pieces():
        profile = ctx.conflict_profile(piece)
        for color in range(ctx.r):
            listed = ctx.conflicts_with_color(piece, color)
            if color in profile:
                assert {p.pid for p in profile[color][0]} == {
                    p.pid for p, _ in listed
                }
            else:
                assert listed == []


def test_validate_rejects_shared_boundary(straight):
    an, b, ctx = build(straight)
    piece = ctx.pieces_of(v("a"))[0]
    assert ctx.is_boundary(piece)
    piece.color = ctx.r - 1 if ctx.r - 1 >= ctx.pr else piece.color
    if piece.color >= ctx.pr:
        with pytest.raises(AllocationError):
            ctx.validate()


def test_validate_rejects_conflicting_colors(fig3_t1):
    an, b, ctx = build(fig3_t1)
    pb = ctx.pieces_of(v("b"))[0]
    pc = ctx.pieces_of(v("c"))[0]
    pc.color = pb.color
    with pytest.raises(AllocationError):
        ctx.validate()
