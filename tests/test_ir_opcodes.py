"""Unit tests for the instruction-set table."""

import pytest

from repro.ir.opcodes import MNEMONICS, Opcode, SPECS, spec


def test_every_opcode_has_a_spec():
    assert set(SPECS) == set(Opcode)


def test_mnemonics_round_trip():
    for op in Opcode:
        assert MNEMONICS[op.value] is op


def test_alu_rr_signature():
    s = spec(Opcode.ADD)
    assert s.signature == ("D", "U", "U")
    assert s.n_defs == 1 and s.n_uses == 2
    assert not s.is_csb and not s.is_branch


def test_alu_ri_signature():
    s = spec(Opcode.ADDI)
    assert s.signature == ("D", "U", "I")


def test_memory_ops_are_csbs():
    for op in (Opcode.LOAD, Opcode.STORE, Opcode.RECV, Opcode.SEND):
        assert spec(op).is_memory
        assert spec(op).is_csb


def test_ctx_is_csb_but_not_memory():
    s = spec(Opcode.CTX)
    assert s.is_ctx and s.is_csb and not s.is_memory


def test_branches():
    assert spec(Opcode.BR).is_branch and not spec(Opcode.BR).is_cond
    for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
               Opcode.BEQI, Opcode.BNEI, Opcode.BLTI, Opcode.BGEI):
        s = spec(op)
        assert s.is_branch and s.is_cond


def test_halt_is_terminal():
    assert spec(Opcode.HALT).is_halt
    assert not spec(Opcode.HALT).is_csb


def test_store_has_no_defs():
    assert spec(Opcode.STORE).n_defs == 0
    assert spec(Opcode.STORE).n_uses == 2


def test_load_defines_its_destination():
    assert spec(Opcode.LOAD).n_defs == 1
    assert spec(Opcode.LOAD).n_uses == 1
