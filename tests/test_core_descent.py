"""Shared-descent allocator: one Figure-8 run must equal a fresh run
at every budget, field by field -- contexts, move costs, physical maps,
rewritten programs, and errors included."""

import pickle

import pytest

from repro.core.analysis import analyze_thread
from repro.core.assign import assign_physical
from repro.core.bounds import estimate_bounds
from repro.core.cache import AnalysisCache, scoped
from repro.core.inter import (
    SharedDescent,
    allocate_threads,
    allocate_threads_descent,
)
from repro.core.pipeline import allocate_programs, allocate_programs_sweep
from repro.core.rewrite import rewrite_program
from repro.errors import AllocationError
from repro.ir.parser import parse_program
from repro.obs import events, metrics
from tests.conftest import FIG3_T1, FIG3_T2, MINI_KERNEL

TEXTS = {"mini": MINI_KERNEL, "fig3a": FIG3_T1, "fig3b": FIG3_T2}


def make_analyses(names):
    return [
        analyze_thread(parse_program(TEXTS[n], f"{n}{i}"))
        for i, n in enumerate(names)
    ]


def budget_range(analyses, slack=2):
    bounds = [estimate_bounds(a) for a in analyses]
    floor = sum(b.min_pr for b in bounds) + max(
        b.min_r - b.min_pr for b in bounds
    )
    ceiling = sum(b.max_pr for b in bounds) + max(
        b.max_sr for b in bounds
    )
    return floor - slack, ceiling + slack


def context_facts(ctx):
    """Every observable fact of one thread's coloring."""
    return (
        ctx.pr,
        ctx.sr,
        sorted(
            (p.pid, str(p.reg), tuple(sorted(p.slots)), p.color)
            for p in ctx.pieces.values()
        ),
    )


def result_facts(result):
    """The full field-by-field content of an InterThreadResult, plus the
    physical maps and rewritten-program fingerprints it leads to."""
    assignment = assign_physical(result)
    rewritten = [
        rewrite_program(t.analysis, t.context, m).fingerprint()
        for t, m in zip(result.threads, assignment.maps)
    ]
    return {
        "nreg": result.nreg,
        "sgr": result.sgr,
        "total_registers": result.total_registers,
        "total_moves": result.total_moves,
        "pr": [t.pr for t in result.threads],
        "sr": [t.sr for t in result.threads],
        "move_cost": [t.move_cost for t in result.threads],
        "contexts": [context_facts(t.context) for t in result.threads],
        "maps": [
            (m.private_base, m.pr, m.sr, m.shared_base)
            for m in assignment.maps
        ],
        "rewritten": rewritten,
    }


def assert_same_outcome(analyses, descent, nreg):
    """descent.result(nreg) must equal a fresh allocate_threads(nreg) --
    either identical results or identical AllocationErrors."""
    fresh_exc = fresh = None
    try:
        fresh = allocate_threads(analyses, nreg=nreg)
    except AllocationError as exc:
        fresh_exc = exc
    if fresh_exc is None:
        got = descent.result(nreg)
        assert result_facts(got) == result_facts(fresh)
    else:
        with pytest.raises(AllocationError) as info:
            descent.result(nreg)
        assert str(info.value) == str(fresh_exc)
        assert info.value.requirement == fresh_exc.requirement
        assert isinstance(info.value.requirement, int)


def test_descent_matches_fresh_across_full_budget_range():
    analyses = make_analyses(["mini", "fig3a", "fig3b"])
    lo, hi = budget_range(analyses)
    descent = allocate_threads_descent(analyses, range(lo, hi + 1))
    for nreg in range(lo, hi + 1):
        assert_same_outcome(analyses, descent, nreg)


def test_budget_order_does_not_matter():
    analyses = make_analyses(["mini", "mini"])
    lo, hi = budget_range(analyses)
    budgets = [lo + 1, hi, lo + 3, lo + 1]
    descent = allocate_threads_descent(analyses, budgets)
    # Querying in any order, including budgets never requested up front,
    # reads the same trajectory.
    for nreg in [hi, lo + 3, lo + 1, hi - 1]:
        assert_same_outcome(analyses, descent, nreg)


def test_zero_cost_checkpoint_matches_fresh():
    for names in (["mini", "fig3a"], ["fig3a", "fig3b"], ["mini"]):
        analyses = make_analyses(names)
        fresh = allocate_threads(analyses, nreg=128, zero_cost_only=True)
        descent = allocate_threads_descent(analyses, [], zero_cost=True)
        got = descent.zero_cost_result(nreg=128)
        assert result_facts(got) == result_facts(fresh)


def test_reachable_matches_probing():
    analyses = make_analyses(["mini", "fig3a", "fig3b"])
    lo, hi = budget_range(analyses)
    descent = SharedDescent(analyses)
    for nreg in range(lo, hi + 1):
        reached = descent.reachable(nreg)
        try:
            allocate_threads(analyses, nreg=nreg)
            assert reached == nreg
        except AllocationError as exc:
            assert reached == exc.requirement > nreg


def test_step_cap_mirrors_fresh_run():
    analyses = make_analyses(["mini", "fig3a"])
    lo, _ = budget_range(analyses, slack=0)
    # A fresh run at the floor needs some number of commits; find it.
    scratch = SharedDescent(analyses)
    assert scratch.run_to(lo)
    steps_needed = scratch.steps
    assert steps_needed > 0
    for cap in (0, 1, steps_needed, steps_needed + 1):
        fresh_exc = None
        try:
            allocate_threads(analyses, nreg=lo, _max_steps=cap)
        except AllocationError as exc:
            fresh_exc = exc
        descent = SharedDescent(analyses, _max_steps=cap)
        if fresh_exc is None:
            assert result_facts(descent.result(lo)) == result_facts(
                allocate_threads(analyses, nreg=lo)
            )
        else:
            with pytest.raises(AllocationError) as info:
                descent.result(lo)
            assert str(info.value) == str(fresh_exc)


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(
    st.lists(st.sampled_from(sorted(TEXTS)), min_size=1, max_size=3),
    st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=5),
    st.sampled_from(["greedy", "round_robin"]),
)
def test_prefix_property_random_mixes(names, offsets, policy):
    """Any checkpoint of any descent == the fresh run at that budget."""
    analyses = make_analyses(names)
    lo, hi = budget_range(analyses)
    budgets = sorted({lo + (o * (hi - lo)) // 30 for o in offsets})
    descent = allocate_threads_descent(analyses, budgets, policy=policy)
    for nreg in budgets:
        fresh_exc = fresh = None
        try:
            fresh = allocate_threads(analyses, nreg=nreg, policy=policy)
        except AllocationError as exc:
            fresh_exc = exc
        if fresh_exc is None:
            assert result_facts(descent.result(nreg)) == result_facts(fresh)
        else:
            with pytest.raises(AllocationError) as info:
                descent.result(nreg)
            assert str(info.value) == str(fresh_exc)
            assert info.value.requirement == fresh_exc.requirement


def test_allocation_error_requirement_is_typed():
    analyses = make_analyses(["mini", "fig3a"])
    with pytest.raises(AllocationError) as info:
        allocate_threads(analyses, nreg=1)
    exc = info.value
    assert isinstance(exc.requirement, int)
    assert f"cannot fit {exc.requirement} required registers" in str(exc)
    # Sweep workers ship errors through pickle; requirement must survive.
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, AllocationError)
    assert str(clone) == str(exc)
    assert clone.requirement == exc.requirement
    # And the attribute defaults to None for plain raises.
    assert AllocationError("boom").requirement is None


def test_probe_counters_labeled_and_total_unchanged():
    analyses = make_analyses(["mini", "fig3a", "fig3b"])
    lo, _ = budget_range(analyses, slack=0)
    with metrics.scoped() as reg, events.capture():
        allocate_threads(analyses, nreg=lo)
        counters = reg.snapshot()["counters"]
    total = counters["inter.probes"]
    by_kind = {
        kind: counters.get(f'inter.probes{{kind="{kind}"}}', 0)
        for kind in ("pr", "sr", "shift")
    }
    assert total > 0
    assert sum(by_kind.values()) == total
    hits = counters.get('inter.probe_cache{result="hit"}', 0)
    misses = counters['inter.probe_cache{result="miss"}']
    assert misses == total
    assert hits >= 0  # greedy free-candidate breaks can make hits rare


def test_probe_cache_hit_counted_on_repeat_probe():
    from repro.core.inter import _DescentEngine

    engine = _DescentEngine(make_analyses(["mini", "fig3a"]))
    with metrics.scoped() as reg, events.capture():
        engine.probe_pr(0)
        engine.probe_pr(0)  # cached: same answer, no recompute
        engine.invalidate(0)
        engine.probe_pr(0)  # invalidated: recomputed
        counters = reg.snapshot()["counters"]
    assert counters['inter.probe_cache{result="hit"}'] == 1
    assert counters['inter.probe_cache{result="miss"}'] == 2
    assert counters['inter.probes{kind="pr"}'] == 2
    assert counters["inter.probes"] == 2


def test_descent_cache_reuses_trajectories():
    programs = [
        parse_program(MINI_KERNEL, "a"),
        parse_program(FIG3_T1, "b"),
    ]
    cache = AnalysisCache()
    d1 = cache.descent(programs)
    d2 = cache.descent(programs)
    assert d2 is d1
    assert cache.stats.descent_misses == 1
    assert cache.stats.descent_hits == 1
    # A different policy is a different trajectory.
    d3 = cache.descent(programs, policy="round_robin")
    assert d3 is not d1
    assert cache.stats.descent_misses == 2
    cache.clear_descents()
    assert cache.descent(programs) is not d1
    cache.clear()  # clear() drops descents too
    assert cache.descent(programs) is not d1
    assert cache.stats.descent_misses == 4


def test_descent_cache_evicts_lru():
    cache = AnalysisCache(descent_capacity=1)
    p1 = [parse_program(MINI_KERNEL, "a")]
    p2 = [parse_program(FIG3_T1, "b")]
    d1 = cache.descent(p1)
    cache.descent(p2)  # evicts d1
    assert cache.descent(p1) is not d1
    with pytest.raises(ValueError):
        AnalysisCache(descent_capacity=0)


def test_sweep_matches_per_budget_allocate_programs():
    texts = [("mini", MINI_KERNEL), ("fig3a", FIG3_T1)]
    analyses = make_analyses([n for n, _ in texts])
    lo, hi = budget_range(analyses, slack=0)
    budgets = [hi, (lo + hi) // 2, lo, hi]  # duplicates are deduped
    distinct = list(dict.fromkeys(budgets))
    with scoped():
        swept = allocate_programs_sweep(
            [parse_program(t, n) for n, t in texts], budgets
        )
    assert list(swept) == distinct
    for nreg in distinct:
        fresh = allocate_programs(
            [parse_program(t, n) for n, t in texts], nreg=nreg
        )
        got = swept[nreg]
        assert got.total_registers == fresh.total_registers
        assert got.total_moves == fresh.total_moves
        assert [p.fingerprint() for p in got.programs] == [
            p.fingerprint() for p in fresh.programs
        ]
        assert [
            (m.private_base, m.pr, m.sr, m.shared_base)
            for m in got.assignment.maps
        ] == [
            (m.private_base, m.pr, m.sr, m.shared_base)
            for m in fresh.assignment.maps
        ]


def test_sweep_infeasible_budget_raises_identical_error():
    programs = [parse_program(MINI_KERNEL, "a"), parse_program(FIG3_T1, "b")]
    with pytest.raises(AllocationError) as fresh_info:
        allocate_programs([p.copy() for p in programs], nreg=1)
    with scoped(), pytest.raises(AllocationError) as sweep_info:
        allocate_programs_sweep(programs, [1])
    assert str(sweep_info.value) == str(fresh_info.value)
    assert sweep_info.value.requirement == fresh_info.value.requirement
