"""Tests for execution tracing."""

import pytest

from repro.ir.parser import parse_program
from repro.sim.machine import Machine
from repro.sim.trace import format_trace, thread_slices


def traced_machine():
    a = parse_program("movi %x, 1\nctx\nmovi %x, 2\nhalt\n", "alpha")
    b = parse_program("movi %y, 9\nctx\nmovi %y, 8\nhalt\n", "beta")
    machine = Machine([a, b], trace=True)
    machine.run()
    return machine


def test_trace_records_every_instruction():
    machine = traced_machine()
    assert len(machine.trace_log) == 8
    tids = {tid for _, tid, _, _ in machine.trace_log}
    assert tids == {0, 1}


def test_trace_cycles_strictly_increase():
    machine = traced_machine()
    cycles = [c for c, *_ in machine.trace_log]
    assert cycles == sorted(cycles)
    assert len(set(cycles)) == len(cycles)


def test_slices_show_round_robin():
    machine = traced_machine()
    order = [tid for tid, _, _ in thread_slices(machine)]
    assert order == [0, 1, 0, 1]


def test_format_trace_columns():
    machine = traced_machine()
    text = format_trace(machine)
    assert "alpha" in text and "beta" in text
    assert "movi %x, 1" in text
    # one header + one rule + one line per instruction
    assert len(text.splitlines()) == 2 + 8


def test_format_trace_limit():
    machine = traced_machine()
    text = format_trace(machine, limit=3)
    assert "more entries" in text


def test_format_trace_limit_zero_shows_no_entries():
    machine = traced_machine()
    text = format_trace(machine, limit=0)
    # header + rule + the "more entries" line, no instruction rows
    assert "movi" not in text
    assert "8 more entries" in text
    assert len(text.splitlines()) == 3


def test_untraced_machine_rejected():
    p = parse_program("halt\n", "t")
    machine = Machine([p])
    machine.run()
    with pytest.raises(ValueError):
        format_trace(machine)
    with pytest.raises(ValueError):
        thread_slices(machine)
