"""Tests for the paranoid register-safety checker.

The checker is the dynamic counterpart of the paper's private/shared
safety requirement: it must stay silent for allocator output and fire for
hand-built violations.
"""

import pytest

from repro.core.assign import RegisterAssignment, ThreadRegisterMap
from repro.core.pipeline import allocate_programs
from repro.errors import SafetyViolation
from repro.ir.parser import parse_program
from repro.sim.machine import Machine
from repro.sim.run import run_threads
from tests.conftest import MINI_KERNEL


def two_thread_assignment(pr=2, sr=1):
    total = 2 * pr
    return RegisterAssignment(
        maps=[
            ThreadRegisterMap(0, pr, sr, total),
            ThreadRegisterMap(pr, pr, sr, total),
        ],
        shared_base=total,
        sgr=sr,
        nreg=total + sr,
    )


def test_write_outside_windows_detected():
    # Thread 0 owns $r0-$r1 (+shared $r4); writing $r2 is a violation.
    a = parse_program("movi $r2, 1\nhalt\n", "a")
    b = parse_program("movi $r2, 1\nhalt\n", "b")
    machine = Machine([a, b], nreg=5, assignment=two_thread_assignment())
    with pytest.raises(SafetyViolation):
        machine.run()


def test_read_outside_windows_detected():
    a = parse_program("movi $r0, 1\nmov $r1, $r3\nhalt\n", "a")
    b = parse_program("movi $r2, 1\nhalt\n", "b")
    machine = Machine([a, b], nreg=5, assignment=two_thread_assignment())
    with pytest.raises(SafetyViolation):
        machine.run()


def test_clobbered_private_window_detected():
    # Without an assignment the clobber goes unnoticed; with paranoid
    # windows that *fit* the registers used, a cross-thread private write
    # is caught at the write itself.
    a = parse_program(
        "movi $r0, 1\nctx\nstore $r0, [$r0]\nhalt\n", "a"
    )
    b = parse_program("movi $r0, 99\nhalt\n", "b")
    machine = Machine([a, b], nreg=5, assignment=two_thread_assignment())
    with pytest.raises(SafetyViolation):
        machine.run()


def test_shared_window_use_is_legal():
    # Both threads may use the shared register ($r4) while they run.
    a = parse_program("movi $r4, 1\nstore $r4, [$r4]\nhalt\n", "a")
    b = parse_program("movi $r4, 2\nstore $r4, [$r4 + 1]\nhalt\n", "b")
    machine = Machine([a, b], nreg=5, assignment=two_thread_assignment())
    machine.run()  # must not raise


def test_misassigned_boundary_register_detected():
    # A deliberately mis-assigned layout: the windows OVERLAP at $r1
    # (thread 0 owns [0, 2), thread 1 owns [1, 3)), so a value thread 0
    # holds across its context switch sits in a register thread 1 may
    # legally write.  Each write passes the per-thread ownership check;
    # only the snapshot comparison at resume can catch the clobber --
    # exactly the corruption the paper's private/shared split prevents.
    overlapping = RegisterAssignment(
        maps=[
            ThreadRegisterMap(0, 2, 1, 4),
            ThreadRegisterMap(1, 2, 1, 4),
        ],
        shared_base=4,
        sgr=1,
        nreg=5,
    )
    a = parse_program(
        "movi $r1, 7\nctx\nadd $r0, $r1, $r1\nhalt\n", "a"
    )
    b = parse_program("movi $r1, 9\nctx\nhalt\n", "b")
    machine = Machine([a, b], nreg=5, assignment=overlapping)
    with pytest.raises(SafetyViolation, match=r"\$r1"):
        machine.run()


def test_allocator_output_passes_paranoid_mode():
    programs = [parse_program(MINI_KERNEL, f"k{i}") for i in range(4)]
    out = allocate_programs(programs, nreg=24)
    run_threads(
        out.programs,
        packets_per_thread=6,
        nreg=24,
        assignment=out.assignment,
    )  # must not raise
