"""Unit tests for the Chaitin baseline allocator with spilling."""

import pytest

from repro.baseline.chaitin import chaitin_allocate
from repro.baseline.single_thread import (
    allocate_pu_baseline,
    single_thread_register_count,
)
from repro.errors import AllocationError
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_program
from repro.sim.run import outputs_match, run_reference, run_threads
from repro.suite.registry import load
from tests.conftest import MINI_KERNEL


def kernel():
    return parse_program(MINI_KERNEL, "k")


def test_no_spills_when_k_suffices():
    p = kernel()
    need = single_thread_register_count(p)
    res = chaitin_allocate(p, k=need)
    assert res.spilled == []
    assert res.colors_used <= need
    assert not res.program.virtual_regs()


def test_spills_when_k_too_small():
    res = chaitin_allocate(kernel(), k=3)
    assert res.spilled
    assert res.spill_loads > 0
    assert res.program.count_opcode(Opcode.LOAD) > kernel().count_opcode(
        Opcode.LOAD
    )


@pytest.mark.parametrize("k", [2, 3, 4, 8])
def test_spilled_code_preserves_semantics(k):
    p = kernel()
    res = chaitin_allocate(p.copy(), k=k)
    ref = run_reference([p], packets_per_thread=5)
    got = run_threads([res.program], packets_per_thread=5, nreg=k)
    assert outputs_match(ref, got)


def test_colors_stay_in_window():
    res = chaitin_allocate(kernel(), k=4, phys_base=10)
    for reg in res.program.phys_regs():
        assert 10 <= reg.index < 14


def test_too_few_registers_to_ever_color():
    # Three live registers are required simultaneously (add d, a, b).
    p = parse_program(
        "movi %a, 1\nmovi %b, 2\nadd %d, %a, %b\nstore %d, [%a]\nhalt\n",
        "t",
    )
    with pytest.raises(AllocationError):
        chaitin_allocate(p, k=1)


def test_pu_baseline_windows_disjoint():
    programs = [kernel() for _ in range(4)]
    pu = allocate_pu_baseline(programs, nreg=128)
    assert pu.window == 32
    seen = set()
    for i, res in enumerate(pu.results):
        regs = {r.index for r in res.program.phys_regs()}
        assert regs <= set(range(i * 32, (i + 1) * 32))
        assert not regs & seen
        seen |= regs


def test_pu_baseline_spill_areas_disjoint():
    # Force spills for all threads and check spill addresses never alias.
    programs = [kernel() for _ in range(4)]
    pu = allocate_pu_baseline(programs, nreg=16)  # window = 4 each
    run = run_threads(pu.programs, packets_per_thread=4, nreg=16)
    spill_addrs = [
        {a for a, _ in trace if 0x8000 <= a < 0x10000}
        for trace in run.stores
    ]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not spill_addrs[i] & spill_addrs[j]


def test_standalone_register_count_on_suite():
    assert single_thread_register_count(load("frag")) >= 6
    assert single_thread_register_count(load("md5")) > 32
