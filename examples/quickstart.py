"""Quickstart: allocate two packet-processing threads and run them.

Walks the whole public API in one sitting:

1. write two small thread programs in npir assembly;
2. run the cross-thread register allocator for a 16-register PU;
3. execute both the virtual-register reference and the allocated code on
   the cycle-level simulator (paranoid safety checking on);
4. confirm observable behaviour is identical and look at the stats.

Run::

    python examples/quickstart.py
"""

from repro import (
    allocate_programs,
    format_program,
    outputs_match,
    parse_program,
    run_reference,
    run_threads,
)

CHECKSUM_THREAD = """
; Sum every payload word, fold to 16 bits, write it into the scratch
; area, retransmit.
start:
    recv %buf
    beqi %buf, 0, done
    load %len, [%buf]
    movi %sum, 0
    movi %i, 0
loop:
    bge %i, %len, fold
    addi %i, %i, 1
    add %addr, %buf, %i
    load %w, [%addr]
    add %sum, %sum, %w
    ctx                       ; voluntary fairness switch
    br loop
fold:
    shri %hi, %sum, 16
    andi %lo, %sum, 0xFFFF
    add %sum, %hi, %lo
    store %sum, [%buf + 1]
    send %buf
    br start
done:
    halt
"""

COUNTER_THREAD = """
; Tag each packet with a running sequence number.
    movi %seq, 0
start:
    recv %p
    beqi %p, 0, done
    addi %seq, %seq, 1
    load %len, [%p]
    add %out, %p, %len
    store %seq, [%out + 1]
    send %p
    br start
done:
    halt
"""


def main() -> None:
    threads = [
        parse_program(CHECKSUM_THREAD, "checksum"),
        parse_program(COUNTER_THREAD, "counter"),
    ]

    outcome = allocate_programs(threads, nreg=16)
    print("== allocation ==")
    print(outcome.summary())

    print("\n== allocated code for 'checksum' ==")
    print(format_program(outcome.programs[0]))

    reference = run_reference(threads, packets_per_thread=8)
    allocated = run_threads(
        outcome.programs,
        packets_per_thread=8,
        nreg=16,
        assignment=outcome.assignment,  # paranoid safety checking
    )
    assert outputs_match(reference, allocated), "allocator broke semantics!"

    print("== simulation ==")
    print(f"observable outputs identical: yes")
    print(f"machine cycles: {allocated.cycles()}")
    for tid, name in enumerate(t.name for t in threads):
        print(
            f"  {name}: {allocated.stats.threads[tid].iterations} packets, "
            f"{allocated.thread_cpi(tid):.1f} wall cycles/packet"
        )
    print(f"PU utilization: {allocated.stats.utilization():.0%}")


if __name__ == "__main__":
    main()
