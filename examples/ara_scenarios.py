"""Asymmetric allocation: boost the register-hungry thread (paper Table 3).

The paper's motivating deployment: different tasks share one PU, and the
performance-critical one (here ``md5``) needs far more registers than its
siblings.  The fixed 32-registers-per-thread baseline makes md5 spill --
each spill is a ~20-cycle memory trip -- while the balancing allocator
gives md5 a bigger private share and keeps everyone spill-free.

Run::

    python examples/ara_scenarios.py
"""

from repro.baseline import allocate_pu_baseline
from repro.core import allocate_programs
from repro.sim import outputs_match, run_reference, run_threads
from repro.suite import load

NAMES = ("md5", "md5", "fir2dim", "fir2dim")
NREG = 128
PACKETS = 24


def main() -> None:
    programs = [load(n) for n in NAMES]

    print("== baseline: fixed 32-register windows + Chaitin spilling ==")
    baseline = allocate_pu_baseline([p.copy() for p in programs], nreg=NREG)
    for name, res in zip(NAMES, baseline.results):
        print(
            f"  {name}: {res.colors_used} colors, "
            f"{len(set(res.spilled))} values spilled, "
            f"{res.spill_ops} spill load/stores inserted"
        )

    print("\n== balanced cross-thread allocation ==")
    shared = allocate_programs(programs, nreg=NREG)
    print(shared.summary())

    measure = PACKETS - 8
    run_spill = run_threads(
        baseline.programs,
        packets_per_thread=PACKETS,
        nreg=NREG,
        measure_iterations=measure,
    )
    run_share = run_threads(
        shared.programs,
        packets_per_thread=PACKETS,
        nreg=NREG,
        assignment=shared.assignment,
        measure_iterations=measure,
    )
    ref = run_reference(programs, packets_per_thread=8)
    ok_share = outputs_match(
        ref, run_threads(
            shared.programs,
            packets_per_thread=8,
            nreg=NREG,
            assignment=shared.assignment,
        )
    )
    print(f"\noutputs verified against reference: {ok_share}")

    print("\n== per-thread service cycles per packet ==")
    print(f"{'thread':10} {'spilling':>10} {'sharing':>10} {'change':>8}")
    for tid, name in enumerate(NAMES):
        a = run_spill.thread_busy_cpi(tid)
        b = run_share.thread_busy_cpi(tid)
        print(f"{name:10} {a:10.1f} {b:10.1f} {b / a - 1:8.1%}")


if __name__ == "__main__":
    main()
