"""A three-stage micro-engine pipeline (the paper's Figure 2.a).

Real IXP deployments chain PUs through memory-resident queues: a receive
stage validates and classifies, a processing stage does the heavy work, a
transmit stage rewrites headers and sends.  This example builds that
pipeline from benchmark kernels, register-allocates the processing stage
(two md5 threads plus two fir2dim threads sharing one PU), and pushes a
packet burst through all three stages.

Run::

    python examples/multi_pu_pipeline.py
"""

from repro.core import allocate_programs
from repro.sim.pipeline import PipelineStage, run_pipeline
from repro.suite import load


def main() -> None:
    rx = PipelineStage(
        [load("l2l3fwd_recv"), load("l2l3fwd_recv")], name="receive"
    )

    processing_programs = [
        load("md5"),
        load("md5"),
        load("fir2dim"),
        load("fir2dim"),
    ]
    alloc = allocate_programs(processing_programs, nreg=128)
    print("== processing-stage allocation ==")
    print(alloc.summary())
    work = PipelineStage(
        alloc.programs,
        nreg=128,
        assignment=alloc.assignment,
        name="process",
    )

    tx = PipelineStage([load("l2l3fwd_send")], name="transmit")

    result = run_pipeline([rx, work, tx], n_packets=24)

    print("\n== pipeline ==")
    print(f"{'stage':10} {'threads':>7} {'packets':>7} {'cycles':>8} {'util':>6}")
    for stage in result.stages:
        stats = stage.stats
        print(
            f"{stage.label:10} {len(stats.threads):7} "
            f"{stage.packets:7} {stats.cycles:8} "
            f"{stats.utilization():6.0%}"
        )
    bottleneck = result.bottleneck()
    print(
        f"\ndelivered {len(result.delivered())}/24 packets; "
        f"throughput limited by stage '{bottleneck.label}' "
        f"({bottleneck.cycles} cycles for the burst)"
    )


if __name__ == "__main__":
    main()
