"""The npc front end: write a kernel in C-like source, compile, allocate.

The paper's benchmarks were written in "IXP C" and compiled to
micro-engine assembly before register allocation.  This example does the
same: a token-bucket policer written in npc is compiled to npir, shown,
register-allocated alongside a second thread, and verified by execution.

Run::

    python examples/npc_frontend.py
"""

from repro import format_program, outputs_match, run_reference, run_threads
from repro.core import allocate_programs
from repro.npc import compile_source
from repro.npc.codegen import compile_to_text

POLICER = """
// token-bucket policer: refill 3 tokens per packet, charge by length.
tokens = 12;
while (1) {
    p = recv();
    if (p == 0) break;
    len = mem[p];
    tokens = tokens + 3;
    if (tokens > 64) tokens = 64;          // bucket cap
    if (tokens >= len) {
        tokens = tokens - len;
        verdict = 1;                        // conforming
    } else {
        verdict = 0;                        // mark / drop
    }
    mem[p + len + 1] = verdict;
    mem[p + len + 2] = tokens;
    send(p);
}
halt();
"""

MIRROR = """
// trivial second thread: echo the first payload word into scratch
while (1) {
    p = recv();
    if (p == 0) break;
    n = mem[p];
    mem[p + n + 1] = mem[p + 1];
    send(p);
}
halt();
"""


def main() -> None:
    print("== compiled npir for the policer ==")
    print(compile_to_text(POLICER))

    policer = compile_source(POLICER, "policer")
    mirror = compile_source(MIRROR, "mirror")
    outcome = allocate_programs([policer, mirror], nreg=16)
    print("== allocation ==")
    print(outcome.summary())

    ref = run_reference([policer, mirror], packets_per_thread=8)
    got = run_threads(
        outcome.programs,
        packets_per_thread=8,
        nreg=16,
        assignment=outcome.assignment,
    )
    assert outputs_match(ref, got)
    print("\ncompiled + allocated kernels verified against reference: yes")
    verdicts = [v for (a, v) in ref.stores[0]][::2]
    print(f"policer verdicts for 8 packets: {verdicts}")


if __name__ == "__main__":
    main()
