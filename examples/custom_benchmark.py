"""Bring your own kernel: write, analyse, squeeze, and verify a program.

Shows the analysis surface a compiler engineer would use when porting a
new packet task to the allocator: non-switch regions, boundary/internal
classification, the four register bounds, and the cost of squeezing the
kernel below its no-move requirement.

Run::

    python examples/custom_benchmark.py
"""

from repro import (
    analyze_thread,
    estimate_bounds,
    format_program,
    outputs_match,
    parse_program,
    run_reference,
    run_threads,
)
from repro.core import allocate_programs
from repro.core.intra import IntraAllocator

# A toy rate limiter: per-packet token-bucket check with the bucket kept
# in a register across packets.
KERNEL = """
    movi %tokens, 8
start:
    recv %buf
    beqi %buf, 0, done
    load %len, [%buf]
    addi %tokens, %tokens, 2      ; refill
    movi %verdict, 0
    blt %tokens, %len, emit       ; not enough tokens: drop
    sub %tokens, %tokens, %len
    movi %verdict, 1
emit:
    add %out, %buf, %len
    store %verdict, [%out + 1]
    store %tokens, [%out + 2]
    send %buf
    br start
done:
    halt
"""


def main() -> None:
    program = parse_program(KERNEL, "ratelimit")
    analysis = analyze_thread(program)

    print("== analysis ==")
    print(f"instructions: {len(program.instrs)}")
    print(f"context-switch boundaries: {len(analysis.nsr.csbs)}")
    print(f"non-switch regions: {analysis.nsr.n_regions}")
    print(f"boundary ranges: {sorted(str(r) for r in analysis.nsr.boundary)}")
    print(f"internal ranges: {sorted(str(r) for r in analysis.nsr.internal)}")

    bounds = estimate_bounds(analysis)
    print(f"\nbounds: {bounds}")

    print("\n== squeezing from MaxR down to MinR ==")
    for r in range(bounds.max_r, bounds.min_r - 1, -1):
        sr = max(r - bounds.max_pr, 0)
        pr = r - sr
        if pr < bounds.min_pr:
            pr, sr = bounds.min_pr, r - bounds.min_pr
        alloc = IntraAllocator(analysis, bounds)
        ctx = alloc.realize(pr, sr)
        print(f"  R={r} (PR={pr}, SR={sr}): {ctx.move_cost()} moves")

    print("\n== minimal allocation, verified by execution ==")
    outcome = allocate_programs([program], nreg=bounds.min_r)
    ref = run_reference([program], packets_per_thread=10)
    got = run_threads(
        outcome.programs,
        packets_per_thread=10,
        nreg=bounds.min_r,
        assignment=outcome.assignment,
    )
    assert outputs_match(ref, got)
    print(f"runs match with only {bounds.min_r} physical registers")
    print("\n== final code ==")
    print(format_program(outcome.programs[0]))


if __name__ == "__main__":
    main()
