"""The paper's Figure 3, reproduced end to end.

The running example of the paper: thread 1 keeps ``a`` live across a
context switch while ``b`` and ``c`` only live between switches; thread 2
has an internal value ``d``.  Register sharing lets ``b``/``c``/``d``
overlap in one shared register, and live-range splitting squeezes thread 1
from three registers to two with a single inserted move -- the total drops
from four registers (disjoint partitions) to three, then to two private
plus one shared.

Run::

    python examples/paper_example.py
"""

from repro import (
    allocate_programs,
    analyze_thread,
    estimate_bounds,
    format_program,
    parse_program,
)
from repro.core.intra import IntraAllocator

THREAD1 = """
    movi %a, 1
    ctx
    bnei %a, 0, L1
    movi %b, 2
    add %x, %a, %b
    movi %c, 3
    br L2
L1:
    movi %c, 4
    add %x, %a, %c
    movi %b, 5
L2:
    add %x, %b, %c
    load %y, [%x]
    halt
"""

THREAD2 = """
    movi %base, 64
    store %base, [%base]
    ctx
    movi %d, 7
    add %d, %d, %d
    store %d, [%base + 1]
    halt
"""


def main() -> None:
    t1 = parse_program(THREAD1, "thread1")
    t2 = parse_program(THREAD2, "thread2")

    print("== bounds (paper section 5) ==")
    an1 = analyze_thread(t1)
    b1 = estimate_bounds(an1)
    print(f"thread1: {b1}")
    print("  -> without moves the a-b-c triangle needs R = 3;")
    print("     only two values are ever co-live, so MinR = 2.")

    print("\n== live-range splitting (Figure 3.c) ==")
    alloc = IntraAllocator(an1, b1)
    ctx = alloc.realize(1, 1)
    print(
        f"realized PR=1, SR=1 (two registers total) with "
        f"{ctx.move_cost()} inserted move(s)"
    )

    print("\n== two-thread allocation (Figure 3.b) ==")
    outcome = allocate_programs([t1, t2], nreg=8)
    print(outcome.summary())
    print(
        "\nThe shared register holds thread1's b/c and thread2's d: all "
        "are dead whenever their thread is switched out, so no thread can "
        "ever observe another's value in it."
    )

    print("\n== allocated thread 1 ==")
    print(format_program(outcome.programs[0]))


if __name__ == "__main__":
    main()
