"""Symmetric allocation: four identical forwarding threads on one PU.

The common IXP deployment runs the *same* packet-processing task on all
four threads of a micro-engine (the paper's SRA problem).  This example
takes the ``l2l3fwd_recv`` benchmark, solves the symmetric allocation
exhaustively (``Nthd * PR + SR <= Nreg``), compares the register bill
against four standalone Chaitin allocations, and then runs the four
allocated threads over packet queues.

Run::

    python examples/sra_pipeline.py
"""

from repro import (
    analyze_thread,
    allocate_symmetric,
    load_benchmark,
    outputs_match,
    run_reference,
    run_threads,
    single_thread_register_count,
)
from repro.core import allocate_programs

NTHD = 4
NREG = 128


def main() -> None:
    program = load_benchmark("l2l3fwd_recv")
    single = single_thread_register_count(program)

    analysis = analyze_thread(program)
    sym = allocate_symmetric(analysis, nthd=NTHD, nreg=NREG)
    print("== symmetric register allocation (paper section 8) ==")
    print(f"benchmark: {program.name} ({len(program.instrs)} instructions)")
    print(f"standalone Chaitin allocation: {single} registers/thread")
    print(
        f"symmetric solution: PR={sym.pr} private/thread + SR={sym.sr} "
        f"shared = {sym.total_registers} registers for {NTHD} threads"
    )
    saving = 1 - sym.total_registers / (NTHD * single)
    print(
        f"vs {NTHD} disjoint partitions ({NTHD * single}): "
        f"{saving:.0%} fewer registers, {sym.move_cost} moves inserted"
    )

    print("\n== running the four allocated threads ==")
    programs = [program.copy() for _ in range(NTHD)]
    outcome = allocate_programs(programs, nreg=NREG)
    reference = run_reference(programs, packets_per_thread=16)
    allocated = run_threads(
        outcome.programs,
        packets_per_thread=16,
        assignment=outcome.assignment,
    )
    assert outputs_match(reference, allocated)
    print("outputs verified against the reference semantics: yes")
    print(f"wall cycles for 4 x 16 packets: {allocated.cycles()}")
    print(f"PU utilization: {allocated.stats.utilization():.0%}")
    for tid in range(NTHD):
        print(
            f"  thread {tid}: "
            f"{allocated.stats.threads[tid].cycles_per_iteration():.1f} "
            f"wall cycles/packet"
        )


if __name__ == "__main__":
    main()
