"""Engine throughput benchmark: reference interpreter vs fast engine.

Run with::

    pytest benchmarks/bench_perf.py --benchmark-only -s

Every suite kernel runs on both engines over identical packet
workloads; the table (also written to ``benchmarks/out/perf.txt`` and
``benchmarks/out/BENCH_perf.json``) reports wall-clock per kernel,
instructions per second, and the fast/reference speedup.  The run
aborts if any kernel's MachineStats/send-queues/store-traces differ
between engines -- speed never comes at the cost of fidelity.
"""

from benchmarks._util import publish
from repro.harness.perf import render_perf, run_perf, summarize_perf


def test_perf(benchmark):
    rows = benchmark.pedantic(
        lambda: run_perf(packets=64, repeats=3), rounds=1, iterations=1
    )
    assert len(rows) == 11
    for r in rows:
        assert r.stats_match, f"{r.name}: engines diverged"
    summary = summarize_perf(rows)
    # The CI smoke gate is 2x; the full suite on an unloaded machine
    # lands well above 5x in aggregate.
    assert summary["speedup"] >= 2.0
    publish(
        "perf",
        render_perf(rows),
        data={"rows": [r.to_dict() for r in rows], "summary": summary},
    )
