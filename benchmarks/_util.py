"""Shared helpers for the benchmark tree."""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def publish(name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
