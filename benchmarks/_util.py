"""Shared helpers for the benchmark tree."""

from __future__ import annotations

import pathlib
from typing import Any

OUT_DIR = pathlib.Path(__file__).parent / "out"


def publish(name: str, text: str, data: Any = None) -> None:
    """Print a reproduced artifact and persist it under benchmarks/out/.

    ``data``, when given, is additionally written as machine-readable
    ``benchmarks/out/BENCH_<name>.json`` (see
    :func:`repro.obs.export.bench_snapshot`) so each benchmark run leaves
    a diffable trajectory snapshot next to the text artifact.
    """
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        from repro.obs.export import bench_snapshot

        bench_snapshot(name, data, OUT_DIR)
    print()
    print(text)
