"""Shared helpers for the benchmark tree."""

from __future__ import annotations

import pathlib
import time
from typing import Any

OUT_DIR = pathlib.Path(__file__).parent / "out"


def publish(name: str, text: str, data: Any = None) -> None:
    """Print a reproduced artifact and persist it under benchmarks/out/.

    ``data``, when given, is additionally written as machine-readable
    ``benchmarks/out/BENCH_<name>.json`` (see
    :func:`repro.obs.export.bench_snapshot`) so each benchmark run leaves
    a diffable trajectory snapshot next to the text artifact -- and its
    watched metrics are appended as one row to the run ledger
    (``benchmarks/out/ledger.jsonl``, git-ignored), feeding the
    ``repro bench trend`` regression sentinel.
    """
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        from repro.obs.export import bench_snapshot, to_jsonable

        bench_snapshot(name, data, OUT_DIR)
        _ledger_append(name, to_jsonable(data))
    print()
    print(text)


def _ledger_append(name: str, data: Any) -> None:
    """Append this run's watched metrics to the run ledger (best effort)."""
    from repro.harness.trend import watched_from_bench
    from repro.obs import ledger

    metrics = watched_from_bench(name, data)
    if not metrics:
        return
    row = ledger.make_row(name, metrics, ts=time.time())
    ledger.append(row, OUT_DIR / "ledger.jsonl")
