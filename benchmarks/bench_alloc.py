"""Allocation-pipeline throughput benchmark: cold vs warm vs parallel.

Run with::

    pytest benchmarks/bench_alloc.py --benchmark-only -s

Every suite kernel is allocated at ``nthd=4`` identical threads under
budgets spanning its own bounds (ceiling / midpoint / near-floor, see
:mod:`repro.harness.allocperf`), three times over: with a cold analysis
cache, with the warmed cache, and through the parallel sweep harness.
The table (also written to ``benchmarks/out/alloc.txt`` and
``benchmarks/out/BENCH_alloc.json``) reports the grid and the two
speedups.  The run aborts if any pass produces a different allocation
summary -- speed never comes at the cost of fidelity.
"""

from benchmarks._util import publish
from repro.harness.allocperf import render_alloc, run_alloc_bench


def test_alloc(benchmark):
    report = benchmark.pedantic(
        lambda: run_alloc_bench(jobs=2), rounds=1, iterations=1
    )
    assert report.identical, "allocation summaries diverged across passes"
    assert len(report.points) >= len(report.kernels)
    # The CI smoke gate (3 kernels) is 2x warm; the full suite on an
    # unloaded machine lands well above 5x.
    assert report.warm_speedup >= 3.0
    assert report.parallel_speedup >= 1.5
    publish("alloc", render_alloc(report), data=report.to_dict())
