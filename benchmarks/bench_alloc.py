"""Allocation-pipeline throughput benchmark: cold/warm/parallel/descent.

Run with::

    pytest benchmarks/bench_alloc.py --benchmark-only -s

Every suite kernel is allocated at ``nthd=4`` identical threads under
budgets spanning its own bounds (ceiling / midpoint / near-floor, see
:mod:`repro.harness.allocperf`), three times over: with a cold analysis
cache, with the warmed cache, and through the parallel sweep harness.
A fourth, descent, section answers each kernel's multi-budget ladder
(feasibility probes + one allocation per distinct reachable budget)
from ONE shared Figure-8 descent, against the pre-descent
one-fresh-allocation-per-query baseline.  The table (also written to
``benchmarks/out/alloc.txt`` and ``benchmarks/out/BENCH_alloc.json``)
reports the grid and all the speedups.  The run aborts if any pass --
including the descent passes -- produces a different allocation
summary: speed never comes at the cost of fidelity.
"""

from benchmarks._util import publish
from repro.harness.allocperf import render_alloc, run_alloc_bench


def test_alloc(benchmark):
    report = benchmark.pedantic(
        lambda: run_alloc_bench(jobs=2), rounds=1, iterations=1
    )
    assert report.identical, "allocation summaries diverged across passes"
    assert report.descent_identical, (
        "shared-descent summaries diverged from the per-budget baseline"
    )
    assert len(report.points) >= len(report.kernels)
    # These ratios compressed when the dense-analysis kernels made the
    # cold pass ~2.7x faster: the warm win is capped by how much of a
    # point is analysis, and on the full suite (allocation-heavy
    # kernels included) that now lands near 2x, not the pre-dense 6.7x.
    # Gate at collapse-detector levels; the trend sentinel (and the CI
    # smoke job's 2x gate on the analysis-heavy crc/md5/url subset)
    # watches the magnitude.
    assert report.warm_speedup >= 1.5
    assert report.parallel_speedup >= 1.2
    # One shared descent vs a fresh allocation per budget query; the
    # full-suite ladder lands around 6x locally, gate at 3x.
    assert report.descent_speedup >= 3.0
    publish("alloc", render_alloc(report), data=report.to_dict())
