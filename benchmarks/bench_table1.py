"""Regenerate paper Table 1 (benchmark application properties).

Run with::

    pytest benchmarks/bench_table1.py --benchmark-only -s

The rendered table is also written to ``benchmarks/out/table1.txt``.
"""

from benchmarks._util import publish
from repro.harness.table1 import render_table1, run_table1


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table1(packets=8), rounds=1, iterations=1
    )
    assert len(rows) == 11
    for r in rows:
        assert r.reg_p_csb_max <= r.max_pr <= r.max_r
    publish("table1", render_table1(rows), data=[r.to_dict() for r in rows])
