"""Regenerate paper Table 2 (move insertion in the extreme case).

Every benchmark is forced to its minimal register allocation
(``PR = RegPCSBmax``, ``R = RegPmax``); the splitting allocator's move
count is reported as a fraction of code size.  Paper shape: mostly within
10% overhead -- far cheaper than spilling.

Run with::

    pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from benchmarks._util import publish
from repro.harness.table2 import render_table2, run_table2


def test_table2(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    assert len(rows) == 11
    overheads = [r.overhead for r in rows]
    # Shape check: the typical kernel needs few or no moves.
    assert sorted(overheads)[len(overheads) // 2] <= 0.10
    publish("table2", render_table2(rows), data=[r.to_dict() for r in rows])
