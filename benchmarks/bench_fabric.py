"""Sweep-fabric throughput benchmark: serial vs pool vs durable fabric.

Run with::

    pytest benchmarks/bench_fabric.py --benchmark-only -s

The suite x budget grid (every kernel at its bounds-derived ceiling /
midpoint / near-floor budgets, two-thread PUs) is allocated three ways:
serially on a cold cache, through the ephemeral process pool
(``sweep_map --jobs``), and through the content-addressed fabric
(:mod:`repro.fabric`) -- claims, results spool, telemetry spooling, and
the order-preserving merge all inside the timed window.  The table
(also ``benchmarks/out/fabric.txt`` / ``BENCH_fabric.json``) feeds the
``fabric.speedup`` watched metric to the trend sentinel.  The run
aborts if any pass produces a different summary list: durability never
comes at the cost of fidelity.
"""

from benchmarks._util import publish
from repro.harness.fabricperf import render_fabric, run_fabric_bench


def test_fabric(benchmark):
    report = benchmark.pedantic(
        lambda: run_fabric_bench(workers=4), rounds=1, iterations=1
    )
    assert report.identical, "fabric summaries diverged across passes"
    assert len(report.points) >= len(report.kernels)
    # The ISSUE gates: the fabric must at least double the cold serial
    # wall-clock at 4 workers, and may cost at most 10% over the
    # ephemeral pool it replaces.
    assert report.fabric_speedup >= 2.0, (
        f"fabric only {report.fabric_speedup:.2f}x vs serial"
    )
    assert report.pool_ratio <= 1.10, (
        f"fabric is {report.pool_ratio:.2f}x the pool's wall-clock"
    )
    publish("fabric", render_fabric(report), data=report.to_dict())
