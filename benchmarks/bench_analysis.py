"""Cold-analysis throughput benchmark: dense bitset kernels vs reference.

Run with::

    pytest benchmarks/bench_analysis.py --benchmark-only -s

Every suite kernel is analyzed under both implementations (best of 3),
then the full allocation grid runs end-to-end with a cold cache under
each.  The table (also written to ``benchmarks/out/analysis.txt`` and
``benchmarks/out/BENCH_analysis.json``) reports per-kernel analysis
timings and the two aggregate speedups.  The run aborts unless the
per-kernel analysis digests and the end-to-end allocation summaries are
identical across implementations -- speed never comes at the cost of
fidelity.
"""

from benchmarks._util import publish
from repro.harness.analysisperf import render_analysis, run_analysis_bench


def test_analysis(benchmark):
    report = benchmark.pedantic(
        lambda: run_analysis_bench(), rounds=1, iterations=1
    )
    assert report.digests_identical, "analysis digests diverged"
    assert report.e2e_identical, "cold allocation summaries diverged"
    # The CI smoke gate (3 kernels) is 2x; the full suite on an unloaded
    # machine lands near 5x for the analysis stage.
    assert report.analysis_speedup >= 3.0
    assert report.e2e_speedup >= 1.5
    publish("analysis", render_analysis(report), data=report.to_dict())
