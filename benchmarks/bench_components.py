"""Micro-benchmarks of the allocator's building blocks.

These time the analysis pipeline on the largest benchmark (md5) so
regressions in the hot paths (liveness, interference construction, the
region merge, pointwise rebuild) show up as timing changes.

Run with::

    pytest benchmarks/bench_components.py --benchmark-only
"""

import pytest

from repro.cfg.liveness import compute_liveness
from repro.cfg.nsr import compute_nsr
from repro.cfg.webs import rename_webs
from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.intra import IntraAllocator
from repro.igraph.interference import build_interference
from repro.igraph.merge import merge_region_colorings
from repro.suite.registry import load


@pytest.fixture(scope="module")
def md5_program():
    return rename_webs(load("md5"))


@pytest.fixture(scope="module")
def md5_analysis():
    return analyze_thread(load("md5"))


def test_bench_liveness(benchmark, md5_program):
    benchmark(compute_liveness, md5_program)


def test_bench_nsr(benchmark, md5_program):
    lv = compute_liveness(md5_program)
    benchmark(compute_nsr, lv)


def test_bench_interference(benchmark, md5_program):
    lv = compute_liveness(md5_program)
    nsr = compute_nsr(lv)
    benchmark(build_interference, lv, nsr)


def test_bench_region_merge(benchmark, md5_analysis):
    benchmark(merge_region_colorings, md5_analysis.graphs)


def test_bench_full_analysis(benchmark):
    benchmark(lambda: analyze_thread(load("md5")))


def test_bench_bounds(benchmark, md5_analysis):
    benchmark(estimate_bounds, md5_analysis)


def test_bench_pointwise_rebuild(benchmark, md5_analysis):
    bounds = estimate_bounds(md5_analysis)

    def rebuild():
        alloc = IntraAllocator(md5_analysis, bounds)
        return alloc.pointwise(bounds.min_pr, bounds.min_r - bounds.min_pr)

    benchmark.pedantic(rebuild, rounds=3, iterations=1)
