"""Benchmark-tree configuration.

Each ``bench_*`` module regenerates one table or figure of the paper under
pytest-benchmark and prints the rendered rows once, so

    pytest benchmarks/ --benchmark-only -s

both times the experiment pipelines and shows the reproduced artifacts.
"""
