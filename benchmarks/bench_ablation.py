"""Ablation benches for the design choices DESIGN.md calls out.

1. **Register-budget sweep** -- squeeze a mixed PU from a generous file
   down toward the lower bounds, showing how the allocator trades moves
   for registers (the mechanism behind the paper's "slight slowdown of
   non-critical threads").
2. **Cost-probing vs round-robin** -- the greedy Figure-8 loop probes the
   move cost of every reduction; the ablation reduces blindly.  Comparing
   total inserted moves shows what the probing buys.

Run with::

    pytest benchmarks/bench_ablation.py --benchmark-only -s
"""

import os

from benchmarks._util import publish
from repro.core.cache import get_cache
from repro.core.pipeline import allocate_programs
from repro.harness.report import text_table
from repro.harness.sweep import sweep_map
from repro.sim.run import outputs_match, run_reference, run_threads
from repro.suite.registry import load

MIX = ("frag", "drr", "url", "ipchains")

#: Worker processes for the budget sweep (the points are independent).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def _floor(programs):
    bounds = [get_cache().bounds(p) for p in programs]
    return sum(b.min_pr for b in bounds) + max(
        b.min_r - b.min_pr for b in bounds
    )


def _sweep_point(nreg):
    """One budget point: allocate the mix, verify outputs, report the row."""
    programs = [load(n) for n in MIX]
    out = allocate_programs([load(n) for n in MIX], nreg=nreg)
    ref = run_reference(programs, packets_per_thread=8)
    got = run_threads(
        out.programs,
        packets_per_thread=8,
        nreg=max(nreg, 8),
        assignment=out.assignment,
    )
    assert outputs_match(ref, got)
    return (
        nreg,
        out.total_registers,
        out.sgr,
        out.total_moves,
        " ".join(str(t.pr) for t in out.inter.threads),
    )


def sweep_budget(jobs=JOBS):
    floor = _floor([load(n) for n in MIX])
    generous = 128
    budgets = [
        nreg
        for nreg in sorted({generous, 40, 36, 34, 32, floor}, reverse=True)
        if nreg >= floor
    ]
    rows = sweep_map(_sweep_point, budgets, jobs=jobs, label="ablation")
    return floor, rows


def test_budget_sweep(benchmark):
    floor, rows = benchmark.pedantic(sweep_budget, rounds=1, iterations=1)
    # Moves must be monotone non-decreasing as the budget shrinks.
    moves = [r[3] for r in rows]
    assert moves == sorted(moves)
    assert moves[0] == 0
    assert moves[-1] > 0  # the floor requires splitting
    table = text_table(
        ["Nreg", "used", "SGR", "moves", "PR per thread"], rows
    )
    publish(
        "ablation_budget_sweep",
        f"Budget sweep over {'+'.join(MIX)} (floor={floor})\n" + table,
        data={
            "mix": list(MIX),
            "floor": floor,
            "rows": [
                {
                    "nreg": nreg,
                    "used": used,
                    "sgr": sgr,
                    "moves": moves,
                    "pr_per_thread": [int(x) for x in prs.split()],
                }
                for nreg, used, sgr, moves, prs in rows
            ],
        },
    )


def compare_policies():
    floor = _floor([load(n) for n in MIX])
    nreg = floor  # the tightest feasible budget: every reduction is forced
    greedy = allocate_programs([load(n) for n in MIX], nreg=nreg)
    blind = allocate_programs(
        [load(n) for n in MIX], nreg=nreg, policy="round_robin"
    )
    return nreg, greedy.total_moves, blind.total_moves


def test_policy_ablation(benchmark):
    nreg, greedy_moves, blind_moves = benchmark.pedantic(
        compare_policies, rounds=1, iterations=1
    )
    # The cost-probing greedy must never be worse than blind reduction.
    assert greedy_moves <= blind_moves
    publish(
        "ablation_policy",
        text_table(
            ["Nreg", "greedy moves", "round-robin moves"],
            [(nreg, greedy_moves, blind_moves)],
        ),
        data={
            "mix": list(MIX),
            "nreg": nreg,
            "greedy_moves": greedy_moves,
            "round_robin_moves": blind_moves,
        },
    )
