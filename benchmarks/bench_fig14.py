"""Regenerate paper Figure 14 (SRA register requirements, zero-move mode).

The paper's headline: with four identical threads per PU, the balanced
private/shared split needs substantially fewer registers than four
standalone Chaitin allocations (their average saving: 24%; the shape to
check is positive savings everywhere, largest for internal-heavy kernels).

Run with::

    pytest benchmarks/bench_fig14.py --benchmark-only -s
"""

from benchmarks._util import publish
from repro.harness.fig14 import average_saving, render_fig14, run_fig14


def test_fig14(benchmark):
    rows = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    assert len(rows) == 11
    for r in rows:
        # Sharing never needs more registers than disjoint partitions.
        assert r.multithread_total <= r.baseline_total
    assert average_saving(rows) > 0.05
    publish("fig14", render_fig14(rows), data=[r.to_dict() for r in rows])
