"""Batched-engine benchmark: N scalar fast runs vs one lockstep batch.

Run with::

    pytest benchmarks/bench_batch.py --benchmark-only -s

Every suite kernel runs a 256-seed sweep twice -- as 256 independent
fast-engine runs and as one 256-lane :class:`~repro.sim.batch
.BatchMachine` execution -- and the table (also written to
``benchmarks/out/batch.txt`` and ``benchmarks/out/BENCH_batch.json``)
reports the per-kernel and aggregate speedup.  The run aborts if any
lane's MachineStats/send-queues/store-traces/memory differ from the
scalar run with the same seed -- vectorization never comes at the cost
of fidelity.
"""

from benchmarks._util import publish
from repro.harness.batchperf import (
    render_batchperf,
    run_batchperf,
    summarize_batchperf,
)


def test_batch(benchmark):
    rows = benchmark.pedantic(
        lambda: run_batchperf(lanes=256, packets=16), rounds=1, iterations=1
    )
    assert len(rows) == 11
    for r in rows:
        assert r.lanes_identical, f"{r.name}: lanes diverged"
    summary = summarize_batchperf(rows)
    # The CI smoke gate is 2x on three kernels at 64 lanes; the full
    # suite at 256 lanes on an unloaded machine lands above 3x aggregate
    # (ALU-dense kernels 5-10x, CSB-bound kernels 1-2x).
    assert summary["speedup"] >= 3.0
    publish(
        "batch",
        render_batchperf(rows),
        data={"rows": [r.to_dict() for r in rows], "summary": summary},
    )
