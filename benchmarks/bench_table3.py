"""Regenerate paper Table 3 (the three ARA scenarios).

Each scenario compares the fixed-32-register-window spilling baseline
against the inter-thread sharing allocator on the cycle-level simulator.
Paper shape: the register-hungry threads speed up by double digits while
donor threads change only marginally; all runs are verified against the
virtual-register reference semantics.

Run with::

    pytest benchmarks/bench_table3.py --benchmark-only -s
"""

import pytest

from benchmarks._util import publish
from repro.harness.table3 import SCENARIOS, render_table3, run_scenario

#: The register-hungry thread names per scenario.
CRITICAL = {
    "md5+fir2dim": {"md5"},
    "l2l3fwd+md5": {"md5"},
    "wraps+fir2dim+frag": {"wraps_recv", "wraps_send"},
}


@pytest.mark.parametrize("label", list(SCENARIOS))
def test_table3_scenario(benchmark, label):
    names = SCENARIOS[label]
    sc = benchmark.pedantic(
        lambda: run_scenario(label, names, packets=40),
        rounds=1,
        iterations=1,
    )
    assert sc.verified, "allocated runs diverged from reference semantics"
    for t in sc.threads:
        if t.name in CRITICAL[label]:
            assert t.cycle_change < -0.03, (
                f"{t.name} should speed up clearly with sharing"
            )
        else:
            assert abs(t.cycle_change) < 0.08, (
                f"donor {t.name} should change only marginally"
            )
    publish(
        f"table3_{label.replace('+', '_')}",
        render_table3([sc]),
        data=sc.to_dict(),
    )
