"""Legacy setup shim: this offline environment lacks the `wheel` package,
so PEP 660 editable installs fail; `python setup.py develop` still works."""
from setuptools import setup

setup()
