"""Recursive-descent parser for npc.

Expression grammar (loosest first; all left-associative)::

    or      := and  ("||" and)*
    and     := bitor ("&&" bitor)*
    bitor   := bitxor ("|" bitxor)*
    bitxor  := bitand ("^" bitand)*
    bitand  := equality ("&" equality)*
    equality:= relational (("==" | "!=") relational)*
    relational := shift (("<" | "<=" | ">" | ">=") shift)*
    shift   := additive (("<<" | ">>") additive)*
    additive:= term (("+" | "-") term)*
    term    := unary ("*" unary)*
    unary   := ("-" | "~" | "!") unary | primary
    primary := NUMBER | NAME | "recv" "(" ")" | "mem" "[" or "]"
             | "(" or ")"

Statements::

    stmt := "var" NAME ("," NAME)* ";"              -- optional declaration
          | NAME "=" or ";"
          | "mem" "[" or "]" "=" or ";"
          | "send" "(" or ")" ";"
          | "ctx" "(" ")" ";"
          | "halt" "(" ")" ";"
          | "if" "(" or ")" block ("else" (block | if-stmt))?
          | "while" "(" or ")" block
          | "break" ";" | "continue" ";"
          | or ";"                                  -- expression statement
    block := "{" stmt* "}"
"""

from __future__ import annotations

from typing import List, Tuple

from repro.npc import ast
from repro.npc.lexer import NpcSyntaxError, Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.declared: List[str] = []

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def check(self, kind: str, text: str = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def accept(self, kind: str, text: str = None) -> bool:
        if self.check(kind, text):
            self.advance()
            return True
        return False

    def expect(self, kind: str, text: str = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise NpcSyntaxError(
                f"expected {want!r}, got {self.cur.text!r}", self.cur.line
            )
        return self.advance()

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    _LEVELS: Tuple[Tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*",),
    )

    def expression(self, level: int = 0) -> ast.Expr:
        if level == len(self._LEVELS):
            return self.unary()
        ops = self._LEVELS[level]
        node = self.expression(level + 1)
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance().text
            right = self.expression(level + 1)
            node = ast.Binary(op, node, right)
        return node

    def unary(self) -> ast.Expr:
        if self.cur.kind == "op" and self.cur.text in ("-", "~", "!"):
            op = self.advance().text
            return ast.Unary(op, self.unary())
        return self.primary()

    def primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "number":
            self.advance()
            return ast.Number(int(tok.text, 0))
        if tok.kind == "name":
            self.advance()
            return ast.Name(tok.text)
        if tok.kind == "keyword" and tok.text == "recv":
            self.advance()
            self.expect("op", "(")
            self.expect("op", ")")
            return ast.Recv()
        if tok.kind == "keyword" and tok.text == "mem":
            self.advance()
            self.expect("op", "[")
            addr = self.expression()
            self.expect("op", "]")
            return ast.MemRead(addr)
        if self.accept("op", "("):
            node = self.expression()
            self.expect("op", ")")
            return node
        raise NpcSyntaxError(
            f"expected an expression, got {tok.text!r}", tok.line
        )

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def block(self) -> Tuple[ast.Stmt, ...]:
        """A braced statement list, or (C-style) a single statement."""
        if not self.check("op", "{"):
            return (self.statement(),)
        self.expect("op", "{")
        body: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            body.append(self.statement())
        return tuple(body)

    def statement(self) -> ast.Stmt:
        tok = self.cur
        line = tok.line
        if tok.kind == "keyword":
            if tok.text == "var":
                self.advance()
                while True:
                    name = self.expect("name")
                    self.declared.append(name.text)
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
                return self.statement()  # declarations produce no code
            if tok.text == "if":
                self.advance()
                self.expect("op", "(")
                cond = self.expression()
                self.expect("op", ")")
                then_body = self.block()
                else_body: Tuple[ast.Stmt, ...] = ()
                if self.accept("keyword", "else"):
                    if self.check("keyword", "if"):
                        else_body = (self.statement(),)
                    else:
                        else_body = self.block()
                return ast.If(cond, then_body, else_body, line)
            if tok.text == "while":
                self.advance()
                self.expect("op", "(")
                cond = self.expression()
                self.expect("op", ")")
                return ast.While(cond, self.block(), line)
            if tok.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line)
            if tok.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line)
            if tok.text == "send":
                self.advance()
                self.expect("op", "(")
                value = self.expression()
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.Send(value, line)
            if tok.text == "ctx":
                self.advance()
                self.expect("op", "(")
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.CtxSwitch(line)
            if tok.text == "halt":
                self.advance()
                self.expect("op", "(")
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.Halt(line)
            if tok.text == "mem":
                self.advance()
                self.expect("op", "[")
                addr = self.expression()
                self.expect("op", "]")
                self.expect("op", "=")
                value = self.expression()
                self.expect("op", ";")
                return ast.MemWrite(addr, value, line)
            if tok.text == "recv":
                expr = self.expression()
                self.expect("op", ";")
                return ast.ExprStmt(expr, line)
        if tok.kind == "name" and self.tokens[self.pos + 1].text == "=":
            name = self.advance().text
            self.expect("op", "=")
            value = self.expression()
            self.expect("op", ";")
            return ast.Assign(name, value, line)
        expr = self.expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, line)

    def program(self) -> ast.ProgramAst:
        body: List[ast.Stmt] = []
        while not self.check("eof"):
            body.append(self.statement())
        return ast.ProgramAst(tuple(body), tuple(self.declared))


def parse(source: str) -> ast.ProgramAst:
    """Parse npc source text into an AST."""
    return _Parser(tokenize(source)).program()
