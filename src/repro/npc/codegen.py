"""npir code generation for npc.

The generator emits npir assembly *text* and reparses it: the existing
parser/validator double-check everything the front end produces, and the
emitted listing is directly inspectable (``compile_source(...,
return_text=True)``).

Conventions:

* user variables become ``%<name>``; compiler temporaries ``%.tN``;
  labels ``.LN`` -- none of which collide with user identifiers;
* conditions compile to *branches*, not materialized booleans, with
  short-circuit ``&&`` / ``||``; comparisons used as values synthesize
  0/1;
* ``mem[base + constant]`` folds the constant into the load/store offset;
* a ``halt`` is appended when control can reach the end of the program.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.ir.parser import parse_program
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.npc import ast
from repro.npc.lexer import NpcSyntaxError
from repro.npc.parser import parse

#: Binary operators with a direct reg-reg / reg-imm ALU opcode.
_ALU = {
    "+": ("add", "addi"),
    "-": ("sub", "subi"),
    "*": ("mul", "muli"),
    "&": ("and", "andi"),
    "|": ("or", "ori"),
    "^": ("xor", "xori"),
    "<<": ("shl", "shli"),
    ">>": ("shr", "shri"),
}

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


class _Codegen:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.n_temp = 0
        self.n_label = 0
        self.loop_stack: List[Tuple[str, str]] = []  # (continue, break)

    # ------------------------------------------------------------------
    # Emission helpers.
    # ------------------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def fresh_temp(self) -> str:
        self.n_temp += 1
        return f"%.t{self.n_temp}"

    def fresh_label(self) -> str:
        self.n_label += 1
        return f".L{self.n_label}"

    # ------------------------------------------------------------------
    # Expressions -> a register holding the value.
    # ------------------------------------------------------------------
    def expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.Number):
            t = self.fresh_temp()
            self.emit(f"movi {t}, {e.value & 0xFFFFFFFF}")
            return t
        if isinstance(e, ast.Name):
            return f"%{e.ident}"
        if isinstance(e, ast.Recv):
            t = self.fresh_temp()
            self.emit(f"recv {t}")
            return t
        if isinstance(e, ast.MemRead):
            base, off = self._address(e.addr)
            t = self.fresh_temp()
            self.emit(f"load {t}, [{base} + {off}]")
            return t
        if isinstance(e, ast.Unary):
            return self._unary(e)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        raise NpcSyntaxError(f"cannot generate expression {e!r}", 0)

    def _unary(self, e: ast.Unary) -> str:
        if e.op == "!":
            # !x == (x == 0), materialized as 0/1.
            return self._bool_value(
                ast.Binary("==", e.operand, ast.Number(0))
            )
        src = self.expr(e.operand)
        t = self.fresh_temp()
        if e.op == "~":
            self.emit(f"xori {t}, {src}, 0xFFFFFFFF")
        elif e.op == "-":
            self.emit(f"xori {t}, {src}, 0xFFFFFFFF")
            self.emit(f"addi {t}, {t}, 1")
        else:  # pragma: no cover - parser limits ops
            raise NpcSyntaxError(f"unknown unary operator {e.op}", 0)
        return t

    def _binary(self, e: ast.Binary) -> str:
        if e.op in _ALU:
            reg_op, imm_op = _ALU[e.op]
            left = self.expr(e.left)
            t = self.fresh_temp()
            if isinstance(e.right, ast.Number):
                self.emit(f"{imm_op} {t}, {left}, {e.right.value & 0xFFFFFFFF}")
            else:
                right = self.expr(e.right)
                self.emit(f"{reg_op} {t}, {left}, {right}")
            return t
        if e.op in _COMPARISONS or e.op in ("&&", "||"):
            return self._bool_value(e)
        raise NpcSyntaxError(f"unknown operator {e.op}", 0)

    def _bool_value(self, e: ast.Expr) -> str:
        """Materialize a condition as 0/1 via branches."""
        t = self.fresh_temp()
        done = self.fresh_label()
        self.emit(f"movi {t}, 1")
        fail = self.fresh_label()
        self.branch_if_false(e, fail)
        self.emit(f"br {done}")
        self.label(fail)
        self.emit(f"movi {t}, 0")
        self.label(done)
        self.emit("nop")
        return t

    def _address(self, addr: ast.Expr) -> Tuple[str, int]:
        """Split an address into (base register, constant offset)."""
        if isinstance(addr, ast.Binary) and addr.op == "+":
            if isinstance(addr.right, ast.Number):
                base, off = self._address(addr.left)
                return base, off + addr.right.value
            if isinstance(addr.left, ast.Number):
                base, off = self._address(addr.right)
                return base, off + addr.left.value
        if isinstance(addr, ast.Binary) and addr.op == "-" and isinstance(
            addr.right, ast.Number
        ):
            base, off = self._address(addr.left)
            return base, off - addr.right.value
        return self.expr(addr), 0

    # ------------------------------------------------------------------
    # Conditions -> branches.
    # ------------------------------------------------------------------
    def branch_if_false(self, cond: ast.Expr, target: str) -> None:
        """Jump to ``target`` when ``cond`` is false (short-circuiting)."""
        if isinstance(cond, ast.Number):
            if cond.value == 0:
                self.emit(f"br {target}")
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self.branch_if_true(cond.operand, target)
            return
        if isinstance(cond, ast.Binary):
            if cond.op == "&&":
                self.branch_if_false(cond.left, target)
                self.branch_if_false(cond.right, target)
                return
            if cond.op == "||":
                keep = self.fresh_label()
                self.branch_if_true(cond.left, keep)
                self.branch_if_false(cond.right, target)
                self.label(keep)
                self.emit("nop")
                return
            if cond.op in _COMPARISONS:
                self._compare_branch(cond, target, when_true=False)
                return
        reg = self.expr(cond)
        self.emit(f"beqi {reg}, 0, {target}")

    def branch_if_true(self, cond: ast.Expr, target: str) -> None:
        if isinstance(cond, ast.Number):
            if cond.value != 0:
                self.emit(f"br {target}")
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self.branch_if_false(cond.operand, target)
            return
        if isinstance(cond, ast.Binary):
            if cond.op == "&&":
                out = self.fresh_label()
                self.branch_if_false(cond.left, out)
                self.branch_if_true(cond.right, target)
                self.label(out)
                self.emit("nop")
                return
            if cond.op == "||":
                self.branch_if_true(cond.left, target)
                self.branch_if_true(cond.right, target)
                return
            if cond.op in _COMPARISONS:
                self._compare_branch(cond, target, when_true=True)
                return
        reg = self.expr(cond)
        self.emit(f"bnei {reg}, 0, {target}")

    def _compare_branch(
        self, cond: ast.Binary, target: str, when_true: bool
    ) -> None:
        """Emit a single conditional branch for an unsigned comparison."""
        op = cond.op
        left, right = cond.left, cond.right
        # Normalize > and <= by swapping operands.
        if op == ">":
            op, left, right = "<", right, left
        elif op == "<=":
            op, left, right = ">=", right, left
        if not when_true:
            op = {"==": "!=", "!=": "==", "<": ">=", ">=": "<"}[op]
        mnems = {"==": "beq", "!=": "bne", "<": "blt", ">=": "bge"}
        lreg = self.expr(left)
        if isinstance(right, ast.Number):
            self.emit(
                f"{mnems[op]}i {lreg}, {right.value & 0xFFFFFFFF}, {target}"
            )
        else:
            rreg = self.expr(right)
            self.emit(f"{mnems[op]} {lreg}, {rreg}, {target}")

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Assign):
            value = self.expr(s.value)
            self.emit(f"mov %{s.target}, {value}")
        elif isinstance(s, ast.MemWrite):
            base, off = self._address(s.addr)
            value = self.expr(s.value)
            self.emit(f"store {value}, [{base} + {off}]")
        elif isinstance(s, ast.Send):
            value = self.expr(s.value)
            self.emit(f"send {value}")
        elif isinstance(s, ast.CtxSwitch):
            self.emit("ctx")
        elif isinstance(s, ast.Halt):
            self.emit("halt")
        elif isinstance(s, ast.If):
            self._if(s)
        elif isinstance(s, ast.While):
            self._while(s)
        elif isinstance(s, ast.Break):
            if not self.loop_stack:
                raise NpcSyntaxError("break outside a loop", s.line)
            self.emit(f"br {self.loop_stack[-1][1]}")
        elif isinstance(s, ast.Continue):
            if not self.loop_stack:
                raise NpcSyntaxError("continue outside a loop", s.line)
            self.emit(f"br {self.loop_stack[-1][0]}")
        elif isinstance(s, ast.ExprStmt):
            self.expr(s.value)  # evaluated for effect
        else:  # pragma: no cover - parser limits statements
            raise NpcSyntaxError(f"cannot generate statement {s!r}", 0)

    def _if(self, s: ast.If) -> None:
        otherwise = self.fresh_label()
        self.branch_if_false(s.cond, otherwise)
        for inner in s.then_body:
            self.stmt(inner)
        if s.else_body:
            done = self.fresh_label()
            self.emit(f"br {done}")
            self.label(otherwise)
            for inner in s.else_body:
                self.stmt(inner)
            self.label(done)
            self.emit("nop")
        else:
            self.label(otherwise)
            self.emit("nop")

    def _while(self, s: ast.While) -> None:
        head = self.fresh_label()
        out = self.fresh_label()
        self.label(head)
        self.emit("nop")
        self.branch_if_false(s.cond, out)
        self.loop_stack.append((head, out))
        for inner in s.body:
            self.stmt(inner)
        self.loop_stack.pop()
        self.emit(f"br {head}")
        self.label(out)
        self.emit("nop")

    def run(self, program: ast.ProgramAst) -> str:
        for s in program.body:
            self.stmt(s)
        self.emit("halt")
        return "\n".join(self.lines) + "\n"


def compile_to_text(source: str) -> str:
    """Compile npc source to an npir assembly listing."""
    return _Codegen().run(parse(source))


def compile_source(
    source: str,
    name: str = "npc",
    check_init: bool = True,
    optimize: bool = True,
) -> Program:
    """Compile npc source to a validated virtual-register npir program.

    ``optimize`` (default) runs constant folding, copy propagation and
    dead-code elimination over the generated code; the raw listing is
    available via :func:`compile_to_text`.
    """
    text = compile_to_text(source)
    program = parse_program(text, name)
    validate_program(program, check_init=check_init)
    if optimize:
        from repro.opt import optimize as _optimize

        program = _optimize(program)
        validate_program(program, check_init=check_init)
    return program
