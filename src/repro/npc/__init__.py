"""npc: the IXP-C-like front end.

The paper's benchmarks were "rewritten in IXP C code (a subset of
standard C)" and compiled down to micro-engine assembly; npc is that
layer for this repository.  A small imperative language -- unsigned
32-bit variables, C expression syntax, ``if``/``while``/``break``/
``continue``, and packet intrinsics -- compiles to virtual-register npir
ready for the register allocator.

A flavour::

    // word-sum kernel
    while (1) {
        buf = recv();
        if (buf == 0) break;
        len = mem[buf];
        sum = 0;
        i = 0;
        while (i < len) {
            i = i + 1;
            sum = sum + mem[buf + i];
            ctx();
        }
        mem[buf + 1] = sum;
        send(buf);
    }
    halt();

Pipeline: :func:`compile_source` = lex -> parse -> generate -> validate.

* :mod:`repro.npc.lexer` -- tokens;
* :mod:`repro.npc.ast` -- the syntax tree;
* :mod:`repro.npc.parser` -- recursive descent with C-like precedence;
* :mod:`repro.npc.codegen` -- npir generation (fresh virtual registers
  for temporaries; short-circuit control flow for conditions).
"""

from repro.npc.codegen import compile_source
from repro.npc.lexer import NpcSyntaxError, tokenize
from repro.npc.parser import parse

__all__ = ["compile_source", "tokenize", "parse", "NpcSyntaxError"]
