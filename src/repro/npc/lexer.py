"""Tokenizer for npc."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ReproError


class NpcSyntaxError(ReproError):
    """Lexical or syntactic error in npc source."""

    def __init__(self, message: str, line: int):
        self.line = line
        super().__init__(f"line {line}: {message}")


KEYWORDS = {
    "if", "else", "while", "break", "continue",
    "recv", "send", "ctx", "halt", "mem", "var",
}

#: Multi-character operators first so maximal munch works.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "&", "|", "^", "~", "!", "<", ">",
    "=", "(", ")", "{", "}", "[", "]", ";", ",",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>%s)
    """
    % "|".join(re.escape(op) for op in OPERATORS),
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "name" | "keyword" | "op" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize npc source; raises :class:`NpcSyntaxError` on junk."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise NpcSyntaxError(
                f"unexpected character {source[pos]!r}", line
            )
        text = m.group(0)
        if m.lastgroup == "ws":
            line += text.count("\n")
        elif m.lastgroup == "comment":
            pass
        elif m.lastgroup == "number":
            tokens.append(Token("number", text, line))
        elif m.lastgroup == "name":
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line))
        else:
            tokens.append(Token("op", text, line))
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens
