"""Abstract syntax tree for npc.

Everything is an unsigned 32-bit integer.  Expressions are pure except
the intrinsics ``recv()`` and ``mem[...]`` reads; statements carry all
other effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Number(Expr):
    value: int


@dataclass(frozen=True)
class Name(Expr):
    ident: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-", "~", "!"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * & | ^ << >> == != < <= > >= && ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class MemRead(Expr):
    """``mem[addr]`` -- an SRAM load (a CSB at run time)."""

    addr: Expr


@dataclass(frozen=True)
class Recv(Expr):
    """``recv()`` -- next packet buffer address, 0 when drained."""


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    target: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class MemWrite(Stmt):
    """``mem[addr] = value;``"""

    addr: Expr
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Send(Stmt):
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class CtxSwitch(Stmt):
    line: int = 0


@dataclass(frozen=True)
class Halt(Stmt):
    line: int = 0


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class Break(Stmt):
    line: int = 0


@dataclass(frozen=True)
class Continue(Stmt):
    line: int = 0


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """An expression evaluated for effect (e.g. a bare ``recv();``)."""

    value: Expr
    line: int = 0


@dataclass(frozen=True)
class ProgramAst:
    body: Tuple[Stmt, ...]
    declared: Tuple[str, ...] = ()
