"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AsmSyntaxError(ReproError):
    """A textual assembly program could not be parsed.

    Carries the offending line number (1-based) and the raw line text so
    that error messages can point at the exact location.
    """

    def __init__(self, message: str, line_no: int = 0, line: str = ""):
        self.line_no = line_no
        self.line = line
        if line_no:
            message = f"line {line_no}: {message}: {line.strip()!r}"
        super().__init__(message)


class ValidationError(ReproError):
    """A program violates a structural rule (bad label, operand kind...)."""


class AllocationError(ReproError):
    """Register allocation failed (infeasible budget, internal conflict).

    When the Figure-8 loop exhausts every reduction direction,
    ``requirement`` carries the residual register requirement -- the
    smallest budget that would have satisfied the loop -- as a typed
    attribute, so feasibility probes never parse the message text.
    Other allocation failures leave it ``None``.
    """

    def __init__(self, message: str, requirement: Optional[int] = None):
        self.requirement = requirement
        super().__init__(message)

    def __reduce__(self):
        # Default exception pickling replays ``args`` only, which would
        # drop ``requirement`` on the way back from sweep workers.
        return (
            type(self),
            (self.args[0] if self.args else "", self.requirement),
        )


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    Raised by infrastructure layers (and by the fault injector's
    ``transient`` mode) for conditions with no persistent cause; the
    degradation ladder (:mod:`repro.resilience.guard`) retries these a
    bounded number of times before letting them surface.
    """


class InjectedFault(ReproError):
    """A deliberately injected fault surfaced without being masked.

    Only ever raised while a :mod:`repro.resilience.faults` plan is
    armed; seeing it in production code paths means fault injection was
    left enabled, never that the system itself failed.
    """


class DeadlineExceeded(ReproError):
    """A :class:`repro.resilience.Deadline` budget ran out mid-pipeline.

    Carries the phase that tripped the check so callers know how far
    the work got before the budget expired.
    """

    def __init__(self, message: str, phase: str = ""):
        self.phase = phase
        super().__init__(message)


class ServiceError(ReproError):
    """Base class for failures of the allocation service frontend.

    Raised (and mapped into typed response envelopes) by
    :mod:`repro.service`; subclasses carry the machine-readable fields
    a client needs to react without parsing message text.
    """


class ServiceOverloaded(ServiceError):
    """The service shed a request at the admission boundary.

    Raised when the bounded admission queue is full, or when the server
    is draining and no longer admits work.  ``retry_after`` is the
    suggested client backoff in seconds -- the HTTP layer surfaces it
    as a ``Retry-After`` header on the 429 response.
    """

    def __init__(self, message: str, retry_after: float = 0.05):
        self.retry_after = retry_after
        super().__init__(message)

    def __reduce__(self):
        return (
            type(self),
            (self.args[0] if self.args else "", self.retry_after),
        )


class RequestRejected(ServiceError):
    """A service request was refused before any analysis work.

    Structural problems with the request itself: oversized bodies,
    non-JSON payloads, unknown fields, missing programs, out-of-range
    budgets.  ``reason`` is a short machine-readable slug
    (``too-large``, ``malformed``, ``bad-field``) so tests and clients
    can branch without string-matching the message.
    """

    def __init__(self, message: str, reason: str = "malformed"):
        self.reason = reason
        super().__init__(message)

    def __reduce__(self):
        return (
            type(self),
            (self.args[0] if self.args else "", self.reason),
        )


class FabricError(ReproError):
    """A fabric run directory is unusable or incomplete.

    Raised by :mod:`repro.fabric` when a run directory's manifest does
    not match the sweep being executed (different items, parameters, or
    code-version salt), when its spool is missing items at merge time,
    or when the on-disk state is structurally damaged.  Infrastructure
    failures only -- a worker ``fn`` raising propagates as itself.
    """


class VerificationError(ReproError):
    """The independent allocation verifier rejected an outcome.

    Raised by :func:`repro.core.verify.verify_outcome` in strict mode;
    the message lists every failed check.
    """


class SimulationError(ReproError):
    """The machine simulator hit an illegal state (bad address, opcode...)."""


class WatchdogError(SimulationError):
    """The simulator's cycle watchdog fired before every thread halted.

    Raised by both engines when a run exceeds ``max_cycles`` -- a
    non-terminating rewritten program, a thread stuck waiting on a wake
    that never comes, or simply a budget too small for the workload.
    Subclasses :class:`SimulationError` so pre-watchdog callers keep
    working.
    """


class EngineError(SimulationError):
    """An execution engine cannot honour the requested feature set.

    Raised when the fast or batch engine is explicitly selected
    together with a feature only the reference interpreter implements
    (instruction tracing, timeline recording, the paranoid safety
    checker), when ``engine="batch"`` is requested without numpy
    installed or with a fault-injection plan armed, and for unknown
    engine names.  Auto-selection never raises it -- it silently picks
    the reference engine instead.
    """


class SafetyViolation(SimulationError):
    """A thread touched a register it does not own at a context switch.

    Raised only in the simulator's paranoid mode; it is the dynamic
    counterpart of the paper's private/shared safety requirement.
    """
