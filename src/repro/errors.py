"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AsmSyntaxError(ReproError):
    """A textual assembly program could not be parsed.

    Carries the offending line number (1-based) and the raw line text so
    that error messages can point at the exact location.
    """

    def __init__(self, message: str, line_no: int = 0, line: str = ""):
        self.line_no = line_no
        self.line = line
        if line_no:
            message = f"line {line_no}: {message}: {line.strip()!r}"
        super().__init__(message)


class ValidationError(ReproError):
    """A program violates a structural rule (bad label, operand kind...)."""


class AllocationError(ReproError):
    """Register allocation failed (infeasible budget, internal conflict)."""


class SimulationError(ReproError):
    """The machine simulator hit an illegal state (bad address, opcode...)."""


class EngineError(SimulationError):
    """An execution engine cannot honour the requested feature set.

    Raised when the pre-decoded fast engine is explicitly selected
    together with a feature only the reference interpreter implements
    (instruction tracing, timeline recording, the paranoid safety
    checker).  Auto-selection never raises it -- it silently picks the
    reference engine instead.
    """


class SafetyViolation(SimulationError):
    """A thread touched a register it does not own at a context switch.

    Raised only in the simulator's paranoid mode; it is the dynamic
    counterpart of the paper's private/shared safety requirement.
    """
