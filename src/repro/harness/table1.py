"""Paper Table 1: properties of the benchmark applications.

Per benchmark: code size, average cycles per main-loop iteration (measured
standalone on the simulator), context-switch instruction count, number of
live ranges, the pressure lower bounds ``RegPmax`` / ``RegPCSBmax``, the
coloring upper bounds ``MaxR`` / ``MaxPR``, and NSR count / average size.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cache import get_cache
from repro.harness.report import text_table
from repro.harness.sweep import sweep_map
from repro.sim.run import run_reference
from repro.suite.registry import BENCHMARKS, load


@dataclass
class Table1Row:
    name: str
    instructions: int
    cycles_per_iter: float
    ctx_instrs: int
    live_ranges: int
    reg_p_max: int
    reg_p_csb_max: int
    max_r: int
    max_pr: int
    n_nsr: int
    avg_nsr_size: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _table1_row(name: str, packets: int) -> Table1Row:
    """One Table-1 row (module-level so sweeps can pickle it)."""
    program = load(name)
    analysis, bounds = get_cache().analyze_with_bounds(program)
    ref = run_reference([program], packets_per_thread=packets)
    return Table1Row(
        name=name,
        instructions=len(program.instrs),
        cycles_per_iter=ref.thread_cpi(0),
        ctx_instrs=program.count_csb(),
        live_ranges=len(analysis.all_regs),
        reg_p_max=bounds.min_r,
        reg_p_csb_max=bounds.min_pr,
        max_r=bounds.max_r,
        max_pr=bounds.max_pr,
        n_nsr=analysis.nsr.n_regions,
        avg_nsr_size=analysis.nsr.average_region_size(),
    )


def run_table1(
    names: Optional[Sequence[str]] = None, packets: int = 8, jobs: int = 1
) -> List[Table1Row]:
    """Compute every Table-1 row (all benchmarks by default)."""
    return sweep_map(
        partial(_table1_row, packets=packets),
        list(names or BENCHMARKS),
        jobs=jobs,
        label="table1",
    )


def render_table1(rows: Sequence[Table1Row]) -> str:
    headers = [
        "benchmark", "#instr", "cyc/iter", "#CTX", "#ranges",
        "RegPmax", "RegPCSBmax", "MaxR", "MaxPR", "#NSR", "avgNSR",
    ]
    table = [
        (
            r.name, r.instructions, r.cycles_per_iter, r.ctx_instrs,
            r.live_ranges, r.reg_p_max, r.reg_p_csb_max, r.max_r,
            r.max_pr, r.n_nsr, r.avg_nsr_size,
        )
        for r in rows
    ]
    return "Table 1: benchmark applications\n" + text_table(headers, table)
