"""Paper Figure 14: SRA register requirements with a zero-move budget.

For each benchmark running identically on all four threads of a PU:

* bar 1 -- registers a standalone Chaitin allocation uses (``R_single``);
* bars 2/3 -- the private / shared split ``(PR, SR)`` found by the
  inter-thread allocator when it reduces only while reductions are free
  (no move instructions), i.e. the smallest no-move requirement.

The headline number is the total saving of ``Nthd*PR + SR`` against
``Nthd * R_single`` (the paper reports a 24% average).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.analysis import analyze_thread
from repro.core.inter import allocate_threads
from repro.baseline.single_thread import single_thread_register_count
from repro.harness.report import text_table
from repro.suite.registry import BENCHMARKS, load


@dataclass
class Fig14Row:
    name: str
    single_thread_regs: int
    pr: int
    sr: int
    nthd: int

    @property
    def multithread_total(self) -> int:
        return self.nthd * self.pr + self.sr

    @property
    def baseline_total(self) -> int:
        return self.nthd * self.single_thread_regs

    @property
    def saving(self) -> float:
        if self.baseline_total == 0:
            return 0.0
        return 1.0 - self.multithread_total / self.baseline_total

    def to_dict(self) -> Dict[str, Any]:
        return {
            **asdict(self),
            "multithread_total": self.multithread_total,
            "baseline_total": self.baseline_total,
            "saving": self.saving,
        }


def run_fig14(
    names: Optional[Sequence[str]] = None,
    nthd: int = 4,
    nreg: int = 128,
) -> List[Fig14Row]:
    """Compute every Figure-14 data point."""
    rows: List[Fig14Row] = []
    for name in names or list(BENCHMARKS):
        program = load(name)
        single = single_thread_register_count(program)
        analyses = [analyze_thread(load(name)) for _ in range(nthd)]
        result = allocate_threads(analyses, nreg=nreg, zero_cost_only=True)
        prs = sorted(t.pr for t in result.threads)
        rows.append(
            Fig14Row(
                name=name,
                single_thread_regs=single,
                pr=prs[-1],
                sr=result.sgr,
                nthd=nthd,
            )
        )
    return rows


def average_saving(rows: Sequence[Fig14Row]) -> float:
    if not rows:
        return 0.0
    return sum(r.saving for r in rows) / len(rows)


def render_fig14(rows: Sequence[Fig14Row]) -> str:
    headers = [
        "benchmark", "single-thread R", "PR", "SR",
        "4*R(single)", "4*PR+SR", "saving%",
    ]
    table = [
        (
            r.name, r.single_thread_regs, r.pr, r.sr,
            r.baseline_total, r.multithread_total, 100.0 * r.saving,
        )
        for r in rows
    ]
    out = "Figure 14: SRA register requirements (zero-move budget)\n"
    out += text_table(headers, table)
    out += f"\naverage total register saving: {100.0 * average_saving(rows):.1f}%"
    return out
