"""Paper Figure 14: SRA register requirements with a zero-move budget.

For each benchmark running identically on all four threads of a PU:

* bar 1 -- registers a standalone Chaitin allocation uses (``R_single``);
* bars 2/3 -- the private / shared split ``(PR, SR)`` found by the
  inter-thread allocator when it reduces only while reductions are free
  (no move instructions), i.e. the smallest no-move requirement.

The headline number is the total saving of ``Nthd*PR + SR`` against
``Nthd * R_single`` (the paper reports a 24% average).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cache import get_cache
from repro.baseline.single_thread import single_thread_register_count
from repro.harness.report import text_table
from repro.harness.sweep import sweep_map
from repro.suite.registry import BENCHMARKS, load


@dataclass
class Fig14Row:
    name: str
    single_thread_regs: int
    pr: int
    sr: int
    nthd: int

    @property
    def multithread_total(self) -> int:
        return self.nthd * self.pr + self.sr

    @property
    def baseline_total(self) -> int:
        return self.nthd * self.single_thread_regs

    @property
    def saving(self) -> float:
        if self.baseline_total == 0:
            return 0.0
        return 1.0 - self.multithread_total / self.baseline_total

    def to_dict(self) -> Dict[str, Any]:
        return {
            **asdict(self),
            "multithread_total": self.multithread_total,
            "baseline_total": self.baseline_total,
            "saving": self.saving,
        }


def _fig14_row(name: str, nthd: int, nreg: int) -> Fig14Row:
    """One Figure-14 data point (module-level so sweeps can pickle it).

    The ``nthd`` threads run *the same* program, so it is loaded and
    analysed exactly once and the :class:`ThreadAnalysis` is shared by
    every thread slot -- the inter-thread allocator only reads analyses
    (each thread gets its own :class:`AllocContext`), which
    ``tests/test_harness_fig14.py`` pins down.  The zero-cost answer is
    read off the kernel's shared descent
    (:meth:`~repro.core.cache.AnalysisCache.descent`), byte-identical to
    a fresh ``zero_cost_only`` run, so fig14 shares one trajectory with
    every other budget query on the same mix.
    """
    program = load(name)
    analysis = get_cache().analyze(program)
    single = single_thread_register_count(program, analysis=analysis)
    result = get_cache().descent([program] * nthd).zero_cost_result(nreg)
    prs = sorted(t.pr for t in result.threads)
    return Fig14Row(
        name=name,
        single_thread_regs=single,
        pr=prs[-1],
        sr=result.sgr,
        nthd=nthd,
    )


def run_fig14(
    names: Optional[Sequence[str]] = None,
    nthd: int = 4,
    nreg: int = 128,
    jobs: int = 1,
) -> List[Fig14Row]:
    """Compute every Figure-14 data point (in parallel when ``jobs>1``)."""
    return sweep_map(
        partial(_fig14_row, nthd=nthd, nreg=nreg),
        list(names or BENCHMARKS),
        jobs=jobs,
        label="fig14",
    )


def average_saving(rows: Sequence[Fig14Row]) -> float:
    if not rows:
        return 0.0
    return sum(r.saving for r in rows) / len(rows)


def render_fig14(rows: Sequence[Fig14Row]) -> str:
    headers = [
        "benchmark", "single-thread R", "PR", "SR",
        "4*R(single)", "4*PR+SR", "saving%",
    ]
    table = [
        (
            r.name, r.single_thread_regs, r.pr, r.sr,
            r.baseline_total, r.multithread_total, 100.0 * r.saving,
        )
        for r in rows
    ]
    out = "Figure 14: SRA register requirements (zero-move budget)\n"
    out += text_table(headers, table)
    out += f"\naverage total register saving: {100.0 * average_saving(rows):.1f}%"
    return out
