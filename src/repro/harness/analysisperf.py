"""Cold-analysis throughput: the dense bitset kernels vs the reference.

Two measurements over the benchmark suite, each taken once per
implementation (``repro.core.dense`` registry):

* **analysis stage** -- :func:`~repro.core.analysis.analyze_thread` per
  kernel, best of ``repeats`` runs, no caching anywhere.  This is the
  work a cache miss pays (web renaming, liveness, NSRs, interference
  graphs, the slot/conflict model).
* **end-to-end cold allocation** -- the :mod:`~repro.harness.allocperf`
  grid (every kernel at ``nthd`` threads under three budgets from its
  own bounds) through the public pipeline with a fresh, empty analysis
  cache, so every point re-analyzes.

Fidelity is checked harder than speed: per kernel the two analyses are
reduced to a canonical SHA-256 digest over every comparable
``ThreadAnalysis`` field (orders included) and the digests must match,
and the end-to-end passes must produce byte-identical allocation
summaries.  Any mismatch invalidates the speedups.  ``repro bench
analysis`` or ``pytest benchmarks/bench_analysis.py --benchmark-only
-s`` regenerates ``benchmarks/out/BENCH_analysis.json``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.analysis import ThreadAnalysis, analyze_thread
from repro.core.cache import AnalysisCache, CacheStats, scoped
from repro.core.dense import set_default_analysis_impl
from repro.harness.allocperf import _alloc_summary, build_grid
from repro.harness.report import text_table
from repro.suite.registry import BENCHMARKS, load


def _canon(obj: Any) -> Any:
    """JSON-serializable canonical form: registers to strings, sets to
    sorted lists, dict keys stringified and sorted by the dump below."""
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return sorted(str(x) for x in obj)
    if isinstance(obj, (list, tuple)):
        return [_canon(x) for x in obj]
    if isinstance(obj, (int, float, str, bool)) or obj is None:
        return obj
    return str(obj)


def analysis_digest(an: ThreadAnalysis) -> str:
    """Canonical SHA-256 over every comparable analysis field.

    Iteration orders of the ordered fields (occupant tuples, flow edges,
    ``conflicts_at`` pair lists) are part of the digest, so two
    implementations only agree when they are bit-identical, not merely
    set-equal.
    """
    graphs = an.graphs
    payload = {
        "program": an.program.fingerprint(),
        "live_in": _canon(an.liveness.live_in),
        "live_out": _canon(an.liveness.live_out),
        "boundary": _canon(an.nsr.boundary),
        "internal": _canon(an.nsr.internal),
        "gig": _canon(graphs.gig.edges()),
        "big": _canon(graphs.big.edges()),
        "iigs": {
            str(rid): _canon(g.edges()) for rid, g in graphs.iigs.items()
        },
        "slots": _canon(an.slots),
        "flow_edges": _canon(an.flow_edges),
        "occupants": _canon(an.occupants),
        "live_across": _canon(an.live_across),
        "csb_slots_of": _canon(an.csb_slots_of),
        "defs_at": _canon(an.defs_at),
        "dying_at": _canon(an.dying_at),
        "conflicts_at": _canon(an.conflicts_at),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class AnalysisBenchReport:
    """Everything ``BENCH_analysis.json`` carries."""

    rows: List[Dict[str, Any]]
    analysis_reference_s: float
    analysis_dense_s: float
    e2e_reference_s: float
    e2e_dense_s: float
    grid_points: int
    repeats: int
    nthd: int
    digests_identical: bool
    e2e_identical: bool
    kernels: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.digests_identical and self.e2e_identical

    @property
    def analysis_speedup(self) -> float:
        return (
            self.analysis_reference_s / self.analysis_dense_s
            if self.analysis_dense_s
            else 0.0
        )

    @property
    def e2e_speedup(self) -> float:
        return (
            self.e2e_reference_s / self.e2e_dense_s
            if self.e2e_dense_s
            else 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernels": self.kernels,
            "repeats": self.repeats,
            "nthd": self.nthd,
            "grid_points": self.grid_points,
            "analysis_reference_s": self.analysis_reference_s,
            "analysis_dense_s": self.analysis_dense_s,
            "analysis_speedup": self.analysis_speedup,
            "e2e_reference_s": self.e2e_reference_s,
            "e2e_dense_s": self.e2e_dense_s,
            "e2e_speedup": self.e2e_speedup,
            "digests_identical": self.digests_identical,
            "e2e_identical": self.e2e_identical,
            "identical": self.identical,
            "rows": self.rows,
        }


def _best(fn, repeats: int) -> float:
    out = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        out = min(out, time.perf_counter() - start)
    return out


def _cold_pass(names: Sequence[str], nthd: int) -> Any:
    """One cold end-to-end sweep; returns (seconds, canonical JSON)."""
    with scoped(AnalysisCache(capacity=256)) as cache:
        grid = build_grid(names, nthd=nthd)
        # Building the grid probed bounds; the cold pass must not see it.
        cache.clear()
        cache.stats = CacheStats()
        start = time.perf_counter()
        summaries = [_alloc_summary(p) for p in grid]
        elapsed = time.perf_counter() - start
    return elapsed, len(grid), json.dumps(summaries, sort_keys=True)


def run_analysis_bench(
    names: Optional[Sequence[str]] = None,
    nthd: int = 4,
    repeats: int = 3,
) -> AnalysisBenchReport:
    """Measure both implementations over the suite (see module docstring).

    The process-wide implementation default is restored on exit.
    """
    names = list(names or BENCHMARKS)
    previous = set_default_analysis_impl("dense")
    try:
        rows: List[Dict[str, Any]] = []
        totals = {"reference": 0.0, "dense": 0.0}
        digests_identical = True
        for name in names:
            program = load(name)
            row: Dict[str, Any] = {"name": name}
            digests: Dict[str, str] = {}
            for impl in ("reference", "dense"):
                set_default_analysis_impl(impl)
                digests[impl] = analysis_digest(analyze_thread(program))
                seconds = _best(lambda: analyze_thread(program), repeats)
                row[f"{impl}_s"] = seconds
                totals[impl] += seconds
            row["speedup"] = (
                row["reference_s"] / row["dense_s"] if row["dense_s"] else 0.0
            )
            row["digest"] = digests["dense"]
            row["digest_identical"] = digests["reference"] == digests["dense"]
            digests_identical &= row["digest_identical"]
            rows.append(row)

        set_default_analysis_impl("reference")
        ref_s, grid_points, ref_json = _cold_pass(names, nthd)
        set_default_analysis_impl("dense")
        dense_s, _, dense_json = _cold_pass(names, nthd)
    finally:
        set_default_analysis_impl(previous)

    return AnalysisBenchReport(
        rows=rows,
        analysis_reference_s=totals["reference"],
        analysis_dense_s=totals["dense"],
        e2e_reference_s=ref_s,
        e2e_dense_s=dense_s,
        grid_points=grid_points,
        repeats=repeats,
        nthd=nthd,
        digests_identical=digests_identical,
        e2e_identical=ref_json == dense_json,
        kernels=names,
    )


def render_analysis(report: AnalysisBenchReport) -> str:
    headers = ["kernel", "reference ms", "dense ms", "speedup", "identical"]
    rows = [
        (
            r["name"],
            f"{r['reference_s'] * 1e3:.2f}",
            f"{r['dense_s'] * 1e3:.2f}",
            f"{r['speedup']:.2f}x",
            "yes" if r["digest_identical"] else "NO",
        )
        for r in report.rows
    ]
    out = (
        f"Cold-analysis throughput: dense bitset kernels vs reference "
        f"(best of {report.repeats})\n"
    )
    out += text_table(headers, rows)
    out += (
        f"\nanalysis stage: reference {report.analysis_reference_s:.3f}s"
        f"  dense {report.analysis_dense_s:.3f}s"
        f"  ({report.analysis_speedup:.2f}x)"
        f"\ncold end-to-end ({report.grid_points} grid points, "
        f"nthd={report.nthd}): reference {report.e2e_reference_s:.3f}s"
        f"  dense {report.e2e_dense_s:.3f}s"
        f"  ({report.e2e_speedup:.2f}x)"
        f"\nidentical analyses and allocations: {report.identical}"
    )
    return out
