"""Batched-engine throughput: N scalar fast runs vs one lockstep batch.

For every suite kernel this harness runs the same seed sweep twice --
once as ``lanes`` independent fast-engine runs (the pre-batch way) and
once as a single :class:`~repro.sim.batch.BatchMachine` execution with
one lane per seed -- and reports the wall-clock speedup per kernel plus
the aggregate over the whole suite.  ``repro bench batch`` prints the
table; ``benchmarks/bench_batch.py`` persists it as ``BENCH_batch.json``
and feeds the ``sim.batch_speedup`` / ``sim.batch_ips`` watched metrics
to the trend sentinel.

Identity is checked, not assumed: every lane's ``MachineStats``, send
queues, store traces, and final memory are compared against the scalar
fast run with the same seed (itself differentially gated against the
reference interpreter), and the first ``ref_lanes`` seeds per kernel are
additionally compared against a reference-engine run directly.  A row
whose lanes diverge reports ``lanes_identical=False`` and its speedup is
meaningless -- the renderer flags it and the CI gate fails on it.

Timing covers the runs only; machine construction (decode + bind) is
excluded for both sides, matching :mod:`repro.harness.perf`.  The fast
side reuses one decoded program across seeds via the decode cache, so
the comparison is against the fast engine at its best.
"""

from __future__ import annotations

import gc
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.suite.registry import BENCHMARKS, load


@dataclass
class BatchPerfRow:
    """One kernel's N-scalar-runs vs one-batch comparison."""

    name: str
    lanes: int
    packets: int
    instructions: int
    fast_run_s: float
    batch_run_s: float
    fast_ips: float
    batch_ips: float
    speedup: float
    lanes_identical: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _lane_matches(machine, outcome, run) -> bool:
    """One batch lane vs one scalar run: stats, queues, stores, memory."""
    if outcome.error is not None or outcome.stats != run.stats:
        return False
    for thread, ref in zip(
        machine.lane_threads(outcome.lane), run.machine.threads
    ):
        if list(thread.out_queue) != list(ref.out_queue):
            return False
        if list(thread.stores) != list(ref.stores):
            return False
    return (
        machine.memories[outcome.lane].snapshot()
        == run.machine.memory.snapshot()
    )


def _batch_row(point: tuple) -> BatchPerfRow:
    """One kernel's comparison (module-level so sweeps can pickle it).

    Both wall-clock sides of the row are measured inside this call, so
    the reported per-kernel ratio is process-local and stays valid when
    rows are distributed over a sweep.
    """
    from repro.sim.batch import build_batch_machine
    from repro.sim.run import run_threads

    name, lanes, packets, ref_lanes = point
    seeds = list(range(1, lanes + 1))
    program = load(name)
    # The scalar results are all retained for the identity check
    # below; without pausing the collector, cyclic-GC passes over
    # that ever-growing heap would be billed to the fast engine.
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        fast = [
            run_threads(
                [program],
                seed=seed,
                packets_per_thread=packets,
                engine="fast",
            )
            for seed in seeds
        ]
        fast_s = time.perf_counter() - t0
    finally:
        gc.enable()
    machine = build_batch_machine(
        [program], seeds, packets_per_thread=packets
    )
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        outcomes = machine.run_batch()
        batch_s = time.perf_counter() - t0
    finally:
        gc.enable()
    identical = all(
        _lane_matches(machine, o, r) for o, r in zip(outcomes, fast)
    )
    if identical and ref_lanes:
        for seed, outcome in list(zip(seeds, outcomes))[:ref_lanes]:
            reference = run_threads(
                [program],
                seed=seed,
                packets_per_thread=packets,
                engine="reference",
            )
            if not _lane_matches(machine, outcome, reference):
                identical = False
                break
    instructions = sum(
        sum(t.instructions for t in o.stats.threads)
        for o in outcomes
        if o.error is None
    )
    return BatchPerfRow(
        name=name,
        lanes=lanes,
        packets=packets,
        instructions=instructions,
        fast_run_s=fast_s,
        batch_run_s=batch_s,
        fast_ips=instructions / fast_s if fast_s else 0.0,
        batch_ips=instructions / batch_s if batch_s else 0.0,
        speedup=fast_s / batch_s if batch_s else 0.0,
        lanes_identical=identical,
    )


def run_batchperf(
    names: Optional[Sequence[str]] = None,
    lanes: int = 64,
    packets: int = 16,
    ref_lanes: int = 1,
    jobs: int = 1,
) -> List[BatchPerfRow]:
    """Compare N fast runs vs one batch over the suite (all kernels by
    default); seeds are ``1..lanes``, one lane per seed.

    ``jobs`` distributes kernels over :func:`~repro.harness.sweep.
    sweep_map` (fabric included, when configured); each row's two
    timings happen inside one worker so its ratio is unaffected by the
    distribution.  The default stays serial -- absolute wall-clock
    comparisons should stay on one core.
    """
    from repro.harness.sweep import sweep_map

    points = [
        (name, lanes, packets, ref_lanes)
        for name in (names or list(BENCHMARKS))
    ]
    return sweep_map(_batch_row, points, jobs=jobs, label="batch")


def summarize_batchperf(rows: Sequence[BatchPerfRow]) -> Dict[str, Any]:
    """Suite-level aggregate: total work over total time per strategy."""
    instructions = sum(r.instructions for r in rows)
    fast_s = sum(r.fast_run_s for r in rows)
    batch_s = sum(r.batch_run_s for r in rows)
    return {
        "kernels": len(rows),
        "lanes": rows[0].lanes if rows else 0,
        "instructions": instructions,
        "fast_run_s": fast_s,
        "batch_run_s": batch_s,
        "fast_ips": instructions / fast_s if fast_s else 0.0,
        "batch_ips": instructions / batch_s if batch_s else 0.0,
        "speedup": fast_s / batch_s if batch_s else 0.0,
        "lanes_identical": all(r.lanes_identical for r in rows),
    }


def render_batchperf(rows: Sequence[BatchPerfRow]) -> str:
    from repro.harness.report import text_table

    headers = [
        "benchmark", "lanes", "fast ms", "batch ms",
        "fast Mips", "batch Mips", "speedup", "identical",
    ]
    table = [
        (
            r.name,
            r.lanes,
            1000.0 * r.fast_run_s,
            1000.0 * r.batch_run_s,
            r.fast_ips / 1e6,
            r.batch_ips / 1e6,
            r.speedup,
            "yes" if r.lanes_identical else "NO",
        )
        for r in rows
    ]
    s = summarize_batchperf(rows)
    table.append(
        (
            "AGGREGATE",
            s["lanes"],
            1000.0 * s["fast_run_s"],
            1000.0 * s["batch_run_s"],
            s["fast_ips"] / 1e6,
            s["batch_ips"] / 1e6,
            s["speedup"],
            "yes" if s["lanes_identical"] else "NO",
        )
    )
    return (
        "Batched simulation: N scalar fast runs vs one lockstep batch "
        f"({s['lanes']} lanes)\n" + text_table(headers, table)
    )
