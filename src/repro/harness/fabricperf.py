"""Fabric throughput: serial vs process pool vs the durable fabric.

Three passes over the same suite x budget grid as
:mod:`repro.harness.allocperf` (every kernel at its bounds-derived
ceiling / midpoint / near-floor budgets, ``nthd`` identical threads),
all executing :func:`~repro.harness.allocperf._alloc_summary` through
the public pipeline:

* **serial** -- ``[fn(p) for p in grid]`` on a cleared analysis cache:
  the cold single-process baseline, exactly the wall-clock a fresh
  serial sweep costs;
* **pool** -- :func:`~repro.harness.sweep.sweep_map` with ``workers``
  processes forked from the warm parent (the analysis cache rides along
  fork copy-on-write) -- the same framing as allocperf's parallel pass:
  the wall-clock a warmed CLI session gets from ``--jobs``;
* **fabric** -- the same grid planned into a fresh run directory and
  driven by :func:`repro.fabric.sweep_run`, workers likewise forked
  from the warm parent: claims, spool writes, telemetry spooling, and
  the merge are all inside the timed window, so ``fabric_speedup``
  prices the durability machinery, not just the forking.

Each timed pass is best-of-:data:`_REPEATS`, the reps interleaved
(serial, warm, pool, fabric per rep) so bursty load on a shared host
slows whole reps instead of skewing one pass's best, and the fabric
pass uses a *fresh root per run* so resume can never fake a win.  ``identical`` is byte-for-byte JSON equality of every pass's
summary list -- any divergence invalidates the speedups.  The headline
gates (``benchmarks/bench_fabric.py``, CI): ``fabric_speedup >= 2``
over serial at 4 workers, and ``pool_ratio <= 1.10`` -- the fabric may
cost at most 10% over the ephemeral pool it replaces.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cache import AnalysisCache, scoped
from repro.harness.allocperf import _alloc_summary, build_grid
from repro.harness.report import text_table
from repro.harness.sweep import default_jobs, sweep_map

#: Timed repetitions per pass; best-of wins.  The pool and fabric reps
#: are interleaved (pool, fabric, pool, fabric, ...) so bursty load on
#: a shared host hits both sides alike instead of skewing their ratio.
_REPEATS = 3


@dataclass
class FabricBenchReport:
    """Everything ``BENCH_fabric.json`` carries."""

    kernels: List[str]
    grid_points: int
    workers: int
    cpu_count: int
    serial_s: float
    pool_s: float
    fabric_s: float
    identical: bool
    points: List[Dict[str, Any]] = field(default_factory=list)
    #: Spool/steal accounting from the final fabric run's status doc.
    stolen: int = 0

    @property
    def fabric_speedup(self) -> float:
        return self.serial_s / self.fabric_s if self.fabric_s else 0.0

    @property
    def pool_speedup(self) -> float:
        return self.serial_s / self.pool_s if self.pool_s else 0.0

    @property
    def pool_ratio(self) -> float:
        """Fabric wall-clock over pool wall-clock (<= 1 means faster)."""
        return self.fabric_s / self.pool_s if self.pool_s else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernels": self.kernels,
            "grid_points": self.grid_points,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "serial_s": self.serial_s,
            "pool_s": self.pool_s,
            "fabric_s": self.fabric_s,
            "fabric_speedup": self.fabric_speedup,
            "pool_speedup": self.pool_speedup,
            "pool_ratio": self.pool_ratio,
            "identical": self.identical,
            "stolen": self.stolen,
            "points": self.points,
        }


def run_fabric_bench(
    names: Optional[Sequence[str]] = None,
    nthd: int = 2,
    workers: Optional[int] = None,
) -> FabricBenchReport:
    """Measure serial vs pool vs fabric over the grid (module docstring).

    ``workers`` defaults to ``max(2, min(4, cpu_count))`` so both
    parallel passes genuinely exercise worker processes.  ``nthd``
    defaults to the paper's two-thread PU: analysis cost then dominates
    each point, which is exactly the workload the fabric's
    fingerprint-affinity placement targets (the four-thread,
    budget-phase-heavy variant is allocperf's parallel pass).
    """
    from repro import fabric

    from repro.suite.registry import BENCHMARKS

    if workers is None:
        workers = max(2, min(4, default_jobs()))
    names = list(names or BENCHMARKS)
    with scoped(AnalysisCache(capacity=256)) as cache:
        grid = build_grid(names, nthd=nthd)

        # All four passes of one rep run back to back -- cold serial,
        # warm re-warm, pool, fabric -- so a load burst on a shared
        # host slows a whole rep rather than skewing one pass's best.
        serial_runs: List[List[Dict[str, Any]]] = []
        pool_runs: List[List[Dict[str, Any]]] = []
        fabric_runs: List[List[Dict[str, Any]]] = []
        serial_s = pool_s = fabric_s = float("inf")
        stolen = 0
        with tempfile.TemporaryDirectory(prefix="repro-fabricperf-") as tmp:
            for rep in range(_REPEATS):
                cache.clear()
                start = time.perf_counter()
                serial_runs.append([_alloc_summary(p) for p in grid])
                serial_s = min(serial_s, time.perf_counter() - start)

                # Re-warm the parent: both parallel passes fork their
                # workers from this state (allocperf's parallel-pass
                # framing), and the warm summaries join the identity
                # check.
                pool_runs.append([_alloc_summary(p) for p in grid])

                start = time.perf_counter()
                pool_runs.append(
                    sweep_map(
                        _alloc_summary, grid, jobs=workers, label="fabricperf"
                    )
                )
                pool_s = min(pool_s, time.perf_counter() - start)

                root = Path(tmp) / f"run{rep}"  # fresh root: no resume wins
                start = time.perf_counter()
                run, results = fabric.sweep_run(
                    _alloc_summary,
                    grid,
                    label="fabricperf",
                    root=root,
                    workers=workers,
                )
                elapsed = time.perf_counter() - start
                fabric_runs.append(results)
                if elapsed < fabric_s:
                    fabric_s = elapsed
                    stolen = sum(
                        w.get("stolen") or 0
                        for w in fabric.status(run)["workers"]
                    )

    as_json = [
        json.dumps(r, sort_keys=True)
        for r in (*serial_runs, *pool_runs, *fabric_runs)
    ]
    identical = all(j == as_json[0] for j in as_json[1:])
    return FabricBenchReport(
        kernels=names,
        grid_points=len(grid),
        workers=workers,
        cpu_count=os.cpu_count() or 1,
        serial_s=serial_s,
        pool_s=pool_s,
        fabric_s=fabric_s,
        identical=identical,
        points=serial_runs[-1],
        stolen=stolen,
    )


def render_fabric(report: FabricBenchReport) -> str:
    headers = ["pass", "wall s", "speedup vs serial"]
    rows = [
        ("serial", f"{report.serial_s:.3f}", "1.00x"),
        (
            f"pool x{report.workers}",
            f"{report.pool_s:.3f}",
            f"{report.pool_speedup:.2f}x",
        ),
        (
            f"fabric x{report.workers}",
            f"{report.fabric_s:.3f}",
            f"{report.fabric_speedup:.2f}x",
        ),
    ]
    return (
        f"Sweep fabric throughput ({report.grid_points} grid points, "
        f"{report.workers} workers, {report.cpu_count} CPUs)\n"
        + text_table(headers, rows)
        + f"\nfabric/pool wall ratio: {report.pool_ratio:.3f} "
        f"(<= 1.10 gate)"
        f"\nstolen items in best fabric run: {report.stolen}"
        f"\nidentical summaries across passes: {report.identical}"
    )
