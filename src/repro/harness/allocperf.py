"""Allocation-pipeline throughput: cold vs warm-cache vs parallel vs descent.

The sweep grid covers every benchmark kernel at ``nthd`` identical
threads under three register budgets derived from its own bounds --
the zero-reduction ceiling (``nthd*MaxPR + MaxSR``), the feasibility
floor (``nthd*MinPR + MinSRmax``), approached from above, and their
midpoint -- so the measured work spans "no reduction needed" through
"heavy Figure-8/10 splitting".

Three passes over the same grid, all through the public
:func:`~repro.core.pipeline.allocate_programs` entry point:

* **cold** -- a fresh, empty analysis cache; every point re-analyzes.
  This is exactly what the pipeline did before :mod:`repro.core.cache`
  existed, so cold vs warm is the caching win, not an artifact of the
  harness.
* **warm** -- the same cache again, now populated: only the
  budget-dependent phases (inter/assign/rewrite) still run.
* **parallel** -- the grid through
  :func:`~repro.harness.sweep.sweep_map` with ``jobs > 1`` worker
  processes forked from the warm parent (the analysis cache rides
  along fork copy-on-write); best wall-clock of two runs, since pool
  spin-up absorbs most of the scheduler noise on a loaded host.  Its
  baseline is still the *cold serial* pass: this is the wall-clock a
  user gets from ``--jobs`` on a warmed CLI session.

A fourth, **descent**, section measures the shared-descent win on the
per-kernel *multi-budget query workload*: a :data:`LADDER_RUNGS`-rung
budget ladder spanning the kernel's bounds floor to its zero-reduction
ceiling (widened downward so kernels whose floor equals their ceiling
still exercise infeasibility probing -- the same query mix
``_reachable`` and a budget search issue), each rung resolved to the
smallest satisfiable budget and allocated once per distinct result.
The baseline runs it the pre-descent way -- allocate-until-success
probing, then a fresh :func:`~repro.core.pipeline.allocate_programs`
per budget -- and the descent side answers the identical queries from
ONE :class:`~repro.core.inter.SharedDescent` per kernel via
:func:`~repro.core.pipeline.allocate_programs_sweep`, plus a replay
pass on the warm trajectory.  Both sides run on the warm analysis
cache, so ``descent_speedup`` isolates the descent itself
(docs/PERFORMANCE.md, "Shared-descent budget sweeps").

Every pass records the full allocation summary of every point (PR/SR
vectors, move costs, SGR, totals, and the fingerprints of the rewritten
programs); the report's ``identical`` flag is the byte-for-byte JSON
equality of the three summary lists, ``descent_identical`` the same
equality between the descent section's passes and the cold points, and
any mismatch invalidates the speedups.  ``repro bench alloc`` or
``pytest benchmarks/bench_alloc.py --benchmark-only -s`` regenerates
``benchmarks/out/BENCH_alloc.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cache import AnalysisCache, CacheStats, get_cache, scoped
from repro.core.pipeline import allocate_programs, allocate_programs_sweep
from repro.errors import AllocationError
from repro.harness.report import text_table
from repro.harness.sweep import default_jobs, sweep_map
from repro.suite.registry import BENCHMARKS, load

#: A sweep point: (kernel name, register budget, threads per PU).
Point = Tuple[str, int, int]

#: Rungs of the per-kernel budget ladder the descent section queries.
LADDER_RUNGS = 6


def _budget_probes(name: str, nthd: int) -> Tuple[int, List[int]]:
    """The kernel's zero-reduction ceiling and the raw (unprobed)
    mid / near-floor budget requests the grid derives from its bounds."""
    b = get_cache().bounds(load(name))
    floor = nthd * b.min_pr + (b.min_r - b.min_pr)
    ceiling = nthd * b.max_pr + (b.max_r - b.max_pr)
    near_floor = min(floor + max(1, (ceiling - floor) // 4), ceiling)
    mid = (floor + ceiling) // 2
    return ceiling, [mid, near_floor]


def _reachable(name: str, nreg: int, nthd: int, ceiling: int) -> int:
    """Smallest budget >= ``nreg`` the greedy loop actually satisfies.

    The per-thread bounds floor (``nthd*MinPR + MinSRmax``) is a lower
    bound on any allocation, but the Figure-8 loop is greedy and can
    bottom out a few registers above it.  The reduction trajectory is
    budget-independent, so this is a single read-off of the kernel's
    shared descent (memoized in the analysis cache) -- where it used to
    re-run the full pipeline per probe, allocating until success.
    """
    if nreg >= ceiling:
        return ceiling
    descent = get_cache().descent([load(name) for _ in range(nthd)])
    return min(descent.reachable(nreg), ceiling)


def _reachable_probing(name: str, nreg: int, nthd: int, ceiling: int) -> int:
    """The pre-descent feasibility probe: allocate at rising budgets
    until success, each failure's typed ``requirement`` guiding the next
    try.  Kept as the baseline the descent section measures against."""
    while nreg < ceiling:
        try:
            allocate_programs([load(name) for _ in range(nthd)], nreg=nreg)
            return nreg
        except AllocationError as exc:
            nreg = (
                exc.requirement if exc.requirement is not None else nreg + 1
            )
    return ceiling


def build_grid(
    names: Optional[Sequence[str]] = None, nthd: int = 4
) -> List[Point]:
    """The suite x budget grid, each budget derived from the kernel's
    own bounds and probed for greedy feasibility."""
    grid: List[Point] = []
    for name in names or list(BENCHMARKS):
        ceiling, probes = _budget_probes(name, nthd)
        budgets = {ceiling}
        for nreg in probes:
            budgets.add(_reachable(name, nreg, nthd, ceiling))
        for nreg in sorted(budgets, reverse=True):
            grid.append((name, nreg, nthd))
    return grid


def _summarize(name: str, nreg: int, nthd: int, out: Any) -> Dict[str, Any]:
    """Distill one allocation outcome into the full decision summary."""
    return {
        "name": name,
        "nreg": nreg,
        "nthd": nthd,
        "pr": [t.pr for t in out.inter.threads],
        "sr": [t.sr for t in out.inter.threads],
        "moves": [t.move_cost for t in out.inter.threads],
        "sgr": out.sgr,
        "total_registers": out.total_registers,
        "total_moves": out.total_moves,
        "programs": [p.fingerprint() for p in out.programs],
    }


def _alloc_summary(point: Point) -> Dict[str, Any]:
    """Allocate one grid point and distill the full decision summary."""
    name, nreg, nthd = point
    programs = [load(name) for _ in range(nthd)]
    return _summarize(name, nreg, nthd, allocate_programs(programs, nreg=nreg))


def _budget_ladder(name: str, nthd: int) -> Tuple[int, List[int]]:
    """The kernel's ceiling and its :data:`LADDER_RUNGS`-rung budget
    ladder, evenly spaced from ``min(floor, ceiling - LADDER_RUNGS + 1)``
    up to the ceiling.

    Spanning floor to ceiling covers "no reduction needed" through
    "bottomed out"; the downward widening keeps the ladder multi-budget
    for kernels whose floor *equals* their ceiling (identical threads at
    tight bounds), where every sub-ceiling rung is an infeasibility
    probe -- still a real query, and the expensive kind for the
    pre-descent baseline.
    """
    b = get_cache().bounds(load(name))
    floor = nthd * b.min_pr + (b.min_r - b.min_pr)
    ceiling = nthd * b.max_pr + (b.max_r - b.max_pr)
    lo = max(1, min(floor, ceiling - LADDER_RUNGS + 1))
    span = ceiling - lo
    rungs = sorted(
        {lo + (k * span) // (LADDER_RUNGS - 1) for k in range(LADDER_RUNGS)},
        reverse=True,
    )
    return ceiling, rungs


def _grid_per_budget(name: str, nthd: int) -> List[Dict[str, Any]]:
    """One kernel's budget-ladder queries the pre-descent way: resolve
    each rung by allocating until success, then run one fresh
    :func:`allocate_programs` per distinct reachable budget."""
    ceiling, rungs = _budget_ladder(name, nthd)
    budgets = set()
    for nreg in rungs:
        budgets.add(_reachable_probing(name, nreg, nthd, ceiling))
    return [
        _alloc_summary((name, nreg, nthd))
        for nreg in sorted(budgets, reverse=True)
    ]


def _grid_descent(name: str, nthd: int) -> List[Dict[str, Any]]:
    """The same ladder answered from one shared descent: the programs
    are loaded once, reachability is a trajectory read-off, and
    :func:`allocate_programs_sweep` materializes every distinct budget."""
    ceiling, rungs = _budget_ladder(name, nthd)
    programs = [load(name) for _ in range(nthd)]
    descent = get_cache().descent(programs)
    budgets = {
        ceiling if nreg >= ceiling else min(descent.reachable(nreg), ceiling)
        for nreg in rungs
    }
    ordered = sorted(budgets, reverse=True)
    outcomes = allocate_programs_sweep(programs, ordered)
    return [
        _summarize(name, nreg, nthd, outcomes[nreg]) for nreg in ordered
    ]


@dataclass
class AllocBenchReport:
    """Everything ``BENCH_alloc.json`` carries."""

    points: List[Dict[str, Any]]
    cold_s: float
    warm_s: float
    parallel_s: float
    jobs: int
    cpu_count: int
    cache: Dict[str, int]
    identical: bool
    kernels: List[str] = field(default_factory=list)
    per_budget_s: float = 0.0
    descent_s: float = 0.0
    descent_replay_s: float = 0.0
    descent_identical: bool = False

    @property
    def warm_speedup(self) -> float:
        return self.cold_s / self.warm_s if self.warm_s else 0.0

    @property
    def parallel_speedup(self) -> float:
        return self.cold_s / self.parallel_s if self.parallel_s else 0.0

    @property
    def descent_speedup(self) -> float:
        return (
            self.per_budget_s / self.descent_s if self.descent_s else 0.0
        )

    @property
    def descent_replay_speedup(self) -> float:
        return (
            self.per_budget_s / self.descent_replay_s
            if self.descent_replay_s
            else 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernels": self.kernels,
            "grid_points": len(self.points),
            "cold_s": self.cold_s,
            "warm_s": self.warm_s,
            "parallel_s": self.parallel_s,
            "warm_speedup": self.warm_speedup,
            "parallel_speedup": self.parallel_speedup,
            "jobs": self.jobs,
            "cpu_count": self.cpu_count,
            "cache": self.cache,
            "identical": self.identical,
            "per_budget_s": self.per_budget_s,
            "descent_s": self.descent_s,
            "descent_replay_s": self.descent_replay_s,
            "descent_speedup": self.descent_speedup,
            "descent_replay_speedup": self.descent_replay_speedup,
            "descent_identical": self.descent_identical,
            "points": self.points,
        }


def run_alloc_bench(
    names: Optional[Sequence[str]] = None,
    nthd: int = 4,
    jobs: Optional[int] = None,
) -> AllocBenchReport:
    """Measure the passes over the grid (see the module docstring).

    ``jobs`` defaults to ``max(2, min(4, os.cpu_count()))`` so the
    parallel pass always actually exercises worker processes.
    """
    if jobs is None:
        jobs = max(2, min(4, default_jobs()))
    names = list(names or BENCHMARKS)
    with scoped(AnalysisCache(capacity=256)) as cache:
        grid = build_grid(names, nthd=nthd)

        # Best of two runs for every timed pass (matching the parallel
        # pass below): scheduler noise on a loaded single-core host
        # easily swings a sub-second pass by 20%, which is enough to
        # flip a speedup gate that the identical-summaries check says
        # nothing is actually wrong with.  The cold pass clears the
        # cache before each run (building the grid probed bounds; the
        # cold pass must not see that); the stats snapshot reflects the
        # final cold run plus the warm runs over it.
        cold_runs: List[List[Dict[str, Any]]] = []
        cold_s = float("inf")
        for _ in range(2):
            cache.clear()
            cache.stats = CacheStats()
            start = time.perf_counter()
            cold_runs.append([_alloc_summary(p) for p in grid])
            cold_s = min(cold_s, time.perf_counter() - start)
        cold = cold_runs[-1]

        warm_runs: List[List[Dict[str, Any]]] = []
        warm_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            warm_runs.append([_alloc_summary(p) for p in grid])
            warm_s = min(warm_s, time.perf_counter() - start)

        # Workers fork from this (warm) process; the baseline remains
        # the cold serial pass above.
        runs: List[List[Dict[str, Any]]] = []
        parallel_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            runs.append(
                sweep_map(_alloc_summary, grid, jobs=jobs, label="alloc")
            )
            parallel_s = min(parallel_s, time.perf_counter() - start)

        # Descent section: the per-kernel multi-budget query workload,
        # old way vs one shared descent per kernel.  Both sides run on
        # the warm analysis cache, isolating the descent win; the
        # trajectories themselves start cold and are replayed warm.
        cache.clear_descents()
        start = time.perf_counter()
        per_budget = [_grid_per_budget(n, nthd) for n in names]
        per_budget_s = time.perf_counter() - start

        cache.clear_descents()
        start = time.perf_counter()
        descended = [_grid_descent(n, nthd) for n in names]
        descent_s = time.perf_counter() - start

        start = time.perf_counter()
        replayed = [_grid_descent(n, nthd) for n in names]
        descent_replay_s = time.perf_counter() - start

        stats = cache.stats.to_dict()

    as_json = [
        json.dumps(s, sort_keys=True)
        for s in (*cold_runs, *warm_runs, *runs)
    ]
    identical = all(j == as_json[0] for j in as_json[1:])
    cold_json = json.dumps(cold, sort_keys=True)
    descent_identical = all(
        json.dumps([s for kernel in section for s in kernel], sort_keys=True)
        == cold_json
        for section in (per_budget, descended, replayed)
    )
    return AllocBenchReport(
        points=cold,
        cold_s=cold_s,
        warm_s=warm_s,
        parallel_s=parallel_s,
        jobs=jobs,
        cpu_count=os.cpu_count() or 1,
        cache=stats,
        identical=identical,
        kernels=names,
        per_budget_s=per_budget_s,
        descent_s=descent_s,
        descent_replay_s=descent_replay_s,
        descent_identical=descent_identical,
    )


def render_alloc(report: AllocBenchReport) -> str:
    headers = ["kernel", "Nreg", "used", "SGR", "moves"]
    rows = [
        (
            p["name"], p["nreg"], p["total_registers"], p["sgr"],
            p["total_moves"],
        )
        for p in report.points
    ]
    out = (
        f"Allocation pipeline throughput "
        f"({len(report.points)} grid points, {report.jobs} jobs, "
        f"{report.cpu_count} CPUs)\n"
    )
    out += text_table(headers, rows)
    out += (
        f"\ncold {report.cold_s:.3f}s"
        f"  warm {report.warm_s:.3f}s ({report.warm_speedup:.2f}x)"
        f"  parallel {report.parallel_s:.3f}s "
        f"({report.parallel_speedup:.2f}x)"
        f"\ndescent: per-budget {report.per_budget_s:.3f}s"
        f"  shared {report.descent_s:.3f}s "
        f"({report.descent_speedup:.2f}x)"
        f"  replay {report.descent_replay_s:.3f}s "
        f"({report.descent_replay_speedup:.2f}x)"
        f"\ncache: {report.cache}"
        f"\nidentical summaries across passes: {report.identical}"
        f"\nidentical summaries across descent passes: "
        f"{report.descent_identical}"
    )
    return out
