"""Allocation-pipeline throughput: cold vs warm-cache vs parallel.

The sweep grid covers every benchmark kernel at ``nthd`` identical
threads under three register budgets derived from its own bounds --
the zero-reduction ceiling (``nthd*MaxPR + MaxSR``), the feasibility
floor (``nthd*MinPR + MinSRmax``), approached from above, and their
midpoint -- so the measured work spans "no reduction needed" through
"heavy Figure-8/10 splitting".

Three passes over the same grid, all through the public
:func:`~repro.core.pipeline.allocate_programs` entry point:

* **cold** -- a fresh, empty analysis cache; every point re-analyzes.
  This is exactly what the pipeline did before :mod:`repro.core.cache`
  existed, so cold vs warm is the caching win, not an artifact of the
  harness.
* **warm** -- the same cache again, now populated: only the
  budget-dependent phases (inter/assign/rewrite) still run.
* **parallel** -- the grid through
  :func:`~repro.harness.sweep.sweep_map` with ``jobs > 1`` worker
  processes forked from the warm parent (the analysis cache rides
  along fork copy-on-write); best wall-clock of two runs, since pool
  spin-up absorbs most of the scheduler noise on a loaded host.  Its
  baseline is still the *cold serial* pass: this is the wall-clock a
  user gets from ``--jobs`` on a warmed CLI session.

Every pass records the full allocation summary of every point (PR/SR
vectors, move costs, SGR, totals, and the fingerprints of the rewritten
programs); the report's ``identical`` flag is the byte-for-byte JSON
equality of the three summary lists, and any mismatch invalidates the
speedups.  ``repro bench alloc`` or ``pytest benchmarks/bench_alloc.py
--benchmark-only -s`` regenerates ``benchmarks/out/BENCH_alloc.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import re

from repro.core.cache import AnalysisCache, CacheStats, get_cache, scoped
from repro.core.pipeline import allocate_programs
from repro.errors import AllocationError
from repro.harness.report import text_table
from repro.harness.sweep import default_jobs, sweep_map
from repro.suite.registry import BENCHMARKS, load

#: A sweep point: (kernel name, register budget, threads per PU).
Point = Tuple[str, int, int]


def _reachable(name: str, nreg: int, nthd: int, ceiling: int) -> int:
    """Smallest budget >= ``nreg`` the greedy loop actually satisfies.

    The per-thread bounds floor (``nthd*MinPR + MinSRmax``) is a lower
    bound on any allocation, but the Figure-8 loop is greedy and can
    bottom out a few registers above it; probe upward from the requested
    budget until allocation succeeds, guided by the requirement the
    failed run reports.
    """
    while nreg < ceiling:
        try:
            allocate_programs([load(name) for _ in range(nthd)], nreg=nreg)
            return nreg
        except AllocationError as exc:
            m = re.search(r"cannot fit (\d+) required", str(exc))
            nreg = int(m.group(1)) if m else nreg + 1
    return ceiling


def build_grid(
    names: Optional[Sequence[str]] = None, nthd: int = 4
) -> List[Point]:
    """The suite x budget grid, each budget derived from the kernel's
    own bounds and probed for greedy feasibility."""
    cache = get_cache()
    grid: List[Point] = []
    for name in names or list(BENCHMARKS):
        b = cache.bounds(load(name))
        floor = nthd * b.min_pr + (b.min_r - b.min_pr)
        ceiling = nthd * b.max_pr + (b.max_r - b.max_pr)
        near_floor = min(floor + max(1, (ceiling - floor) // 4), ceiling)
        mid = (floor + ceiling) // 2
        budgets = {ceiling}
        for nreg in (mid, near_floor):
            budgets.add(_reachable(name, nreg, nthd, ceiling))
        for nreg in sorted(budgets, reverse=True):
            grid.append((name, nreg, nthd))
    return grid


def _alloc_summary(point: Point) -> Dict[str, Any]:
    """Allocate one grid point and distill the full decision summary."""
    name, nreg, nthd = point
    programs = [load(name) for _ in range(nthd)]
    out = allocate_programs(programs, nreg=nreg)
    return {
        "name": name,
        "nreg": nreg,
        "nthd": nthd,
        "pr": [t.pr for t in out.inter.threads],
        "sr": [t.sr for t in out.inter.threads],
        "moves": [t.move_cost for t in out.inter.threads],
        "sgr": out.sgr,
        "total_registers": out.total_registers,
        "total_moves": out.total_moves,
        "programs": [p.fingerprint() for p in out.programs],
    }


@dataclass
class AllocBenchReport:
    """Everything ``BENCH_alloc.json`` carries."""

    points: List[Dict[str, Any]]
    cold_s: float
    warm_s: float
    parallel_s: float
    jobs: int
    cpu_count: int
    cache: Dict[str, int]
    identical: bool
    kernels: List[str] = field(default_factory=list)

    @property
    def warm_speedup(self) -> float:
        return self.cold_s / self.warm_s if self.warm_s else 0.0

    @property
    def parallel_speedup(self) -> float:
        return self.cold_s / self.parallel_s if self.parallel_s else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernels": self.kernels,
            "grid_points": len(self.points),
            "cold_s": self.cold_s,
            "warm_s": self.warm_s,
            "parallel_s": self.parallel_s,
            "warm_speedup": self.warm_speedup,
            "parallel_speedup": self.parallel_speedup,
            "jobs": self.jobs,
            "cpu_count": self.cpu_count,
            "cache": self.cache,
            "identical": self.identical,
            "points": self.points,
        }


def run_alloc_bench(
    names: Optional[Sequence[str]] = None,
    nthd: int = 4,
    jobs: Optional[int] = None,
) -> AllocBenchReport:
    """Measure the three passes over the grid (see the module docstring).

    ``jobs`` defaults to ``max(2, min(4, os.cpu_count()))`` so the
    parallel pass always actually exercises worker processes.
    """
    if jobs is None:
        jobs = max(2, min(4, default_jobs()))
    names = list(names or BENCHMARKS)
    with scoped(AnalysisCache(capacity=256)) as cache:
        grid = build_grid(names, nthd=nthd)
        # Building the grid probed bounds; the cold pass must not see that.
        cache.clear()
        cache.stats = CacheStats()

        start = time.perf_counter()
        cold = [_alloc_summary(p) for p in grid]
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = [_alloc_summary(p) for p in grid]
        warm_s = time.perf_counter() - start

        # Workers fork from this (warm) process; the baseline remains
        # the cold serial pass above.  Best of two runs: pool spin-up
        # and scheduler noise on a loaded host hit the first run hardest.
        runs: List[List[Dict[str, Any]]] = []
        parallel_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            runs.append(
                sweep_map(_alloc_summary, grid, jobs=jobs, label="alloc")
            )
            parallel_s = min(parallel_s, time.perf_counter() - start)
        parallel = runs[-1]

        stats = cache.stats.to_dict()

    as_json = [
        json.dumps(s, sort_keys=True) for s in (cold, warm, *runs)
    ]
    identical = all(j == as_json[0] for j in as_json[1:])
    return AllocBenchReport(
        points=cold,
        cold_s=cold_s,
        warm_s=warm_s,
        parallel_s=parallel_s,
        jobs=jobs,
        cpu_count=os.cpu_count() or 1,
        cache=stats,
        identical=identical,
        kernels=names,
    )


def render_alloc(report: AllocBenchReport) -> str:
    headers = ["kernel", "Nreg", "used", "SGR", "moves"]
    rows = [
        (
            p["name"], p["nreg"], p["total_registers"], p["sgr"],
            p["total_moves"],
        )
        for p in report.points
    ]
    out = (
        f"Allocation pipeline throughput "
        f"({len(report.points)} grid points, {report.jobs} jobs, "
        f"{report.cpu_count} CPUs)\n"
    )
    out += text_table(headers, rows)
    out += (
        f"\ncold {report.cold_s:.3f}s"
        f"  warm {report.warm_s:.3f}s ({report.warm_speedup:.2f}x)"
        f"  parallel {report.parallel_s:.3f}s "
        f"({report.parallel_speedup:.2f}x)"
        f"\ncache: {report.cache}"
        f"\nidentical summaries across passes: {report.identical}"
    )
    return out
