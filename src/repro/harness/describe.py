"""Human-readable reports: live-range charts and NSR maps.

Debugging a register allocator is mostly staring at lifetimes.  These
helpers render a thread's analysis as monospace text:

* :func:`live_range_chart` -- one row per live range, one column per
  instruction; ``=`` marks occupied slots, ``|`` marks CSB columns, ``B``
  flags boundary ranges;
* :func:`nsr_map` -- the program listing annotated with its non-switch
  region ids and CSB markers;
* :func:`allocation_report` -- per-thread piece/color/register table for
  a finished allocation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.analysis import ThreadAnalysis
from repro.core.pipeline import AllocationOutcome
from repro.ir.printer import format_instruction


def live_range_chart(
    analysis: ThreadAnalysis, max_ranges: Optional[int] = None
) -> str:
    """ASCII lifetime chart of every live range (sorted by first slot)."""
    program = analysis.program
    n = len(program.instrs)
    csb_cols = {i for i, ins in enumerate(program.instrs) if ins.is_csb}

    def row_for(reg) -> str:
        slots = analysis.slots[reg]
        cells = []
        for i in range(n):
            if i in slots:
                cells.append("=")
            elif i in csb_cols:
                cells.append("|")
            else:
                cells.append(".")
        return "".join(cells)

    ranges = sorted(
        analysis.all_regs,
        key=lambda r: (min(analysis.slots[r], default=0), str(r)),
    )
    if max_ranges is not None:
        ranges = ranges[:max_ranges]
    width = max((len(str(r)) for r in ranges), default=4)
    lines = [
        f"{'range'.ljust(width)}  K  {'lifetime (| = CSB column)'}",
    ]
    for reg in ranges:
        kind = "B" if reg in analysis.nsr.boundary else "i"
        lines.append(f"{str(reg).ljust(width)}  {kind}  {row_for(reg)}")
    return "\n".join(lines)


def nsr_map(analysis: ThreadAnalysis) -> str:
    """The program listing annotated with NSR membership."""
    program = analysis.program
    lines: List[str] = []
    for i, instr in enumerate(program.instrs):
        labels = "".join(f"{name}:\n" for name in program.labels_at(i))
        rid = analysis.nsr.nsr_of[i]
        tag = "CSB" if rid is None else f"N{rid:02d}"
        if labels:
            lines.append(labels.rstrip("\n"))
        lines.append(f"  {i:3} [{tag}] {format_instruction(instr)}")
    return "\n".join(lines)


def allocation_report(outcome: AllocationOutcome) -> str:
    """Pieces, colors and physical registers for every allocated thread."""
    blocks: List[str] = [outcome.summary(), ""]
    for alloc, regmap in zip(outcome.inter.threads, outcome.assignment.maps):
        blocks.append(f"-- {alloc.name} --")
        ctx = alloc.context
        for reg in ctx.analysis.all_regs:
            pieces = ctx.pieces_of(reg)
            parts = []
            for piece in pieces:
                span = (
                    f"{min(piece.slots)}..{max(piece.slots)}"
                    if piece.slots
                    else "-"
                )
                kind = "priv" if piece.color < ctx.pr else "shared"
                parts.append(
                    f"[{span}] c{piece.color} {kind} "
                    f"-> {regmap.phys(piece.color)}"
                )
            blocks.append(f"  {str(reg):14} " + "  ".join(parts))
        blocks.append("")
    return "\n".join(blocks)
