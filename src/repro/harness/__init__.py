"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.harness.table1` -- benchmark properties (paper Table 1).
* :mod:`repro.harness.fig14` -- SRA register requirements: standalone
  Chaitin vs inter-thread PR/SR with a zero-move budget (paper Figure 14).
* :mod:`repro.harness.table2` -- move insertion in the extreme case of
  minimal register allocation (paper Table 2).
* :mod:`repro.harness.table3` -- the three ARA scenarios: spilling
  baseline vs register sharing, cycle counts per thread (paper Table 3).
* :mod:`repro.harness.perf` -- execution-engine throughput comparison
  (reference interpreter vs pre-decoded fast engine).
* :mod:`repro.harness.report` -- plain-text table rendering shared by all.

Every harness exposes ``run(...) -> rows`` returning plain dataclasses and
``render(rows) -> str`` producing the table; the ``benchmarks/`` tree calls
``run`` under pytest-benchmark and prints ``render``.
"""

from repro.harness.table1 import Table1Row, run_table1, render_table1
from repro.harness.fig14 import Fig14Row, run_fig14, render_fig14
from repro.harness.table2 import Table2Row, run_table2, render_table2
from repro.harness.table3 import (
    SCENARIOS,
    Table3Scenario,
    run_table3,
    render_table3,
)
from repro.harness.perf import (
    PerfRow,
    render_perf,
    run_perf,
    summarize_perf,
)

__all__ = [
    "Table1Row",
    "run_table1",
    "render_table1",
    "Fig14Row",
    "run_fig14",
    "render_fig14",
    "Table2Row",
    "run_table2",
    "render_table2",
    "SCENARIOS",
    "Table3Scenario",
    "run_table3",
    "render_table3",
    "PerfRow",
    "run_perf",
    "render_perf",
    "summarize_perf",
]
