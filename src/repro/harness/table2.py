"""Paper Table 2: move insertion in the extreme case.

Force each benchmark all the way down to its lower bounds --
``PR = RegPCSBmax`` private registers and ``R = RegPmax`` total -- and
count the ``mov`` instructions the splitting allocator inserts.  The paper
reports overheads mostly within 10% of the instruction count and argues
this is affordable compared to spilling.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cache import get_cache
from repro.core.intra import IntraAllocator
from repro.harness.report import text_table
from repro.harness.sweep import sweep_map
from repro.suite.registry import BENCHMARKS, load


@dataclass
class Table2Row:
    name: str
    instructions: int
    min_pr: int
    min_r: int
    max_pr: int
    max_r: int
    moves: int

    @property
    def overhead(self) -> float:
        return self.moves / self.instructions if self.instructions else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {**asdict(self), "overhead": self.overhead}


def _table2_row(name: str) -> Table2Row:
    """One Table-2 row (module-level so sweeps can pickle it)."""
    program = load(name)
    analysis, bounds = get_cache().analyze_with_bounds(program)
    allocator = IntraAllocator(analysis, bounds)
    context = allocator.realize(bounds.min_pr, bounds.min_r - bounds.min_pr)
    return Table2Row(
        name=name,
        instructions=len(analysis.program.instrs),
        min_pr=bounds.min_pr,
        min_r=bounds.min_r,
        max_pr=bounds.max_pr,
        max_r=bounds.max_r,
        moves=context.move_cost(),
    )


def run_table2(
    names: Optional[Sequence[str]] = None, jobs: int = 1
) -> List[Table2Row]:
    """Realize the minimal allocation for each benchmark, counting moves."""
    return sweep_map(
        _table2_row, list(names or BENCHMARKS), jobs=jobs, label="table2"
    )


def render_table2(rows: Sequence[Table2Row]) -> str:
    headers = [
        "benchmark", "#instr", "MinPR", "MinR", "MaxPR", "MaxR",
        "#moves", "overhead%",
    ]
    table = [
        (
            r.name, r.instructions, r.min_pr, r.min_r, r.max_pr, r.max_r,
            r.moves, 100.0 * r.overhead,
        )
        for r in rows
    ]
    return (
        "Table 2: moves inserted at the minimal register allocation\n"
        + text_table(headers, table)
    )
