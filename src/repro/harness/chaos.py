"""The chaos harness: fault scenarios x kernels, with a hard gate.

Each :class:`Scenario` arms one deterministic fault plan
(:mod:`repro.resilience.faults`) and drives the subsystem that hosts
the fault site -- allocation pipeline, analysis cache, parallel sweep,
or simulator -- over real suite kernels.  Every run is classified:

``clean``
    no fault fired and the work succeeded (the baseline scenarios).
``masked``
    at least one fault fired, yet the work succeeded *and* the
    independent verifier (:func:`repro.core.verify.verify_outcome`)
    passed -- the degradation ladder absorbed the fault.
``typed-error``
    the work raised a :class:`~repro.errors.ReproError` subclass: the
    fault surfaced, but as a typed, documented failure.
``unhandled``
    anything else escaped -- an automatic gate failure.

The gate (:meth:`ChaosReport.ok`): every scenario's outcome matches its
expectation, and nothing is ever ``unhandled``.  Silent corruption
cannot pass -- scenarios that run the simulator compare observable
outputs against a fault-free oracle (run under
:func:`repro.resilience.faults.suspended`) and convert any divergence
into a typed :class:`~repro.errors.InjectedFault`; scenarios that
allocate run the verifier strictly, so a masked-but-wrong allocation
becomes a typed :class:`~repro.errors.VerificationError`.

Watchdog coverage rides along: the ``sim-stuck`` scenario injects a
wake-up that never arrives and the ``runaway-*`` scenarios run a
non-terminating program on each engine (reference, fast, and every
lane of a lockstep batch); all of them must end in
:class:`~repro.errors.WatchdogError`, never a hang.

CLI: ``repro chaos [--kernels a,b,c] [--scenarios x,y] [--seed N]
[--json OUT]`` -- exits non-zero when the gate fails (the CI
``chaos-smoke`` job runs exactly this).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import cache as cache_mod
from repro.core.pipeline import allocate_programs
from repro.core.verify import verify_outcome
from repro.errors import InjectedFault, ReproError, WatchdogError
from repro.ir.program import Program
from repro.resilience import faults, guard
from repro.resilience.faults import FaultSpec
from repro.suite.registry import load

#: Register budget for the two-thread chaos PUs (roomy on purpose: the
#: scenarios stress faults, not allocation pressure).
CHAOS_NREG = 96
#: Packet workload for the differential simulator runs.
CHAOS_PACKETS = 8
#: Cycle watchdog for every chaos simulation; the stuck-thread fault
#: jumps the clock past this instantly, so nothing ever wall-hangs.
CHAOS_MAX_CYCLES = 2_000_000


@dataclass(frozen=True)
class Scenario:
    """One named fault scenario."""

    name: str
    description: str
    specs: Tuple[FaultSpec, ...]
    #: ``clean`` / ``masked`` / ``typed-error`` / ``masked-or-error``.
    expect: str
    body: Callable[["_Ctx"], None]


@dataclass
class _Ctx:
    """Everything a scenario body needs."""

    programs: List[Program]
    nreg: int
    tmp_dir: Optional[str] = None


@dataclass
class ScenarioResult:
    """Outcome of one scenario on one kernel."""

    scenario: str
    kernel: str
    expect: str
    outcome: str
    error: str = ""
    fired: List[Dict[str, Any]] = field(default_factory=list)
    degradations: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if self.outcome == "unhandled":
            return False
        if self.expect == "masked-or-error":
            return self.outcome in ("masked", "typed-error")
        return self.outcome == self.expect

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "kernel": self.kernel,
            "expect": self.expect,
            "outcome": self.outcome,
            "ok": self.ok,
            "error": self.error,
            "fired": self.fired,
            "degradations": self.degradations,
        }


@dataclass
class ChaosReport:
    """Every scenario result of one chaos sweep."""

    results: List[ScenarioResult]
    seed: int

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "results": [r.to_dict() for r in self.results],
        }


# ----------------------------------------------------------------------
# Scenario bodies.
# ----------------------------------------------------------------------
def _body_alloc_verify(ctx: _Ctx) -> None:
    """Allocate and strictly verify (faults in the pipeline/analysis
    sites fire inside ``allocate_programs``)."""
    outcome = allocate_programs(ctx.programs, ctx.nreg)
    verify_outcome(outcome, packets_per_thread=CHAOS_PACKETS)


def _body_cache(ctx: _Ctx) -> None:
    """Warm the disk cache, drop the memory layer, reload through the
    armed ``cache.disk`` fault, then verify the re-allocation."""
    import pathlib

    cache = cache_mod.get_cache()
    cache.cache_dir = pathlib.Path(ctx.tmp_dir)
    allocate_programs(ctx.programs, ctx.nreg)
    cache.clear()  # force the next analyze through the disk layer
    outcome = allocate_programs(ctx.programs, ctx.nreg)
    verify_outcome(outcome, packets_per_thread=CHAOS_PACKETS)


def _sweep_worker(x: int) -> int:
    """Module-level (picklable) sweep worker."""
    return x * x


def _body_sweep(ctx: _Ctx) -> None:
    """Run a parallel sweep through the armed ``sweep.pool`` fault and
    require the recovered results to be exactly the serial answer."""
    import warnings

    from repro.harness.sweep import sweep_map

    items = list(range(8))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        got = sweep_map(_sweep_worker, items, jobs=2, label="chaos")
    if got != [x * x for x in items]:
        raise InjectedFault(
            f"sweep returned corrupted results after pool fault: {got}"
        )


def _body_fabric(ctx: _Ctx) -> None:
    """Kill a fabric worker mid-item, then resume the run directory.

    The armed ``fabric.item`` fault raises *after the claim, before the
    execution* -- a worker dying mid-item, claim left on disk.  The
    resume (same pid, so never dead-pid stale) must reap that claim
    through ttl expiry, execute exactly the complement, and merge to
    the serial answer.
    """
    import pathlib

    from repro import fabric

    items = list(range(6))
    serial = [x * x for x in items]
    root = pathlib.Path(ctx.tmp_dir) / "fabric"
    run = fabric.RunDir.plan(root, _sweep_worker, items, label="chaos-fabric")
    try:
        fabric.execute(run, fn=_sweep_worker, workers=1)
    except InjectedFault:
        pass  # the injected worker death; its claim is still on disk
    else:
        raise InjectedFault("fabric.item crash fault never fired")
    done_before = len(run.completed_ids())
    # ttl=0: any claim age counts as expired, so the orphaned claim is
    # stolen immediately instead of waiting out a real ttl.
    fabric.execute(run, fn=_sweep_worker, workers=1, ttl=0.0)
    if len(run.completed_ids()) - done_before != len(items) - done_before:
        raise InjectedFault("fabric resume did not complete the spool")
    got = fabric.merge_results(run)
    if got != serial:
        raise InjectedFault(
            f"fabric resume returned corrupted results: {got}"
        )


def _body_sim(ctx: _Ctx) -> None:
    """Allocated paranoid run with simulator faults armed, compared
    against a fault-free oracle; divergence becomes a typed error."""
    from repro.sim.run import outputs_match, run_reference, run_threads

    with faults.suspended():
        outcome = allocate_programs(ctx.programs, ctx.nreg)
        oracle = run_reference(
            outcome.source_programs,
            packets_per_thread=CHAOS_PACKETS,
            nreg=ctx.nreg,
            engine="reference",
            max_cycles=CHAOS_MAX_CYCLES,
        )
    allocated = run_threads(
        outcome.programs,
        packets_per_thread=CHAOS_PACKETS,
        nreg=ctx.nreg,
        assignment=outcome.assignment,
        engine="reference",
        max_cycles=CHAOS_MAX_CYCLES,
    )
    if not outputs_match(oracle, allocated):
        raise InjectedFault(
            "injected register corruption reached observable outputs"
        )


def _spin_program() -> Program:
    from repro.ir.parser import parse_program

    return parse_program("spin:\n br spin\n", "spin")


def _body_runaway_reference(ctx: _Ctx) -> None:
    from repro.sim.machine import Machine

    Machine([_spin_program()]).run(max_cycles=5_000)


def _body_runaway_fast(ctx: _Ctx) -> None:
    from repro.sim.fast import FastMachine

    FastMachine([_spin_program()]).run(max_cycles=5_000)


def _body_runaway_batch(ctx: _Ctx) -> None:
    """Every lane of a lockstep batch must trip the watchdog *per lane*
    (healthy-lane isolation is the batch engine's contract) -- and the
    typed error must surface, never a hang.

    The batch engine refuses to run under an armed fault plan (faults
    are per-machine, lanes share dispatch), so the run itself goes
    through :func:`~repro.resilience.faults.suspended`; the watchdog
    being exercised here is the real one, not an injection.
    """
    from repro.sim.engine import _batch_machine_class

    BatchMachine = _batch_machine_class()
    with faults.suspended():
        results = BatchMachine([_spin_program()], n_lanes=4).run_batch(
            max_cycles=5_000
        )
    bad = [r.lane for r in results if not isinstance(r.error, WatchdogError)]
    if bad:
        raise InjectedFault(f"batch lanes {bad} escaped the cycle watchdog")
    raise results[0].error


def _service_doc(ctx: _Ctx, nreg: int) -> Dict[str, Any]:
    """A service request for the scenario's programs at ``nreg``."""
    from repro.ir.printer import format_program

    return {
        "programs": [
            {"asm": format_program(p), "name": f"t{i}"}
            for i, p in enumerate(ctx.programs)
        ],
        "nreg": nreg,
    }


def _service_expected(ctx: _Ctx, nreg: int) -> Dict[str, Any]:
    """The direct-pipeline payload oracle, computed fault-free."""
    from repro.ir.parser import parse_program
    from repro.ir.printer import format_program
    from repro.service import protocol as sproto

    with faults.suspended():
        programs = [
            parse_program(format_program(p), f"t{i}")
            for i, p in enumerate(ctx.programs)
        ]
        return sproto.outcome_payload(allocate_programs(programs, nreg))


def _body_service_handler(ctx: _Ctx) -> None:
    """A worker dies mid-request; the caller gets a *typed* envelope,
    and an immediate retry serves the byte-identical healthy payload."""
    from repro.service.server import ServiceConfig, ServiceCore

    core = ServiceCore(ServiceConfig(workers=1, queue_depth=4))
    core.start()
    try:
        doc = _service_doc(ctx, ctx.nreg)
        status, envelope = core.submit(doc)
        if status != 500 or envelope["error"]["type"] != "InjectedFault":
            raise InjectedFault(
                f"handler fault did not surface as a typed envelope: "
                f"HTTP {status}, {envelope.get('error')}"
            )
        status, envelope = core.submit(doc)
        if status != 200:
            raise InjectedFault(
                f"retry after the handler fault failed: "
                f"{envelope['error']}"
            )
        if envelope["result"] != _service_expected(ctx, ctx.nreg):
            raise InjectedFault(
                "service payload diverged from the direct pipeline call"
            )
    finally:
        core.drain(5.0)


def _body_service_store(ctx: _Ctx) -> None:
    """The result store's disk write fails mid-request; the request
    still succeeds, the memory overlay keeps replay idempotent, and the
    payload stays byte-identical to the direct call."""
    import pathlib

    from repro.service.server import ServiceConfig, ServiceCore

    store_dir = pathlib.Path(ctx.tmp_dir) / "service-store"
    core = ServiceCore(
        ServiceConfig(workers=1, queue_depth=4, store_dir=str(store_dir))
    )
    core.start()
    try:
        doc = _service_doc(ctx, ctx.nreg)
        status, envelope = core.submit(doc)
        if status != 200:
            raise InjectedFault(
                f"request failed on an injected store write fault "
                f"(the breaker should absorb it): {envelope['error']}"
            )
        status, replay = core.submit(doc)
        if status != 200 or not replay["cached"] \
                or replay["result"] != envelope["result"]:
            raise InjectedFault(
                "memory overlay did not cover the failed disk write"
            )
        if envelope["result"] != _service_expected(ctx, ctx.nreg):
            raise InjectedFault(
                "service payload diverged from the direct pipeline call"
            )
    finally:
        core.drain(5.0)


def _body_service_breaker(ctx: _Ctx) -> None:
    """Repeated store failures trip the circuit breaker (requests keep
    succeeding memory-only); after the cooldown the half-open probe
    recovers it and disk persistence resumes."""
    import pathlib

    from repro.service.server import ServiceConfig, ServiceCore

    clk = {"t": 0.0}
    store_dir = pathlib.Path(ctx.tmp_dir) / "service-store"
    core = ServiceCore(
        ServiceConfig(
            workers=1,
            queue_depth=8,
            store_dir=str(store_dir),
            breaker_threshold=2,
            breaker_cooldown=5.0,
        ),
        clock=lambda: clk["t"],
    )
    core.start()
    try:
        # Distinct budgets -> distinct keys -> one store write each
        # (growing, so every budget stays feasible).
        for nreg in (ctx.nreg, ctx.nreg + 8):
            status, envelope = core.submit(_service_doc(ctx, nreg))
            if status != 200:
                raise InjectedFault(
                    f"request failed during store faults: "
                    f"{envelope['error']}"
                )
        if core.breakers["store"].state != "open":
            raise InjectedFault(
                "store breaker did not trip after repeated write "
                f"failures (state: {core.breakers['store'].state})"
            )
        clk["t"] += 6.0  # past the cooldown: next call is the probe
        status, envelope = core.submit(_service_doc(ctx, ctx.nreg + 16))
        if status != 200:
            raise InjectedFault(
                f"half-open probe request failed: {envelope['error']}"
            )
        if core.breakers["store"].state != "closed":
            raise InjectedFault(
                "store breaker did not recover after the cooldown "
                f"probe (state: {core.breakers['store'].state})"
            )
        if not list(store_dir.glob("*.json")):
            raise InjectedFault(
                "recovered store never persisted an entry to disk"
            )
        if envelope["result"] != _service_expected(ctx, ctx.nreg + 16):
            raise InjectedFault(
                "service payload diverged from the direct pipeline call"
            )
    finally:
        core.drain(5.0)


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="baseline",
        description="no faults: allocate, verify, differential run",
        specs=(),
        expect="clean",
        body=_body_sim,
    ),
    Scenario(
        name="analyze-transient",
        description="one transient analysis blip, absorbed by retry",
        specs=(FaultSpec("pipeline.analyze", mode="transient", count=1),),
        expect="masked",
        body=_body_alloc_verify,
    ),
    Scenario(
        name="analyze-transient-storm",
        description="transient analysis failures outlasting the retry "
        "budget surface as a typed TransientError",
        specs=(FaultSpec("pipeline.analyze", mode="transient", count=3),),
        expect="typed-error",
        body=_body_alloc_verify,
    ),
    Scenario(
        name="dense-analysis-fault",
        description="dense kernel raises; degraded to the reference "
        "analysis implementation",
        specs=(FaultSpec("analysis.dense", mode="error", count=1),),
        expect="masked",
        body=_body_alloc_verify,
    ),
    Scenario(
        name="cache-corrupt",
        description="corrupted disk cache entry is quarantined and "
        "recomputed",
        specs=(FaultSpec("cache.disk", mode="corrupt", count=1),),
        expect="masked",
        body=_body_cache,
    ),
    Scenario(
        name="cache-truncate",
        description="truncated disk cache entry is quarantined and "
        "recomputed",
        specs=(FaultSpec("cache.disk", mode="truncate", count=1),),
        expect="masked",
        body=_body_cache,
    ),
    Scenario(
        name="sweep-pool-crash",
        description="process pool breaks mid-sweep; missing items "
        "finish serially with correct results",
        specs=(FaultSpec("sweep.pool", mode="crash", count=1),),
        expect="masked",
        body=_body_sweep,
    ),
    Scenario(
        name="sweep-pool-hang",
        description="a sweep worker hangs; the pool is abandoned and "
        "the sweep finishes serially",
        specs=(FaultSpec("sweep.pool", mode="hang", count=1),),
        expect="masked",
        body=_body_sweep,
    ),
    Scenario(
        name="fabric-worker-crash",
        description="a fabric worker dies mid-item leaving its claim; "
        "resume steals the stale claim and completes exactly the "
        "complement with serial-identical results",
        specs=(FaultSpec("fabric.item", mode="crash", count=1),),
        expect="masked",
        body=_body_fabric,
    ),
    Scenario(
        name="sim-stuck",
        description="a blocked thread's wake-up never arrives; the "
        "cycle watchdog fires instead of hanging",
        specs=(FaultSpec("sim.stuck", mode="stuck", after=2, count=1),),
        expect="typed-error",
        body=_body_sim,
    ),
    Scenario(
        name="sim-bitflip",
        description="a register bit flips at a context switch; caught "
        "by the paranoid checker or the differential oracle, or "
        "provably benign",
        specs=(FaultSpec("sim.bitflip", mode="bitflip", after=1, count=1),),
        expect="masked-or-error",
        body=_body_sim,
    ),
    Scenario(
        name="service-handler-fault",
        description="a service worker dies mid-request; the caller "
        "gets a typed envelope and the retry serves the byte-identical "
        "healthy payload",
        specs=(FaultSpec("service.handler", mode="error", count=1),),
        expect="masked",
        body=_body_service_handler,
    ),
    Scenario(
        name="service-store-fault",
        description="the result store's disk write fails; the breaker "
        "absorbs it, the memory overlay keeps replay idempotent, and "
        "the payload matches the direct pipeline call",
        specs=(FaultSpec("service.store", mode="error", count=1),),
        expect="masked",
        body=_body_service_store,
    ),
    Scenario(
        name="service-breaker-trip",
        description="repeated store failures trip the circuit breaker "
        "(requests keep succeeding memory-only); the cooldown probe "
        "recovers it and disk persistence resumes",
        specs=(FaultSpec("service.store", mode="error", count=2),),
        expect="masked",
        body=_body_service_breaker,
    ),
    Scenario(
        name="runaway-reference",
        description="non-terminating program on the reference engine "
        "trips the watchdog",
        specs=(),
        expect="typed-error",
        body=_body_runaway_reference,
    ),
    Scenario(
        name="runaway-fast",
        description="non-terminating program on the fast engine trips "
        "the watchdog",
        specs=(),
        expect="typed-error",
        body=_body_runaway_fast,
    ),
    Scenario(
        name="runaway-batch",
        description="non-terminating program on the batch engine trips "
        "the watchdog in every lane, surfacing per-lane typed errors",
        specs=(),
        expect="typed-error",
        body=_body_runaway_batch,
    ),
)

_BY_NAME = {s.name: s for s in SCENARIOS}

#: Scenarios that only exercise the simulator watchdog and need no
#: per-kernel repetition (the kernel programs are not even used).
_KERNEL_FREE = frozenset(
    {"runaway-reference", "runaway-fast", "runaway-batch"}
)


def _scenario_seed(base: int, scenario: str, kernel: str) -> int:
    """Deterministic per-(scenario, kernel) fault seed."""
    return base ^ zlib.crc32(f"{scenario}:{kernel}".encode())


def run_scenario(
    scenario: Scenario,
    kernel: str,
    seed: int = 0,
    nreg: int = CHAOS_NREG,
) -> ScenarioResult:
    """Run one scenario against a two-thread PU of ``kernel`` copies."""
    import tempfile

    from repro.core.dense import set_default_analysis_impl

    programs = (
        [] if scenario.name in _KERNEL_FREE else [load(kernel), load(kernel)]
    )
    result = ScenarioResult(
        scenario=scenario.name,
        kernel=kernel,
        expect=scenario.expect,
        outcome="clean",
    )
    previous_impl = set_default_analysis_impl("dense")
    try:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            ctx = _Ctx(programs=programs, nreg=nreg, tmp_dir=tmp)
            # Fresh cache per scenario: earlier scenarios must not have
            # pre-warmed the fingerprints this one wants to fault on.
            with cache_mod.scoped(), guard.watching() as degs:
                with faults.inject(
                    *scenario.specs,
                    seed=_scenario_seed(seed, scenario.name, kernel),
                ) as plan:
                    try:
                        scenario.body(ctx)
                    except ReproError as exc:
                        result.outcome = "typed-error"
                        result.error = f"{type(exc).__name__}: {exc}"
                    except Exception as exc:  # the gate's red line
                        result.outcome = "unhandled"
                        result.error = f"{type(exc).__name__}: {exc}"
                    else:
                        result.outcome = "masked" if plan.fired else "clean"
                result.fired = [r.to_dict() for r in plan.fired]
            result.degradations = [d.to_dict() for d in degs]
    finally:
        set_default_analysis_impl(previous_impl)
    return result


def run_chaos(
    kernels: Sequence[str] = ("crc", "frag", "md5"),
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    nreg: int = CHAOS_NREG,
) -> ChaosReport:
    """Sweep ``scenarios`` (default: all) over ``kernels``."""
    chosen: List[Scenario] = []
    for name in scenarios if scenarios is not None else _BY_NAME:
        if name not in _BY_NAME:
            known = ", ".join(_BY_NAME)
            raise ValueError(f"unknown scenario {name!r}; known: {known}")
        chosen.append(_BY_NAME[name])
    results: List[ScenarioResult] = []
    for scenario in chosen:
        targets = ["-"] if scenario.name in _KERNEL_FREE else list(kernels)
        for kernel in targets:
            results.append(run_scenario(scenario, kernel, seed=seed, nreg=nreg))
    return ChaosReport(results=results, seed=seed)


def render_chaos(report: ChaosReport) -> str:
    """Human-readable scenario table plus the gate verdict."""
    lines = [
        f"{'scenario':26} {'kernel':8} {'expect':16} {'outcome':12} ok",
        "-" * 70,
    ]
    for r in report.results:
        mark = "yes" if r.ok else "NO"
        lines.append(
            f"{r.scenario:26} {r.kernel:8} {r.expect:16} {r.outcome:12} {mark}"
        )
        if r.error and not r.ok:
            lines.append(f"    {r.error}")
    lines.append("")
    lines.append(f"chaos gate: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)
