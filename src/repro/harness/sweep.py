"""Parallel sweep executor for embarrassingly parallel harness points.

Every paper artifact is a sweep: Table 1 over kernels, Table 2 over
kernels at their lower bounds, Table 3 over scenarios, Figure 14 over
benchmarks, the ablation over register budgets.  The points are
independent, so :func:`sweep_map` runs them through a
``ProcessPoolExecutor`` while keeping the results in submission order --
the output is positionally identical to ``[fn(x) for x in items]``.

Degradation is deliberate and quiet-but-visible -- the
``sweep.parallel_to_serial`` rung of the ladder in
:mod:`repro.resilience.guard`:

* ``jobs <= 1`` (or a single item) runs serially with no pool at all --
  the default, and the only mode used by tier-1 tests;
* a pool that cannot be *built or fed* (fork unavailable, unpicklable
  worker, a worker killed by the OS) emits a ``RuntimeWarning`` plus
  ``sweep.fallback`` / ``resilience.degrade`` telemetry and finishes
  the sweep serially -- but **only the items that have no result yet**
  are rerun.  Items whose futures already completed keep their pool
  results, so side effects (and telemetry) are not double-counted for
  work that succeeded before the pool broke.  The only way to lose
  results is a genuine error in ``fn`` itself -- which then raises
  exactly as it would have serially.
* ``timeout`` bounds the whole parallel phase in wall seconds; on
  expiry the pool is abandoned (``cancel_futures``) and the missing
  items run serially.  An item genuinely hung *inside* ``fn`` will
  then hang the serial rerun too -- the timeout protects against stuck
  pool infrastructure, not against a non-terminating ``fn``.

Workers must be module-level callables (picklable); pair with
``functools.partial`` to bind per-sweep constants.  The parent-side
result harvest carries the ``sweep.pool`` fault-injection site
(:mod:`repro.resilience.faults`): mode ``crash`` breaks the pool,
mode ``hang`` expires the timeout.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Callable, List, Optional, Sequence, TypeVar, Union

from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import faults, guard

T = TypeVar("T")
R = TypeVar("R")

#: Pool-infrastructure failures that trigger the serial fallback.  A
#: worker raising an application error (e.g. ``AllocationError``) is
#: NOT meant to be in this set -- though even if one overlaps (an
#: ``fn`` legitimately raising ``AttributeError``/``TypeError``), the
#: serial rerun re-raises it faithfully, just without the pool.
#: ``AttributeError``/``TypeError`` are here because that is what the
#: multiprocessing feeder surfaces for unpicklable callables (lambdas,
#: closures) instead of ``PicklingError``.
_POOL_FAILURES: tuple = (
    OSError,
    NotImplementedError,
    ImportError,
    AttributeError,
    TypeError,
)


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the visible CPU count."""
    return os.cpu_count() or 1


def _pool_failure_types() -> tuple:
    """Lazily extend :data:`_POOL_FAILURES` with concurrent.futures types."""
    try:
        from concurrent.futures.process import BrokenProcessPool

        return _POOL_FAILURES + (BrokenProcessPool, pickle.PicklingError)
    except ImportError:  # pragma: no cover - stdlib always has it
        return _POOL_FAILURES + (pickle.PicklingError,)


def _note_fallback(label: str, reason: str, missing: int) -> None:
    warnings.warn(
        f"sweep {label!r}: process pool unavailable ({reason}); "
        f"finishing {missing} item(s) serially",
        RuntimeWarning,
        stacklevel=3,
    )
    guard.record_degradation(
        "sweep.parallel_to_serial", reason=reason, label=label, missing=missing
    )
    em = obs.get_emitter()
    if em.enabled:
        em.emit("sweep.fallback", label=label, reason=reason, missing=missing)
        obs_metrics.registry().counter("sweep.fallback").inc()


class _TelemetryTask:
    """Picklable worker wrapper that ships telemetry back to the parent.

    Child processes start with a fresh (empty, disabled) telemetry
    state, so whatever a worker records would normally die with the
    worker.  When the parent has an active emitter, :func:`sweep_map`
    wraps ``fn`` in this task: the child runs under its own scoped
    registry **and** an active capture emitter -- so the worker takes
    the same instrumented code paths the parent would serially (engine
    auto-selection included) -- and returns ``(result, snapshot)``.
    The parent merges the snapshot into its own registry labeled by
    sweep and item index (``{sweep="...",item="N"}``).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(self, item: T):
        with obs_metrics.scoped() as reg, obs.capture():
            result = self.fn(item)
        return result, reg.snapshot()


class _ChunkTask:
    """Picklable wrapper running a whole *chunk* of items in one worker.

    Chunked submission amortizes pickle/IPC overhead: one future per
    chunk instead of one per item.  Telemetry stays **per item** -- each
    item runs under its own scoped registry + capture, exactly like
    :class:`_TelemetryTask`, so the parent-side merge labels are
    indistinguishable from unchunked submission.
    """

    __slots__ = ("fn", "telemetry")

    def __init__(self, fn: Callable[[T], R], telemetry: bool):
        self.fn = fn
        self.telemetry = telemetry

    def __call__(self, chunk: List[T]) -> list:
        out: list = []
        for item in chunk:
            if self.telemetry:
                with obs_metrics.scoped() as reg, obs.capture():
                    result = self.fn(item)
                out.append((result, reg.snapshot()))
            else:
                out.append(self.fn(item))
        return out


def _merge_worker_snapshot(label: str, index: int, snap: dict) -> None:
    obs_metrics.registry().merge_snapshot(
        snap, labels={"sweep": label, "item": index}
    )


def _fire_pool_fault() -> None:
    """Parent-side ``sweep.pool`` fault site (consulted per harvested
    result): simulate the pool breaking or a worker hanging."""
    spec = faults.fire("sweep.pool")
    if spec is None:
        return
    if spec.mode == "hang":
        from concurrent.futures import TimeoutError as FuturesTimeout

        raise FuturesTimeout("injected worker hang")
    from concurrent.futures.process import BrokenProcessPool

    raise BrokenProcessPool("injected pool crash")


def _fabric_sweep(
    fn: Callable[[T], R],
    items: List[T],
    label: str,
    route: tuple,
    timeout: Optional[float],
) -> List[R]:
    """Run one sweep through :mod:`repro.fabric`, with serial fallback.

    Fabric *infrastructure* failures (unusable run dir, deadline, a
    foreign worker holding the tail) degrade exactly like a broken
    pool: items already spooled keep their results, only the missing
    complement reruns serially -- and the serial results are spooled
    back best-effort so the run directory still converges.  Genuine
    ``fn`` errors re-raise, as serially.
    """
    from pathlib import Path

    from repro import fabric
    from repro.errors import DeadlineExceeded, FabricError

    root, workers = route
    run = None
    manifest = None
    try:
        manifest = fabric.build_manifest(fn, items, label=label)
        run = fabric.RunDir.plan(
            Path(root) / f"{label}-{manifest.manifest_id[:12]}",
            fn,
            items,
            label=label,
            manifest=manifest,
        )
        fabric.execute(run, fn=fn, workers=workers, timeout=timeout)
        return fabric.merge_results(run)
    except (FabricError, OSError, DeadlineExceeded) as exc:
        reason = f"{type(exc).__name__}: {exc}"
        results: List[Optional[R]] = [None] * len(items)
        done = [False] * len(items)
        if run is not None:
            try:
                results, done = fabric.partial_results(run)
            except (FabricError, OSError):
                pass
        missing = [i for i, ok in enumerate(done) if not ok]
        _note_fallback(label, reason, len(missing))
        for i in missing:
            results[i] = fn(items[i])
            if run is None or manifest is None:
                continue
            entry = manifest.items[i]
            if "alias_of" in entry:
                continue
            try:
                run.write_result(
                    entry["id"], i, results[i], worker="serial-fallback",
                    seconds=0.0,
                )
            except (OSError, FabricError, TypeError, ValueError):
                pass  # the answer is in hand; durability is best-effort
        return list(results)  # type: ignore[arg-type]


def sweep_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Union[int, str] = 1,
    label: str = "sweep",
    timeout: Optional[float] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, parallel over ``jobs`` processes.

    Results come back in submission order regardless of completion
    order, so a parallel sweep is positionally indistinguishable from
    the serial one.  See the module docstring for the fallback rules.

    ``jobs="fabric"`` (or any ``jobs > 1`` while a fabric root is
    configured, see :func:`repro.fabric.set_fabric`) routes the sweep
    through the durable :mod:`repro.fabric` instead of an ephemeral
    pool.  ``chunksize`` groups items per pool submission
    (default heuristic ``max(1, len(items) // (jobs * 4))``) to cut
    pickle/IPC overhead on large fine-grained sweeps; order, telemetry
    labels, and fallback semantics are unchanged.
    """
    items = list(items)
    if len(items) > 1 and (
        jobs == "fabric" or (isinstance(jobs, int) and jobs > 1)
    ):
        from repro import fabric

        route = fabric.resolve(jobs)
        if route is not None:
            return _fabric_sweep(fn, items, label, route, timeout)
    if not isinstance(jobs, int) or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: List[Optional[R]] = [None] * len(items)
    done = [False] * len(items)
    try:
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures import as_completed
        from concurrent.futures import ProcessPoolExecutor
    except ImportError as exc:  # pragma: no cover - stdlib always has it
        _note_fallback(label, f"{type(exc).__name__}: {exc}", len(items))
        return [fn(item) for item in items]

    # With an active parent emitter, ship each worker's metrics home
    # (see _TelemetryTask / _ChunkTask); the serial fallback path below
    # calls the bare ``fn``, which records into the parent registry
    # directly.
    telemetry = obs.get_emitter().enabled
    if chunksize is None:
        chunksize = max(1, len(items) // (jobs * 4))
    chunksize = max(1, chunksize)
    chunked = chunksize > 1
    if chunked:
        task: Callable = _ChunkTask(fn, telemetry)
        units = [
            (start, items[start : start + chunksize])
            for start in range(0, len(items), chunksize)
        ]
    else:
        task = _TelemetryTask(fn) if telemetry else fn
        units = [(i, item) for i, item in enumerate(items)]

    def harvest(i: int, raw) -> None:
        if done[i]:
            return  # never double-merge telemetry for a harvested item
        if telemetry:
            result, snap = raw
            _merge_worker_snapshot(label, i, snap)
            results[i] = result
        else:
            results[i] = raw
        done[i] = True

    def harvest_unit(start: int, raw) -> None:
        if chunked:
            for offset, payload in enumerate(raw):
                harvest(start + offset, payload)
        else:
            harvest(start, raw)

    pool = None
    futures: dict = {}
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(units)))
        futures = {
            pool.submit(task, unit): start for start, unit in units
        }
        for future in as_completed(futures, timeout=timeout):
            harvest_unit(futures[future], future.result())  # errors re-raise
            _fire_pool_fault()
        pool.shutdown(wait=True)
        return list(results)  # type: ignore[arg-type]
    except (_pool_failure_types() + (FuturesTimeout,)) as exc:
        reason = f"{type(exc).__name__}: {exc}"
        if pool is not None:
            if isinstance(exc, FuturesTimeout):
                # Abandon a (possibly hung) pool without waiting on it.
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        # Harvest futures that finished despite the failure: their work
        # is done and must not be re-executed (double side effects).
        for future, start in futures.items():
            if not future.done() or future.cancelled():
                continue
            try:
                harvest_unit(start, future.result(timeout=0))
            except BaseException:
                pass  # rerun the chunk's unharvested items serially
        missing = [i for i, ok in enumerate(done) if not ok]
        _note_fallback(label, reason, len(missing))
        for i in missing:
            results[i] = fn(items[i])
        return list(results)  # type: ignore[arg-type]
