"""Parallel sweep executor for embarrassingly parallel harness points.

Every paper artifact is a sweep: Table 1 over kernels, Table 2 over
kernels at their lower bounds, Table 3 over scenarios, Figure 14 over
benchmarks, the ablation over register budgets.  The points are
independent, so :func:`sweep_map` runs them through a
``ProcessPoolExecutor`` while keeping the results in submission order --
the output is positionally identical to ``[fn(x) for x in items]``.

Degradation is deliberate and quiet-but-visible:

* ``jobs <= 1`` (or a single item) runs serially with no pool at all --
  the default, and the only mode used by tier-1 tests;
* a pool that cannot be *built or fed* (fork unavailable, unpicklable
  worker, a worker killed by the OS) emits a ``RuntimeWarning`` plus a
  ``sweep.fallback`` telemetry event and re-runs the whole sweep
  serially, so the only way to lose results is a genuine error in
  ``fn`` itself -- which then raises exactly as it would have serially.

Workers must be module-level callables (picklable); pair with
``functools.partial`` to bind per-sweep constants.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Any, Callable, List, Sequence, TypeVar

from repro.obs import events as obs
from repro.obs import metrics as obs_metrics

T = TypeVar("T")
R = TypeVar("R")

#: Pool-infrastructure failures that trigger the serial fallback.  A
#: worker raising an application error (e.g. ``AllocationError``) is
#: NOT meant to be in this set -- though even if one overlaps (an
#: ``fn`` legitimately raising ``AttributeError``/``TypeError``), the
#: serial rerun re-raises it faithfully, just without the pool.
#: ``AttributeError``/``TypeError`` are here because that is what the
#: multiprocessing feeder surfaces for unpicklable callables (lambdas,
#: closures) instead of ``PicklingError``.
_POOL_FAILURES: tuple = (
    OSError,
    NotImplementedError,
    ImportError,
    AttributeError,
    TypeError,
)


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the visible CPU count."""
    return os.cpu_count() or 1


def _pool_failure_types() -> tuple:
    """Lazily extend :data:`_POOL_FAILURES` with concurrent.futures types."""
    try:
        from concurrent.futures.process import BrokenProcessPool

        return _POOL_FAILURES + (BrokenProcessPool, pickle.PicklingError)
    except ImportError:  # pragma: no cover - stdlib always has it
        return _POOL_FAILURES + (pickle.PicklingError,)


def _note_fallback(label: str, reason: str) -> None:
    em = obs.get_emitter()
    if em.enabled:
        em.emit("sweep.fallback", label=label, reason=reason)
        obs_metrics.registry().counter("sweep.fallback").inc()


def sweep_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    label: str = "sweep",
) -> List[R]:
    """``[fn(x) for x in items]``, parallel over ``jobs`` processes.

    Results come back in submission order regardless of completion
    order, so a parallel sweep is positionally indistinguishable from
    the serial one.  See the module docstring for the fallback rules.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            # Executor.map preserves input order; chunksize=1 keeps the
            # points independently schedulable (they are coarse-grained).
            return list(pool.map(fn, items, chunksize=1))
    except _pool_failure_types() as exc:
        reason = f"{type(exc).__name__}: {exc}"
        warnings.warn(
            f"sweep {label!r}: process pool unavailable ({reason}); "
            "falling back to a serial run",
            RuntimeWarning,
            stacklevel=2,
        )
        _note_fallback(label, reason)
        return [fn(item) for item in items]
