"""The regression sentinel: per-metric trend reports over the run ledger.

Five PRs of performance work are banked in this repo -- the fast engine
(~5.8x), the warm allocation cache (~6.7x), the dense analysis kernels
(~15.4x) -- and until now nothing *watched* them.  This module reads two
sources:

* the committed ``benchmarks/out/BENCH_*.json`` snapshots (the
  reproducible reference measurements, one point per bench), and
* the append-only run ledger (:mod:`repro.obs.ledger`), which
  accumulates one row per benchmark run across sessions and machines,

extracts the **watched metrics** (:data:`WATCHED`: speedups, cycle
counts, move counts, register savings), and renders a per-metric
trajectory with a regression verdict.  ``repro bench trend --gate``
turns the verdict into an exit code, making it a CI gate.

The gate is noise-aware: the baseline is the *median* of all prior
points, and the effective threshold is the larger of the requested
``--threshold`` percentage and twice the relative median-absolute-
deviation of those prior points -- a metric that historically jitters
by 15% does not alarm at a 10% dip.  A metric with fewer than two
points is reported but never gated (there is nothing to compare).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

SCHEMA_TREND = "repro.trend/1"

PathLike = Union[str, pathlib.Path]

#: Watched metric -> direction of goodness.  ``higher`` regresses when
#: the latest value drops below baseline, ``lower`` when it climbs.
WATCHED: Dict[str, str] = {
    "sim.speedup": "higher",            # fast engine vs reference (perf)
    "sim.fast_ips": "higher",           # fast-engine instructions/s
    "sim.batch_speedup": "higher",      # one batch vs N fast runs (batch)
    "sim.batch_ips": "higher",          # batch-engine instructions/s
    "alloc.warm_speedup": "higher",     # warm cache vs cold pipeline
    "alloc.parallel_speedup": "higher",  # parallel sweep vs cold serial
    "alloc.descent_speedup": "higher",  # shared descent vs per-budget
    "analysis.speedup": "higher",       # dense analysis vs reference
    "analysis.e2e_speedup": "higher",   # dense cold end-to-end
    "fabric.speedup": "higher",         # durable fabric vs cold serial
    "table1.cycles_per_iter": "lower",  # suite-total simulated cycles/iter
    "table2.total_moves": "lower",      # allocator move instructions
    "table2.max_overhead": "lower",     # worst per-kernel move overhead
    "table3.cycle_change": "lower",     # mean MRA cycle change (sharing)
    "fig14.avg_saving": "higher",       # mean register saving vs baseline
}


def watched_from_bench(bench: str, data: Any) -> Dict[str, float]:
    """Extract the watched scalar metrics from one bench's ``data``.

    ``bench`` is the artifact name (``perf``, ``batch``, ``alloc``,
    ``analysis``, ``fabric``, ``table1``, ``table2``, ``table3`` or
    ``table3_<pair>``, ``fig14``);
    ``data`` the same payload that goes into ``BENCH_<name>.json``.
    Unknown benches (the ablations) yield ``{}`` -- they are explored,
    not gated.
    """
    out: Dict[str, float] = {}
    try:
        if bench == "perf":
            summary = data["summary"]
            out["sim.speedup"] = float(summary["speedup"])
            out["sim.fast_ips"] = float(summary["fast_ips"])
        elif bench == "batch":
            summary = data["summary"]
            # A batch whose lanes diverged from the scalar runs has a
            # meaningless speedup; report nothing rather than a number
            # the trend gate would happily accept.
            if summary["lanes_identical"]:
                out["sim.batch_speedup"] = float(summary["speedup"])
                out["sim.batch_ips"] = float(summary["batch_ips"])
        elif bench == "alloc":
            out["alloc.warm_speedup"] = float(data["warm_speedup"])
            out["alloc.parallel_speedup"] = float(data["parallel_speedup"])
            # Older BENCH_alloc.json payloads predate the descent
            # section; ``.get`` keeps their warm/parallel metrics
            # watched instead of voiding the whole extraction.  A
            # diverged descent reports nothing, like the batch bench.
            descent = data.get("descent_speedup")
            if isinstance(descent, (int, float)) and data.get(
                "descent_identical", False
            ):
                out["alloc.descent_speedup"] = float(descent)
        elif bench == "analysis":
            out["analysis.speedup"] = float(data["analysis_speedup"])
            out["analysis.e2e_speedup"] = float(data["e2e_speedup"])
        elif bench == "fabric":
            # A fabric whose merged summaries diverged from serial has
            # a meaningless speedup; report nothing, like batch.
            if data["identical"]:
                out["fabric.speedup"] = float(data["fabric_speedup"])
        elif bench == "table1":
            out["table1.cycles_per_iter"] = float(
                sum(row["cycles_per_iter"] for row in data)
            )
        elif bench == "table2":
            out["table2.total_moves"] = float(
                sum(row["moves"] for row in data)
            )
            out["table2.max_overhead"] = float(
                max(row["overhead"] for row in data)
            )
        elif bench == "table3" or bench.startswith("table3_"):
            scenarios = data if isinstance(data, list) else [data]
            changes = [
                t["cycle_change"] for sc in scenarios for t in sc["threads"]
            ]
            if changes:
                out["table3.cycle_change"] = float(
                    sum(changes) / len(changes)
                )
        elif bench == "fig14":
            savings = [row["saving"] for row in data]
            if savings:
                out["fig14.avg_saving"] = float(sum(savings) / len(savings))
    except (KeyError, TypeError, ValueError):
        # A bench whose shape moved on is simply not watched until the
        # extractor catches up; the sentinel must never crash a run.
        return {}
    return out


@dataclass
class TrendPoint:
    """One observation of one watched metric."""

    value: float
    source: str  #: ``"committed"`` (BENCH_*.json) or ``"ledger"``
    ts: Optional[float] = None
    commit: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "source": self.source,
            "ts": self.ts,
            "commit": self.commit,
        }


@dataclass
class MetricTrend:
    """The trajectory and verdict for one watched metric."""

    metric: str
    direction: str
    points: List[TrendPoint] = field(default_factory=list)
    baseline: Optional[float] = None  #: median of all points before latest
    latest: Optional[float] = None
    change_pct: Optional[float] = None  #: latest vs baseline, signed
    threshold_pct: float = 0.0  #: effective (noise-widened) threshold
    regressed: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "baseline": self.baseline,
            "latest": self.latest,
            "change_pct": self.change_pct,
            "threshold_pct": self.threshold_pct,
            "regressed": self.regressed,
            "points": [p.to_dict() for p in self.points],
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def load_committed(
    out_dir: PathLike = pathlib.Path("benchmarks") / "out",
) -> Dict[str, List[TrendPoint]]:
    """Watched metrics from every committed ``BENCH_*.json`` snapshot."""
    points: Dict[str, List[TrendPoint]] = {}
    directory = pathlib.Path(out_dir)
    if not directory.is_dir():
        return points
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
            bench = doc["bench"]
            metrics = watched_from_bench(bench, doc["data"])
        except (ValueError, KeyError, TypeError):
            continue
        for name, value in metrics.items():
            points.setdefault(name, []).append(
                TrendPoint(value=value, source="committed")
            )
    return points


def build_trends(
    ledger_rows: Sequence[Mapping[str, Any]],
    committed: Optional[Mapping[str, List[TrendPoint]]] = None,
    threshold_pct: float = 10.0,
) -> List[MetricTrend]:
    """Assemble per-metric trajectories and verdicts.

    The series for each metric is the committed point(s) followed by the
    ledger points in append order; the last point is "latest", the rest
    the history the baseline is computed from.
    """
    series: Dict[str, List[TrendPoint]] = {
        name: list(pts) for name, pts in (committed or {}).items()
    }
    for row in ledger_rows:
        for name, value in (row.get("metrics") or {}).items():
            if name not in WATCHED or not isinstance(value, (int, float)):
                continue
            series.setdefault(name, []).append(
                TrendPoint(
                    value=float(value),
                    source="ledger",
                    ts=row.get("ts"),
                    commit=row.get("commit"),
                )
            )

    trends: List[MetricTrend] = []
    for metric in sorted(series):
        direction = WATCHED.get(metric, "higher")
        points = series[metric]
        trend = MetricTrend(metric=metric, direction=direction, points=points)
        if points:
            trend.latest = points[-1].value
        if len(points) >= 2:
            prior = [p.value for p in points[:-1]]
            baseline = _median(prior)
            trend.baseline = baseline
            if baseline:
                mad = _median([abs(v - baseline) for v in prior])
                noise_pct = 100.0 * 2.0 * mad / abs(baseline)
                trend.threshold_pct = max(threshold_pct, noise_pct)
                trend.change_pct = 100.0 * (trend.latest - baseline) / abs(
                    baseline
                )
                if direction == "higher":
                    trend.regressed = trend.change_pct < -trend.threshold_pct
                else:
                    trend.regressed = trend.change_pct > trend.threshold_pct
        trends.append(trend)
    return trends


def run_trend(
    ledger_path: Optional[PathLike] = None,
    out_dir: PathLike = pathlib.Path("benchmarks") / "out",
    threshold_pct: float = 10.0,
) -> List[MetricTrend]:
    """Read the ledger + committed snapshots and build every trend."""
    from repro.obs import ledger

    rows = ledger.read(ledger_path)
    return build_trends(
        rows, load_committed(out_dir), threshold_pct=threshold_pct
    )


def trend_report(
    trends: Sequence[MetricTrend], threshold_pct: float
) -> Dict[str, Any]:
    """The JSON artifact (``schema: repro.trend/1``) for a trend run."""
    return {
        "schema": SCHEMA_TREND,
        "threshold_pct": threshold_pct,
        "regressions": [t.metric for t in trends if t.regressed],
        "metrics": [t.to_dict() for t in trends],
    }


def render_trend(trends: Sequence[MetricTrend]) -> str:
    """The human-readable trajectory table."""
    from repro.harness.report import text_table

    headers = [
        "metric", "dir", "points", "baseline", "latest",
        "change%", "thresh%", "status",
    ]
    rows = []
    for t in trends:
        gated = t.baseline is not None and t.change_pct is not None
        rows.append(
            (
                t.metric,
                t.direction,
                len(t.points),
                "n/a" if t.baseline is None else f"{t.baseline:.4g}",
                "n/a" if t.latest is None else f"{t.latest:.4g}",
                "n/a" if t.change_pct is None else f"{t.change_pct:+.1f}",
                f"{t.threshold_pct:.1f}" if gated else "n/a",
                "REGRESSED" if t.regressed else ("ok" if gated else "n/a"),
            )
        )
    regressions = [t.metric for t in trends if t.regressed]
    verdict = (
        f"REGRESSIONS: {', '.join(regressions)}"
        if regressions
        else "no regressions"
    )
    return (
        "Watched-metric trend (committed BENCH_*.json + run ledger)\n"
        + text_table(headers, rows)
        + f"\n{verdict}"
    )
