"""Aligned plain-text tables for experiment output."""

from __future__ import annotations

import math
from typing import List, Sequence


def text_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned monospace table with a rule under the
    header.  Numbers are right-aligned, text left-aligned."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [
        max(len(r[c]) for r in cells) for c in range(len(headers))
    ]
    numeric = [
        all(_is_number(row[c]) for row in rows) if rows else False
        for c in range(len(headers))
    ]

    def render_row(r: Sequence[str], force_left: bool = False) -> str:
        out = []
        for c, v in enumerate(r):
            if numeric[c] and not force_left:
                out.append(v.rjust(widths[c]))
            else:
                out.append(v.ljust(widths[c]))
        return "  ".join(out).rstrip()

    lines = [render_row(cells[0], force_left=True)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(r) for r in cells[1:])
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return "n/a" if math.isnan(v) else f"{v:.1f}"
    return str(v)


def _is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)
