"""Paper Table 3: the three asymmetric (ARA) scenarios.

Each scenario runs four benchmark threads on one PU twice:

* **Reg Spill** -- the baseline: each thread allocated alone into a fixed
  32-register window by the Chaitin allocator, spilling as needed (spill
  loads/stores are context-switch boundaries at ~20 cycles each);
* **Reg Sharing** -- our inter-thread allocator over the full 128-register
  file, spill-free by construction, with any moves the balancing loop had
  to insert.

Reported per thread: PR/SR assigned, live ranges after allocation, CSB
counts under both allocations, and average cycles per packet iteration
under both, with the percentage change.  The paper's shape: 18-24% speedup
for the register-hungry threads, only 1-4% slowdown for the donors.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.baseline.single_thread import allocate_pu_baseline
from repro.core.pipeline import allocate_programs
from repro.harness.report import text_table
from repro.harness.sweep import sweep_map
from repro.ir.program import Program
from repro.sim.run import outputs_match, run_reference, run_threads
from repro.suite.registry import load

#: The paper's three scenarios (thread order matters for reporting).
SCENARIOS: Dict[str, Tuple[str, str, str, str]] = {
    "md5+fir2dim": ("md5", "md5", "fir2dim", "fir2dim"),
    "l2l3fwd+md5": ("l2l3fwd_recv", "l2l3fwd_send", "md5", "md5"),
    "wraps+fir2dim+frag": ("wraps_recv", "wraps_send", "fir2dim", "frag"),
}


@dataclass
class Table3Thread:
    name: str
    pr: int
    sr: int
    live_ranges: int
    ctx_spill: int
    ctx_sharing: int
    cycles_spill: float
    cycles_sharing: float

    @property
    def cycle_change(self) -> float:
        """Relative cycle change, negative = faster with sharing."""
        if self.cycles_spill == 0:
            return 0.0
        return self.cycles_sharing / self.cycles_spill - 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {**asdict(self), "cycle_change": self.cycle_change}


@dataclass
class Table3Scenario:
    label: str
    threads: List[Table3Thread]
    verified: bool
    total_moves: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "verified": self.verified,
            "total_moves": self.total_moves,
            "threads": [t.to_dict() for t in self.threads],
        }


def run_scenario(
    label: str,
    names: Sequence[str],
    nreg: int = 128,
    packets: int = 16,
    verify: bool = True,
) -> Table3Scenario:
    """Run one ARA scenario end to end (allocate, simulate, compare)."""
    programs = [load(n) for n in names]

    baseline = allocate_pu_baseline([p.copy() for p in programs], nreg=nreg)
    shared = allocate_programs(programs, nreg=nreg)

    # Steady-state measurement: per-thread service time over a fixed
    # window of iterations (warmup excluded, queues never drained during
    # the window), so runs are exactly comparable.
    measure = max(packets - 8, 1)
    run_spill = run_threads(
        baseline.programs,
        packets_per_thread=packets,
        nreg=nreg,
        measure_iterations=measure,
    )
    run_share = run_threads(
        shared.programs,
        packets_per_thread=packets,
        nreg=nreg,
        assignment=shared.assignment,
        measure_iterations=measure,
    )
    verified = True
    if verify:
        few = max(4, packets // 4)
        ref = run_reference(programs, packets_per_thread=few)
        full_share = run_threads(
            shared.programs,
            packets_per_thread=few,
            nreg=nreg,
            assignment=shared.assignment,
        )
        full_spill = run_threads(
            baseline.programs, packets_per_thread=few, nreg=nreg
        )
        verified = outputs_match(ref, full_share) and outputs_match(
            ref, full_spill
        )

    threads: List[Table3Thread] = []
    for tid, name in enumerate(names):
        alloc = shared.inter.threads[tid]
        threads.append(
            Table3Thread(
                name=name,
                pr=alloc.pr,
                sr=alloc.sr,
                live_ranges=len(alloc.context.pieces),
                ctx_spill=baseline.programs[tid].count_csb(),
                ctx_sharing=shared.programs[tid].count_csb(),
                cycles_spill=run_spill.thread_busy_cpi(tid),
                cycles_sharing=run_share.thread_busy_cpi(tid),
            )
        )
    return Table3Scenario(
        label=label,
        threads=threads,
        verified=verified,
        total_moves=shared.total_moves,
    )


def _table3_scenario(
    item: Tuple[str, Tuple[str, ...]],
    nreg: int,
    packets: int,
    verify: bool,
) -> Table3Scenario:
    """One scenario from a ``(label, names)`` pair (picklable for sweeps)."""
    label, names = item
    return run_scenario(label, names, nreg=nreg, packets=packets, verify=verify)


def run_table3(
    scenarios: Optional[Dict[str, Tuple[str, ...]]] = None,
    nreg: int = 128,
    packets: int = 16,
    verify: bool = True,
    jobs: int = 1,
) -> List[Table3Scenario]:
    """Run every Table-3 scenario (in parallel when ``jobs>1``)."""
    return sweep_map(
        partial(_table3_scenario, nreg=nreg, packets=packets, verify=verify),
        list((scenarios or SCENARIOS).items()),
        jobs=jobs,
        label="table3",
    )


def render_table3(scenarios: Sequence[Table3Scenario]) -> str:
    blocks: List[str] = []
    for sc in scenarios:
        headers = [
            "thread", "PR", "SR", "#ranges", "#CTX spill", "#CTX share",
            "cyc/iter spill", "cyc/iter share", "change%",
        ]
        rows = [
            (
                t.name, t.pr, t.sr, t.live_ranges, t.ctx_spill,
                t.ctx_sharing, t.cycles_spill, t.cycles_sharing,
                100.0 * t.cycle_change,
            )
            for t in sc.threads
        ]
        block = (
            f"Table 3 scenario: {sc.label} "
            f"(moves inserted: {sc.total_moves}, "
            f"outputs verified: {sc.verified})\n"
        )
        block += text_table(headers, rows)
        blocks.append(block)
    return "\n\n".join(blocks)
