"""Engine throughput comparison: reference interpreter vs fast engine.

Runs every suite kernel on both execution engines over identical packet
workloads, checks that the runs are *bit-identical* (MachineStats, send
queues, store traces), and reports wall-clock time, instructions per
second, and the fast/reference speedup per kernel plus the aggregate
over the whole suite.  ``repro bench perf`` prints the table;
``benchmarks/bench_perf.py`` persists it as ``BENCH_perf.json``.

Timing covers :meth:`run` only -- machine construction (including the
fast engine's decode+bind pass) is reported separately as ``build_s``,
since decoding is a one-time cost amortised across runs (and shared via
the decode cache when the same program objects are reused).
"""

from __future__ import annotations

import gc
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import create_machine
from repro.sim.memory import Memory
from repro.sim.packets import make_workload
from repro.sim.run import PACKET_AREA_BASE, PACKET_AREA_STRIDE
from repro.sim.stats import MachineStats
from repro.suite.registry import BENCHMARKS, load


@dataclass
class PerfRow:
    """One kernel's engine comparison."""

    name: str
    threads: int
    packets: int
    instructions: int
    ref_run_s: float
    fast_run_s: float
    fast_build_s: float
    ref_ips: float
    fast_ips: float
    speedup: float
    stats_match: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _observables(machine) -> Tuple[list, list]:
    return (
        [list(t.out_queue) for t in machine.threads],
        [list(t.stores) for t in machine.threads],
    )


def _timed(
    programs,
    engine: str,
    packets: int,
    repeats: int,
) -> Tuple[float, float, MachineStats, list, list]:
    """Best-of-``repeats`` run time for one engine.

    Returns (best run seconds, last build seconds, stats, out queues,
    store traces).  Each repeat uses a fresh memory and machine so no
    state leaks between measurements.
    """
    best = float("inf")
    build = 0.0
    for _ in range(repeats):
        memory = Memory()
        t0 = time.perf_counter()
        machine = create_machine(programs, engine, memory=memory)
        build = time.perf_counter() - t0
        for tid, thread in enumerate(machine.threads):
            workload = make_workload(
                memory,
                base=PACKET_AREA_BASE + tid * PACKET_AREA_STRIDE,
                n_packets=packets,
                payload_words=16,
                seed=1 + tid,
            )
            thread.in_queue = list(workload.bases)
        gc.collect()
        t0 = time.perf_counter()
        stats = machine.run()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    queues, stores = _observables(machine)
    return best, build, stats, queues, stores


def run_perf(
    names: Optional[Sequence[str]] = None,
    threads: int = 4,
    packets: int = 64,
    repeats: int = 3,
) -> List[PerfRow]:
    """Compare both engines over the suite (all kernels by default)."""
    rows: List[PerfRow] = []
    for name in names or list(BENCHMARKS):
        programs = [load(name) for _ in range(threads)]
        ref_s, _, ref_stats, ref_q, ref_st = _timed(
            programs, "reference", packets, repeats
        )
        fast_s, build_s, fast_stats, fast_q, fast_st = _timed(
            programs, "fast", packets, repeats
        )
        match = (
            ref_stats == fast_stats
            and ref_q == fast_q
            and ref_st == fast_st
        )
        instructions = sum(t.instructions for t in ref_stats.threads)
        rows.append(
            PerfRow(
                name=name,
                threads=threads,
                packets=packets,
                instructions=instructions,
                ref_run_s=ref_s,
                fast_run_s=fast_s,
                fast_build_s=build_s,
                ref_ips=instructions / ref_s if ref_s else 0.0,
                fast_ips=instructions / fast_s if fast_s else 0.0,
                speedup=ref_s / fast_s if fast_s else 0.0,
                stats_match=match,
            )
        )
    return rows


def summarize_perf(rows: Sequence[PerfRow]) -> Dict[str, Any]:
    """Suite-level aggregate: total work over total time per engine."""
    instructions = sum(r.instructions for r in rows)
    ref_s = sum(r.ref_run_s for r in rows)
    fast_s = sum(r.fast_run_s for r in rows)
    return {
        "kernels": len(rows),
        "instructions": instructions,
        "ref_run_s": ref_s,
        "fast_run_s": fast_s,
        "ref_ips": instructions / ref_s if ref_s else 0.0,
        "fast_ips": instructions / fast_s if fast_s else 0.0,
        "speedup": ref_s / fast_s if fast_s else 0.0,
        "stats_match": all(r.stats_match for r in rows),
    }


def render_perf(rows: Sequence[PerfRow]) -> str:
    from repro.harness.report import text_table

    headers = [
        "benchmark", "#instr", "ref ms", "fast ms",
        "ref Mips", "fast Mips", "speedup", "identical",
    ]
    table = [
        (
            r.name,
            r.instructions,
            1000.0 * r.ref_run_s,
            1000.0 * r.fast_run_s,
            r.ref_ips / 1e6,
            r.fast_ips / 1e6,
            r.speedup,
            "yes" if r.stats_match else "NO",
        )
        for r in rows
    ]
    s = summarize_perf(rows)
    table.append(
        (
            "AGGREGATE",
            s["instructions"],
            1000.0 * s["ref_run_s"],
            1000.0 * s["fast_run_s"],
            s["ref_ips"] / 1e6,
            s["fast_ips"] / 1e6,
            s["speedup"],
            "yes" if s["stats_match"] else "NO",
        )
    )
    return (
        "Engine throughput: reference interpreter vs pre-decoded fast "
        "engine\n" + text_table(headers, table)
    )
