"""Execution counters for the simulator.

``cycles_per_iteration`` is the paper's headline metric: the benchmarks run
forever over packets, so performance is reported as average cycles per main
loop iteration (one ``recv`` that returned a packet = one iteration).
Under multithreading the metric naturally includes contention for the PU,
which is what makes a spilled thread drag its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ThreadStats:
    """Counters for one hardware thread.

    Two per-iteration cycle metrics exist because threads share the PU:

    * **wall** (``cycles_per_iteration``) -- elapsed machine cycles until
      the thread finished, divided by iterations; includes time other
      threads held the PU.
    * **busy** (``busy_cycles_per_iteration``) -- cycles the thread itself
      consumed (instruction issues plus its context-switch costs); the
      thread's *service time*, which is what the paper's per-thread cycle
      counts correspond to for threads that run forever concurrently.
      Spill code inflates it (extra issues and switches); inserted moves
      inflate it by exactly one cycle each.
    """

    instructions: int = 0
    alu_ops: int = 0
    moves: int = 0
    mem_ops: int = 0
    ctx_instrs: int = 0
    switches: int = 0
    busy_cycles: int = 0
    iterations: int = 0
    finish_cycle: Optional[int] = None
    #: Busy cycles per iteration over a fixed measurement window (set when
    #: the machine was given ``measure_iterations``); free of warmup and
    #: drain effects, this is the steady-state service time.
    measured_cpi: Optional[float] = None

    @property
    def csb_instrs(self) -> int:
        return self.mem_ops + self.ctx_instrs

    def cycles_per_iteration(self) -> float:
        """Average wall cycles per completed packet iteration.

        A thread that never completed an iteration reports ``0.0``; a
        thread that iterated but never *finished* (``finish_cycle`` is
        None, e.g. the run stopped on another thread's halt) reports
        ``NaN`` -- its wall time is unknown, and pretending ``0.0`` would
        read as infinitely fast in reports.  Renderers show NaN as
        ``n/a``; guard comparisons with ``math.isnan``.
        """
        if not self.iterations:
            return 0.0
        if self.finish_cycle is None:
            return float("nan")
        return self.finish_cycle / self.iterations

    def busy_cycles_per_iteration(self) -> float:
        """Average consumed (service) cycles per packet iteration.

        Prefers the fixed-window measurement when one was taken.
        """
        if self.measured_cpi is not None:
            return self.measured_cpi
        if not self.iterations:
            return 0.0
        return self.busy_cycles / self.iterations


@dataclass
class MachineStats:
    """Counters for the whole processing unit."""

    cycles: int = 0
    idle_cycles: int = 0
    switch_cycles: int = 0
    threads: List[ThreadStats] = field(default_factory=list)

    @property
    def busy_cycles(self) -> int:
        return self.cycles - self.idle_cycles

    def utilization(self) -> float:
        return self.busy_cycles / self.cycles if self.cycles else 0.0
