"""Cycle-level model of an IXP-style multithreaded processing unit.

The model implements the three architectural facts the paper's evaluation
rests on:

* ALU/branch/move instructions complete in one cycle;
* memory and packet-queue operations take ``mem_latency`` cycles (20 by
  default) during which the issuing thread is blocked and the PU runs
  another ready thread;
* a context switch saves only the PC and costs ``ctx_cost`` cycles (1 by
  default).

Threads are non-preemptable: a thread keeps the PU until it blocks on a
memory operation or executes ``ctx`` voluntarily.

* :mod:`repro.sim.memory` -- flat word-addressed SRAM.
* :mod:`repro.sim.packets` -- deterministic synthetic packet workloads.
* :mod:`repro.sim.stats` -- per-thread and machine counters.
* :mod:`repro.sim.machine` -- the processing-unit simulator, including the
  paranoid register-safety checker.
* :mod:`repro.sim.decode` -- pre-decoding pass for the fast engine.
* :mod:`repro.sim.fast` -- the pre-decoded burst-execution engine.
* :mod:`repro.sim.batch` -- the numpy struct-of-arrays lockstep engine
  (many machine instances as one vectorized execution; needs numpy).
* :mod:`repro.sim.engine` -- engine selection (``auto``/``fast``/
  ``reference``/``batch``) shared by the runners and the CLI.
* :mod:`repro.sim.run` -- workload runners and reference-vs-allocated
  equivalence checking.
"""

from repro.sim.memory import Memory
from repro.sim.packets import PacketWorkload, make_workload
from repro.sim.stats import MachineStats, ThreadStats
from repro.sim.machine import Machine, ThreadContext
from repro.sim.decode import DecodedProgram, decode_program
from repro.sim.fast import FastMachine, decode_cached
from repro.sim.engine import (
    ENGINES,
    create_machine,
    get_default_engine,
    select_engine,
    set_default_engine,
)
from repro.sim.run import (
    RunResult,
    run_threads,
    run_reference,
    run_seed_sweep,
    outputs_match,
)


def __getattr__(name):
    # The batch engine needs numpy; import it lazily so ``import
    # repro.sim`` keeps working without it (requesting engine="batch"
    # then raises a clear EngineError via the registry).
    if name in ("BatchMachine", "LaneResult", "simulate_batch",
                "build_batch_machine"):
        from repro.sim import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BatchMachine",
    "LaneResult",
    "simulate_batch",
    "build_batch_machine",
    "run_seed_sweep",
    "Memory",
    "PacketWorkload",
    "make_workload",
    "ThreadStats",
    "MachineStats",
    "Machine",
    "ThreadContext",
    "DecodedProgram",
    "decode_program",
    "FastMachine",
    "decode_cached",
    "ENGINES",
    "create_machine",
    "get_default_engine",
    "select_engine",
    "set_default_engine",
    "RunResult",
    "run_threads",
    "run_reference",
    "outputs_match",
]
