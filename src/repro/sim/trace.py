"""Execution-trace formatting.

``Machine(trace=True)`` records every executed instruction; this module
turns the log into a readable interleaving view, one column per thread --
the quickest way to see how context switches braid the threads together::

    cycle  t0 checksum         t1 counter
    -----  ------------------  ------------------
        1  recv %buf
        2                      movi %seq, 0
        ...
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.machine import Machine

TraceEntry = Tuple[int, int, int, str]


def format_trace(
    machine: Machine,
    limit: Optional[int] = None,
    width: int = 26,
) -> str:
    """Render the machine's trace as a per-thread interleaving table."""
    log = machine.trace_log
    if log is None:
        raise ValueError("machine was not created with trace=True")
    entries: Sequence[TraceEntry] = log if limit is None else log[:limit]
    names = [t.program.name for t in machine.threads]
    header = ["cycle"] + [
        f"t{tid} {name}"[: width - 1] for tid, name in enumerate(names)
    ]
    lines = [
        "  ".join(
            [header[0].rjust(5)] + [h.ljust(width) for h in header[1:]]
        ).rstrip()
    ]
    lines.append(
        "  ".join(["-" * 5] + ["-" * width for _ in names])
    )
    for cycle, tid, pc, text in entries:
        cells = [""] * len(names)
        cells[tid] = f"{pc:3} {text}"[:width]
        lines.append(
            "  ".join([str(cycle).rjust(5)] + [c.ljust(width) for c in cells]).rstrip()
        )
    if limit is not None and len(log) > limit:
        lines.append(f"... {len(log) - limit} more entries")
    return "\n".join(lines)


def thread_slices(machine: Machine) -> List[Tuple[int, int, int]]:
    """Contiguous execution slices ``(tid, first_cycle, last_cycle)``.

    Useful for asserting scheduling behaviour: each element is a maximal
    run of consecutive trace entries from one thread.
    """
    log = machine.trace_log
    if log is None:
        raise ValueError("machine was not created with trace=True")
    out: List[Tuple[int, int, int]] = []
    for cycle, tid, _, _ in log:
        if out and out[-1][0] == tid:
            out[-1] = (tid, out[-1][1], cycle)
        else:
            out.append((tid, cycle, cycle))
    return out
