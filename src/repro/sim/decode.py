"""Pre-decoding pass: compile a :class:`Program` for fast execution.

The cycle-accurate reference interpreter pays, on *every* simulated
instruction, a dict lookup to classify the opcode, ``isinstance``-based
operand dispatch in register reads/writes, and a ``resolve()`` call per
taken branch.  This module moves all of that out of the inner loop: a
program is walked **once** and every instruction is lowered to a small
tuple with

* the opcode pre-classified into an execution kind (ALU, move, branch,
  or one of the context-switch-boundary kinds),
* the ALU/condition operation pre-selected as a plain binary function,
* register operands pre-extracted to ``(is_phys, index)`` pairs --
  virtual registers are densely renumbered per program so a thread's
  private registers live in a flat list instead of a dict,
* immediates pre-extracted to plain ints,
* branch targets pre-resolved to integer PCs.

The result (:class:`DecodedProgram`) is machine-independent: it knows
nothing about register-file sizes, memory, or threads.  The fast engine
(:mod:`repro.sim.fast`) *binds* a decoded program per thread, turning
each decoded tuple into a zero-argument closure over the actual register
lists, at which point the inner loop is just ``pc = code[pc]()``.

Decoding raises :class:`~repro.errors.ValidationError` for undefined
branch labels (the same error :func:`~repro.ir.validate.validate_program`
gives at validate time) -- a pre-decoded engine cannot defer the failure
to the first taken branch the way the reference interpreter does.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ValidationError
from repro.ir.opcodes import Opcode
from repro.ir.operands import PhysReg, Reg
from repro.ir.program import Program

# ----------------------------------------------------------------------
# Execution kinds.  The first element of every decoded tuple is one of
# these small ints; everything below K_FIRST_CSB runs inside a burst,
# everything at or above it relinquishes the processing unit (or ends
# the thread) and is handled by the scheduler.
# ----------------------------------------------------------------------
K_ALU_RR = 0
K_ALU_RI = 1
K_MOV = 2
K_MOVI = 3
K_NOP = 4
K_BR = 5
K_COND_RR = 6
K_COND_RI = 7

K_FIRST_CSB = 8
K_LOAD = 8
K_LOADQ = 9
K_STORE = 10
K_STOREQ = 11
K_RECV = 12
K_SEND = 13
K_CTX = 14
K_HALT = 15
#: Sentinel appended past the last instruction: executing it means the
#: thread fell off the end of its program.
K_OFF_END = 16

#: A pre-extracted register operand: ``(is_phys, index)``.  Physical
#: registers keep their file index; virtual registers get a dense
#: per-program index assigned in first-appearance order.
RegRef = Tuple[bool, int]

BinOp = Callable[[int, int], int]


def _shl(a: int, b: int) -> int:
    return a << (b & 31)


def _shr(a: int, b: int) -> int:
    return a >> (b & 31)


#: Pre-selected ALU operations (register-register and register-imm
#: forms share the arithmetic).  ``operator`` builtins keep the per-call
#: cost at C level.
ALU_FN: Dict[Opcode, BinOp] = {
    Opcode.ADD: operator.add,
    Opcode.SUB: operator.sub,
    Opcode.AND: operator.and_,
    Opcode.OR: operator.or_,
    Opcode.XOR: operator.xor,
    Opcode.SHL: _shl,
    Opcode.SHR: _shr,
    Opcode.MUL: operator.mul,
    Opcode.ADDI: operator.add,
    Opcode.SUBI: operator.sub,
    Opcode.ANDI: operator.and_,
    Opcode.ORI: operator.or_,
    Opcode.XORI: operator.xor,
    Opcode.SHLI: _shl,
    Opcode.SHRI: _shr,
    Opcode.MULI: operator.mul,
}

#: Pre-selected branch conditions.
COND_FN: Dict[Opcode, Callable[[int, int], bool]] = {
    Opcode.BEQ: operator.eq,
    Opcode.BNE: operator.ne,
    Opcode.BLT: operator.lt,
    Opcode.BGE: operator.ge,
    Opcode.BEQI: operator.eq,
    Opcode.BNEI: operator.ne,
    Opcode.BLTI: operator.lt,
    Opcode.BGEI: operator.ge,
}

_ALU_RI_OPS = frozenset(
    (
        Opcode.ADDI,
        Opcode.SUBI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
        Opcode.MULI,
    )
)
_COND_RI_OPS = frozenset(
    (Opcode.BEQI, Opcode.BNEI, Opcode.BLTI, Opcode.BGEI)
)


@dataclass
class DecodedProgram:
    """One program lowered for fast execution.

    Attributes:
        program: the source program (kept for names and diagnostics).
        instrs: one decoded tuple per instruction; parallel to
            ``program.instrs``.  Tuple layouts by kind (``r`` denotes a
            :data:`RegRef`, ``i`` an int immediate, ``t`` an int PC):

            * ``(K_ALU_RR, fn, d_r, a_r, b_r)``
            * ``(K_ALU_RI, fn, d_r, a_r, imm_i)``
            * ``(K_MOV, d_r, s_r)``
            * ``(K_MOVI, d_r, imm_i)``
            * ``(K_NOP,)``
            * ``(K_BR, t)``
            * ``(K_COND_RR, fn, a_r, b_r, t)``
            * ``(K_COND_RI, fn, a_r, imm_i, t)``
            * ``(K_LOAD, d_r, base_r, off_i)``
            * ``(K_LOADQ, (d_r, d_r, d_r, d_r), base_r, off_i)``
            * ``(K_STORE, s_r, base_r, off_i)``
            * ``(K_STOREQ, (s_r, s_r, s_r, s_r), base_r, off_i)``
            * ``(K_RECV, d_r)``
            * ``(K_SEND, s_r)``
            * ``(K_CTX,)``  /  ``(K_HALT,)``
        vreg_names: dense virtual-register index -> source name; a
            thread's private register file is ``len(vreg_names)`` words.
    """

    program: Program
    instrs: List[Tuple]
    vreg_names: List[str]

    @property
    def n_vregs(self) -> int:
        return len(self.vreg_names)


def decode_program(program: Program) -> DecodedProgram:
    """Lower ``program`` into its :class:`DecodedProgram` form."""
    vreg_index: Dict[str, int] = {}
    vreg_names: List[str] = []

    def ref(reg: Reg) -> RegRef:
        if isinstance(reg, PhysReg):
            return (True, reg.index)
        idx = vreg_index.get(reg.name)
        if idx is None:
            idx = len(vreg_names)
            vreg_index[reg.name] = idx
            vreg_names.append(reg.name)
        return (False, idx)

    def target(instr) -> int:
        name = instr.target.name
        pc = program.labels.get(name)
        if pc is None:
            raise ValidationError(
                f"program {program.name!r}: undefined label {name!r}"
            )
        return pc

    decoded: List[Tuple] = []
    for instr in program.instrs:
        op = instr.opcode
        fn = ALU_FN.get(op)
        if fn is not None:
            d, a, b = instr.operands
            if op in _ALU_RI_OPS:
                decoded.append((K_ALU_RI, fn, ref(d), ref(a), b.value))
            else:
                decoded.append((K_ALU_RR, fn, ref(d), ref(a), ref(b)))
            continue
        cond = COND_FN.get(op)
        if cond is not None:
            a, b, _ = instr.operands
            if op in _COND_RI_OPS:
                decoded.append(
                    (K_COND_RI, cond, ref(a), b.value, target(instr))
                )
            else:
                decoded.append(
                    (K_COND_RR, cond, ref(a), ref(b), target(instr))
                )
            continue
        if op is Opcode.MOV:
            d, s = instr.operands
            decoded.append((K_MOV, ref(d), ref(s)))
        elif op is Opcode.MOVI:
            d, imm = instr.operands
            decoded.append((K_MOVI, ref(d), imm.value))
        elif op is Opcode.NOP:
            decoded.append((K_NOP,))
        elif op is Opcode.BR:
            decoded.append((K_BR, target(instr)))
        elif op is Opcode.LOAD:
            d, base, off = instr.operands
            decoded.append((K_LOAD, ref(d), ref(base), off.value))
        elif op is Opcode.LOADQ:
            d0, d1, d2, d3, base, off = instr.operands
            decoded.append(
                (
                    K_LOADQ,
                    (ref(d0), ref(d1), ref(d2), ref(d3)),
                    ref(base),
                    off.value,
                )
            )
        elif op is Opcode.STORE:
            s, base, off = instr.operands
            decoded.append((K_STORE, ref(s), ref(base), off.value))
        elif op is Opcode.STOREQ:
            s0, s1, s2, s3, base, off = instr.operands
            decoded.append(
                (
                    K_STOREQ,
                    (ref(s0), ref(s1), ref(s2), ref(s3)),
                    ref(base),
                    off.value,
                )
            )
        elif op is Opcode.RECV:
            (d,) = instr.operands
            decoded.append((K_RECV, ref(d)))
        elif op is Opcode.SEND:
            (s,) = instr.operands
            decoded.append((K_SEND, ref(s)))
        elif op is Opcode.CTX:
            decoded.append((K_CTX,))
        elif op is Opcode.HALT:
            decoded.append((K_HALT,))
        else:  # pragma: no cover - exhaustive over the ISA
            raise ValidationError(f"cannot decode opcode {op}")
    return DecodedProgram(
        program=program, instrs=decoded, vreg_names=vreg_names
    )
