"""Deterministic synthetic packet workloads.

The paper's benchmarks loop over packets pulled from a receive queue.  Real
traces are unavailable (and irrelevant to the allocator -- the kernels are
data-independent loops), so packets are generated with a seeded 64-bit LCG:
identical seeds give identical workloads on every platform.

Buffer layout convention (shared with the benchmark kernels)::

    word 0          payload length N in words
    words 1 .. N    payload
    words N+1 ..    scratch area kernels may write results into

``recv`` pops a buffer's base address from the thread's input queue (0 when
empty); ``send`` pushes an address onto the thread's output queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sim.memory import Memory

#: Scratch words reserved after each payload.
PACKET_SCRATCH = 16


class Lcg:
    """A tiny deterministic 64-bit LCG (MMIX constants)."""

    def __init__(self, seed: int):
        self.state = (seed ^ 0x9E3779B97F4A7C15) & (2**64 - 1)

    def next(self) -> int:
        self.state = (
            self.state * 6364136223846793005 + 1442695040888963407
        ) & (2**64 - 1)
        return (self.state >> 16) & 0xFFFFFFFF

    def next_in(self, lo: int, hi: int) -> int:
        """Uniform-ish integer in ``[lo, hi]``."""
        return lo + self.next() % (hi - lo + 1)


@dataclass
class PacketWorkload:
    """A per-thread packet workload already laid out in memory.

    Attributes:
        bases: buffer base addresses, in arrival order.
        payload_words: payload length of each packet.
    """

    bases: List[int]
    payload_words: List[int]

    def __len__(self) -> int:
        return len(self.bases)


def make_workload(
    memory: Memory,
    base: int,
    n_packets: int,
    payload_words: int = 16,
    seed: int = 1,
    vary_size: bool = False,
) -> PacketWorkload:
    """Generate ``n_packets`` buffers starting at ``base`` and return the
    queue contents.

    Args:
        memory: target memory; buffers are written immediately.
        base: first buffer's base address (word index).
        n_packets: number of packets.
        payload_words: payload size (maximum size when ``vary_size``).
        seed: LCG seed; same seed, same workload.
        vary_size: draw each packet's size from ``[4, payload_words]``.
    """
    rng = Lcg(seed)
    bases: List[int] = []
    sizes: List[int] = []
    addr = base
    for _ in range(n_packets):
        size = rng.next_in(4, payload_words) if vary_size else payload_words
        words = [size] + [rng.next() for _ in range(size)]
        memory.write_block(addr, words)
        bases.append(addr)
        sizes.append(size)
        addr += 1 + size + PACKET_SCRATCH
    return PacketWorkload(bases=bases, payload_words=sizes)
