"""Multi-PU packet pipelines (the paper's Figure 2.a deployment).

Real IXP applications chain micro-engines: receive PUs pull packets off
the wire, processing PUs transform them, transmit PUs send them out, all
communicating through memory-resident queues.  This module composes
several :class:`~repro.sim.machine.Machine` instances into such a
pipeline.

The composition is *store-and-forward*: stage ``k`` runs to completion
over its input queue, then its send queue becomes stage ``k+1``'s input.
For feed-forward pipelines (no feedback edges) this is functionally
identical to concurrent execution -- every packet sees the same code in
the same order over the same shared memory -- and each stage's cycle
count is its true standalone cost.  Steady-state pipeline throughput is
limited by the slowest stage, which :meth:`PipelineResult.bottleneck`
reports; end-to-end overlap timing of distinct PUs is out of scope.

Every stage may run several threads; each stage's input queue is dealt
round-robin across its threads, and thread send-queues are merged in
thread order (deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.assign import RegisterAssignment
from repro.errors import SimulationError
from repro.ir.program import Program
from repro.sim.engine import create_machine
from repro.sim.memory import Memory
from repro.sim.packets import make_workload
from repro.sim.run import PACKET_AREA_BASE
from repro.sim.stats import MachineStats


@dataclass
class PipelineStage:
    """One micro-engine of the pipeline."""

    programs: Sequence[Program]
    nreg: int = 128
    assignment: Optional[RegisterAssignment] = None
    name: str = ""

    def label(self, index: int) -> str:
        return self.name or f"stage{index}"


@dataclass
class StageResult:
    label: str
    stats: MachineStats
    forwarded: List[int]

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def packets(self) -> int:
        return len(self.forwarded)


@dataclass
class PipelineResult:
    stages: List[StageResult]
    memory: Memory

    def bottleneck(self) -> StageResult:
        """The stage limiting steady-state throughput."""
        return max(self.stages, key=lambda s: s.cycles)

    def delivered(self) -> List[int]:
        """Packet buffers that made it out of the last stage."""
        return self.stages[-1].forwarded


def run_pipeline(
    stages: Sequence[PipelineStage],
    n_packets: int = 16,
    payload_words: int = 16,
    seed: int = 1,
    mem_latency: int = 20,
    max_cycles: int = 50_000_000,
    engine: Optional[str] = None,
) -> PipelineResult:
    """Push ``n_packets`` through the stage chain over one shared memory.

    ``engine`` picks the execution engine per stage (see
    :mod:`repro.sim.engine`); under ``"auto"`` a stage carrying a
    paranoid ``assignment`` runs on the reference engine while the
    other stages use the fast one.
    """
    if not stages:
        raise SimulationError("pipeline needs at least one stage")
    memory = Memory()
    workload = make_workload(
        memory,
        base=PACKET_AREA_BASE,
        n_packets=n_packets,
        payload_words=payload_words,
        seed=seed,
    )
    queue: List[int] = list(workload.bases)
    results: List[StageResult] = []
    for index, stage in enumerate(stages):
        machine = create_machine(
            stage.programs,
            engine,
            nreg=stage.nreg,
            mem_latency=mem_latency,
            memory=memory,
            assignment=stage.assignment,
        )
        for pos, base in enumerate(queue):
            machine.threads[pos % len(machine.threads)].in_queue.append(base)
        stats = machine.run(max_cycles=max_cycles)
        forwarded: List[int] = []
        for t in machine.threads:
            forwarded.extend(t.out_queue)
        results.append(
            StageResult(
                label=stage.label(index), stats=stats, forwarded=forwarded
            )
        )
        queue = forwarded
    return PipelineResult(stages=results, memory=memory)
