"""Flat word-addressed SRAM.

The IXP accesses SRAM/SDRAM through transfer registers with ~20-cycle
latency and no cache; for the allocator's purposes the only things that
matter are the latency (modelled by the machine) and a stable address
space.  Words are 32-bit; addresses are word indices.  Storage is sparse,
so packet buffers can sit at well-spread bases without cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import SimulationError

MASK32 = 0xFFFFFFFF


class Memory:
    """Sparse 32-bit word-addressed memory."""

    def __init__(self, size: int = 1 << 24):
        self.size = size
        self._words: Dict[int, int] = {}

    def _check(self, addr: int) -> int:
        addr &= MASK32
        if addr >= self.size:
            raise SimulationError(
                f"address {addr:#x} outside memory of {self.size:#x} words"
            )
        return addr

    def read(self, addr: int) -> int:
        return self._words.get(self._check(addr), 0)

    def write(self, addr: int, value: int) -> None:
        self._words[self._check(addr)] = value & MASK32

    def write_block(self, base: int, words: Iterable[int]) -> None:
        for i, w in enumerate(words):
            self.write(base + i, w)

    def read_block(self, base: int, count: int) -> List[int]:
        return [self.read(base + i) for i in range(count)]

    def snapshot(self) -> Dict[int, int]:
        """Copy of all nonzero words (for equivalence checks)."""
        return {a: v for a, v in self._words.items() if v != 0}
