"""Workload runners and reference-vs-allocated equivalence checking.

:func:`run_threads` wires a packet workload to every thread and runs the
machine to completion.  The same function serves both the *reference* run
(virtual-register programs, per-thread unbounded register maps -- the
semantics oracle) and the *allocated* run (physical-register programs,
optionally with the paranoid safety checker armed).

:func:`outputs_match` compares the observable behaviour of two runs:
per-thread store traces (address, value, order) and send queues.  The
allocator is semantics-preserving iff these match the reference run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.assign import RegisterAssignment
from repro.ir.program import Program
from repro.sim.engine import AnyMachine, create_machine
from repro.sim.memory import Memory
from repro.sim.packets import PACKET_SCRATCH, make_workload
from repro.sim.stats import MachineStats

#: Word address where thread 0's packet area starts.
PACKET_AREA_BASE = 0x10000
#: Address stride between consecutive threads' packet areas.
PACKET_AREA_STRIDE = 0x40000
#: Spill scratch region [lo, hi): traffic here is allocator-internal and
#: excluded from observable-equivalence comparisons.
SCRATCH_RANGE = (0x8000, PACKET_AREA_BASE)


@dataclass
class RunResult:
    """Everything observable about one machine run."""

    stats: MachineStats
    out_queues: List[List[int]]
    stores: List[List[Tuple[int, int]]]
    machine: AnyMachine

    def cycles(self) -> int:
        return self.stats.cycles

    def thread_cpi(self, tid: int) -> float:
        """Wall cycles per main-loop iteration for one thread."""
        return self.stats.threads[tid].cycles_per_iteration()

    def thread_busy_cpi(self, tid: int) -> float:
        """Service (busy) cycles per main-loop iteration for one thread."""
        return self.stats.threads[tid].busy_cycles_per_iteration()

    def observable_stores(self) -> List[List[Tuple[int, int]]]:
        """Per-thread store traces with spill-scratch traffic removed."""
        lo, hi = SCRATCH_RANGE
        return [
            [(a, v) for a, v in trace if not lo <= a < hi]
            for trace in self.stores
        ]


def run_threads(
    programs: Sequence[Program],
    packets_per_thread: int = 32,
    payload_words: int = 16,
    seed: int = 1,
    vary_size: bool = False,
    nreg: int = 128,
    mem_latency: int = 20,
    ctx_cost: int = 1,
    assignment: Optional[RegisterAssignment] = None,
    max_cycles: int = 50_000_000,
    stop_on_first_halt: bool = False,
    measure_iterations: Optional[int] = None,
    engine: Optional[str] = None,
) -> RunResult:
    """Run ``programs`` (one per thread) over deterministic packet queues.

    Every thread gets its own input queue of ``packets_per_thread``
    packets; thread ``t``'s buffers live at
    ``PACKET_AREA_BASE + t * PACKET_AREA_STRIDE`` so the layout is
    identical between a reference run and an allocated run.

    ``engine`` selects the execution engine (``"auto"``/``"fast"``/
    ``"reference"``, see :mod:`repro.sim.engine`); ``None`` uses the
    process-wide default.  Note that ``engine="fast"`` raises
    :class:`~repro.errors.EngineError` when combined with a paranoid
    ``assignment``.
    """
    memory = Memory()
    machine = create_machine(
        programs,
        engine,
        nreg=nreg,
        mem_latency=mem_latency,
        ctx_cost=ctx_cost,
        memory=memory,
        assignment=assignment,
        measure_iterations=measure_iterations,
    )
    for tid, thread in enumerate(machine.threads):
        workload = make_workload(
            memory,
            base=PACKET_AREA_BASE + tid * PACKET_AREA_STRIDE,
            n_packets=packets_per_thread,
            payload_words=payload_words,
            seed=seed + tid,
            vary_size=vary_size,
        )
        thread.in_queue = list(workload.bases)
    stats = machine.run(
        max_cycles=max_cycles, stop_on_first_halt=stop_on_first_halt
    )
    return RunResult(
        stats=stats,
        out_queues=[list(t.out_queue) for t in machine.threads],
        stores=[list(t.stores) for t in machine.threads],
        machine=machine,
    )


def run_reference(
    programs: Sequence[Program], **kwargs
) -> RunResult:
    """Reference run: virtual-register programs as the semantics oracle."""
    kwargs.pop("assignment", None)
    return run_threads(programs, **kwargs)


def run_seed_sweep(
    programs: Sequence[Program],
    seeds: Sequence[int],
    packets_per_thread: int = 32,
    payload_words: int = 16,
    vary_size: bool = False,
    nreg: int = 128,
    mem_latency: int = 20,
    ctx_cost: int = 1,
    max_cycles: int = 50_000_000,
    stop_on_first_halt: bool = False,
    measure_iterations: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[RunResult]:
    """One :func:`run_threads` per seed, batched when the engine allows.

    With ``engine="batch"`` (or a ``"batch"`` process default) the whole
    sweep becomes ONE vectorized :class:`~repro.sim.batch.BatchMachine`
    execution -- one lane per seed, each lane bit-identical to the
    scalar run it replaces.  Any other engine falls back to the plain
    per-seed loop, so callers can hand every seed sweep through here and
    let ``--engine`` decide the execution strategy.
    """
    from repro.sim.engine import select_engine

    chosen = select_engine(engine)
    if chosen == "batch" and len(seeds) >= 1:
        from repro.sim.batch import build_batch_machine

        machine = build_batch_machine(
            programs,
            list(seeds),
            packets_per_thread=packets_per_thread,
            payload_words=payload_words,
            vary_size=vary_size,
            nreg=nreg,
            mem_latency=mem_latency,
            ctx_cost=ctx_cost,
            measure_iterations=measure_iterations,
        )
        outcomes = machine.run_batch(
            max_cycles=max_cycles, stop_on_first_halt=stop_on_first_halt
        )
        results = []
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
            contexts = machine.lane_threads(outcome.lane)
            results.append(
                RunResult(
                    stats=outcome.stats,
                    out_queues=[list(t.out_queue) for t in contexts],
                    stores=[list(t.stores) for t in contexts],
                    machine=machine,
                )
            )
        return results
    return [
        run_threads(
            programs,
            packets_per_thread=packets_per_thread,
            payload_words=payload_words,
            seed=seed,
            vary_size=vary_size,
            nreg=nreg,
            mem_latency=mem_latency,
            ctx_cost=ctx_cost,
            max_cycles=max_cycles,
            stop_on_first_halt=stop_on_first_halt,
            measure_iterations=measure_iterations,
            engine=chosen,
        )
        for seed in seeds
    ]


def outputs_match(a: RunResult, b: RunResult) -> bool:
    """Observable equivalence of two runs: per-thread send queues and
    store traces, ignoring traffic to the spill scratch region."""
    return (
        a.observable_stores() == b.observable_stores()
        and a.out_queues == b.out_queues
    )


def describe_mismatch(a: RunResult, b: RunResult) -> str:
    """Human-readable first divergence between two runs (for tests)."""
    for tid, (sa, sb) in enumerate(
        zip(a.observable_stores(), b.observable_stores())
    ):
        if sa != sb:
            for k, (ea, eb) in enumerate(zip(sa, sb)):
                if ea != eb:
                    return (
                        f"thread {tid} store #{k}: "
                        f"{ea[0]:#x}<-{ea[1]:#x} vs {eb[0]:#x}<-{eb[1]:#x}"
                    )
            return (
                f"thread {tid}: store counts differ "
                f"({len(sa)} vs {len(sb)})"
            )
    for tid, (qa, qb) in enumerate(zip(a.out_queues, b.out_queues)):
        if qa != qb:
            return f"thread {tid}: send queues differ ({qa} vs {qb})"
    return "runs match"
