"""The batched lockstep execution engine.

:class:`BatchMachine` runs **many independent machine instances** (lanes)
as one vectorized execution.  Architectural state is laid out
struct-of-arrays: the physical register file and every thread's virtual
register file are numpy ``uint64`` arrays of shape ``(n_slots, n_lanes)``,
so one decoded instruction is applied to every lane at the same program
counter with a single elementwise numpy operation instead of ``n_lanes``
interpreter steps.  The per-instruction interpreter overhead -- the only
thing the fast engine (:mod:`repro.sim.fast`) still pays per run -- is
amortized over the whole batch.

Lanes share nothing but the decoded programs: each lane has its own
:class:`~repro.sim.memory.Memory`, its own packet queues, its own cycle
counters, and its own scheduler state.  The paper's kernels are
data-independent loops, so lanes that run the same program over
different packet seeds stay in near-perfect pc lockstep; when control
flow *does* diverge the engine masks, it does not fork:

* a conditional branch whose lanes disagree splits the current lane
  group into taken/fall-through subgroups (numpy boolean masks); each
  subgroup continues vectorized and groups are re-formed at the next
  scheduling boundary;
* a lane that halts, blocks on a context-switch boundary, or exhausts
  its runaway budget simply leaves its group; the remaining lanes keep
  executing.

Scheduling (round-robin ready queue, ``(wake, tid)`` min-heap, deferred
load writebacks, ``ctx_cost`` per relinquish) is replicated *per lane*
exactly as the fast engine does it, so every lane is bit-identical --
``MachineStats``, send queues, store traces, memory contents -- to a
scalar run of the reference engine with the same inputs.  The
differential suite in ``tests/test_sim_batch.py`` enforces this per
lane, the same contract PR 2 established for the fast engine.

Like the fast engine, this engine records no traces or timelines and
performs no paranoid checks; requesting those raises
:class:`~repro.errors.EngineError`.  Fault-injection plans
(:mod:`repro.resilience.faults`) are also rejected: a plan's RNG
consumption is defined against one machine's event order, which has no
faithful analogue across interleaved lanes.
"""

from __future__ import annotations

import heapq
import operator
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EngineError, SimulationError, WatchdogError
from repro.ir.program import Program
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import faults
from repro.sim import decode as dc
from repro.sim.fast import decode_cached
from repro.sim.machine import ThreadContext
from repro.sim.memory import MASK32, Memory
from repro.sim.stats import MachineStats

_M = MASK32
#: numpy-typed 32-bit mask; ``uint64 & _M64`` stays uint64.
_M64 = np.uint64(MASK32)
#: Lane selector meaning "every lane" -- plain slicing is markedly
#: cheaper than fancy indexing, and full-width groups are the common
#: case for the suite's data-independent kernels.
_FULL = slice(None)

#: Per-(lane, thread) counter slots, same layout as the fast engine:
#: [alu_ops, moves, instructions, busy_cycles, mem_ops, ctx_instrs,
#: switches, iterations].
_N_COUNTS = 8


# ----------------------------------------------------------------------
# Vectorized closure factories.  Each returns a callable taking the
# current lane selector ``L`` (slice or index array) and returning either
# the next PC (int) or, for data-dependent branches, a
# ``(taken_pc, fall_pc, bool_mask)`` triple for the dispatch loop to
# split on.  ``d``/``a``/``b`` are ``(n_lanes,)`` uint64 row views
# resolved at bind time; rows stay valid because the backing arrays are
# never reallocated.
#
# The full-width selector (``L is _FULL``, the lockstep common case)
# takes an allocation-free path: ufuncs with ``out=`` writing straight
# into the destination row (full-overlap aliasing of an elementwise
# ufunc's input and output is well defined).  Divergent subgroups fall
# back to the generic masked expression.
# ----------------------------------------------------------------------

#: ``operator``/decode callables -> numpy ufuncs for the in-place path.
_ALU_UFUNC = {
    operator.add: np.add,
    operator.sub: np.subtract,
    operator.mul: np.multiply,
    operator.and_: np.bitwise_and,
    operator.or_: np.bitwise_or,
    operator.xor: np.bitwise_xor,
}
#: Ufuncs whose uint64 result already fits in 32 bits when both inputs
#: do -- no post-op mask needed (``shr`` shares the property).
_FITS_32 = (np.bitwise_and, np.bitwise_or, np.bitwise_xor)
_CMP_UFUNC = {
    operator.eq: np.equal,
    operator.ne: np.not_equal,
    operator.lt: np.less,
    operator.ge: np.greater_equal,
}
_31 = np.uint64(31)


def _bind_alu_rr(fn, d, a, b, npc, scratch):
    if fn is dc._shl:
        def op(L):
            if L is _FULL:
                np.bitwise_and(b, _31, out=scratch)
                np.left_shift(a, scratch, out=d)
                np.bitwise_and(d, _M64, out=d)
                return npc
            d[L] = fn(a[L], b[L]) & _M64
            return npc

        return op
    if fn is dc._shr:
        def op(L):
            if L is _FULL:
                np.bitwise_and(b, _31, out=scratch)
                np.right_shift(a, scratch, out=d)
                return npc
            d[L] = fn(a[L], b[L])
            return npc

        return op
    uf = _ALU_UFUNC[fn]
    if uf in _FITS_32:
        def op(L):
            if L is _FULL:
                uf(a, b, out=d)
                return npc
            d[L] = fn(a[L], b[L])
            return npc

    else:
        def op(L):
            if L is _FULL:
                uf(a, b, out=d)
                np.bitwise_and(d, _M64, out=d)
                return npc
            d[L] = fn(a[L], b[L]) & _M64
            return npc

    return op


def _bind_alu_ri(fn, d, a, imm, npc):
    if fn is dc._shl:
        sh = np.uint64(imm & 31)

        def op(L):
            if L is _FULL:
                np.left_shift(a, sh, out=d)
                np.bitwise_and(d, _M64, out=d)
                return npc
            d[L] = fn(a[L], imm) & _M64
            return npc

        return op
    if fn is dc._shr:
        sh = np.uint64(imm & 31)

        def op(L):
            if L is _FULL:
                np.right_shift(a, sh, out=d)
                return npc
            d[L] = fn(a[L], imm)
            return npc

        return op
    uf = _ALU_UFUNC[fn]
    immu = np.uint64(imm)
    if uf in _FITS_32:
        def op(L):
            if L is _FULL:
                uf(a, immu, out=d)
                return npc
            d[L] = fn(a[L], imm)
            return npc

    else:
        def op(L):
            if L is _FULL:
                uf(a, immu, out=d)
                np.bitwise_and(d, _M64, out=d)
                return npc
            d[L] = fn(a[L], imm) & _M64
            return npc

    return op


def _bind_mov(d, s, npc):
    def op(L):
        if L is _FULL:
            np.copyto(d, s)
        else:
            d[L] = s[L]
        return npc

    return op


def _bind_movi(d, imm, npc):
    immu = np.uint64(imm)

    def op(L):
        if L is _FULL:
            d.fill(immu)
        else:
            d[L] = immu
        return npc

    return op


def _bind_br(target):
    def op(L):
        return target

    return op


def _bind_cond_rr(fn, a, b, taken, fall, bscratch):
    uf = _CMP_UFUNC[fn]

    def op(L):
        if L is _FULL:
            return (taken, fall, uf(a, b, out=bscratch))
        return (taken, fall, fn(a[L], b[L]))

    return op


def _bind_cond_ri(fn, a, imm, taken, fall, bscratch):
    uf = _CMP_UFUNC[fn]
    immu = np.uint64(imm)

    def op(L):
        if L is _FULL:
            return (taken, fall, uf(a, immu, out=bscratch))
        return (taken, fall, fn(a[L], imm))

    return op


def _bind_bad_reg(message):
    def op(L):
        raise SimulationError(message)

    return op


def _fold_cond_imm(fn, imm) -> Optional[bool]:
    """Resolve a register-vs-immediate comparison whose immediate lies
    outside ``[0, 2**32)`` to a constant outcome.

    Register values are always masked into that range, so the reference
    engine's raw-int comparison is decided by the immediate alone; the
    numpy path must *not* mask such an immediate (masking would change
    the comparison), so the branch is folded to always/never taken.
    Returns None for in-range immediates (compare elementwise).
    """
    if 0 <= imm <= _M:
        return None
    if fn is operator.eq:
        return False
    if fn is operator.ne:
        return True
    if fn is operator.lt:
        return imm > _M  # reg < huge-imm always; reg < negative never
    if fn is operator.ge:
        return imm < 0  # reg >= negative always; reg >= huge-imm never
    return None  # pragma: no cover - COND_FN is exhaustive


@dataclass
class LaneResult:
    """The outcome of one lane of a batched run.

    Exactly one of ``stats``/``error`` is set: a lane that completed
    carries its :class:`MachineStats`; a lane that failed (watchdog,
    illegal address, off-the-end) carries the same typed exception the
    reference engine would have raised for that lane's scalar run.
    """

    lane: int
    stats: Optional[MachineStats] = None
    error: Optional[SimulationError] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class BatchMachine:
    """``n_lanes`` machine instances executed as one vectorized run.

    Accepts the reference machine's constructor keywords (plus
    ``n_lanes`` and ``memories``) so a single-lane batch is a drop-in
    replacement behind :func:`repro.sim.engine.create_machine`:
    ``n_lanes=1`` exposes ``.threads``/``.memory``/``.run()`` exactly
    like the other engines.  Multi-lane batches use
    :meth:`lane_threads`/:meth:`run_batch`.

    ``trace=True``, ``timeline=True``, and a non-None ``assignment``
    raise :class:`EngineError` (reference-engine features, as for the
    fast engine).  ``memory=`` is accepted only for single-lane batches;
    multi-lane batches get one fresh :class:`Memory` per lane (or the
    explicit per-lane ``memories`` sequence).
    """

    def __init__(
        self,
        programs: Sequence[Program],
        nreg: int = 128,
        mem_latency: int = 20,
        ctx_cost: int = 1,
        memory: Optional[Memory] = None,
        assignment=None,
        measure_iterations: Optional[int] = None,
        latency_regions: Optional[Sequence[Tuple[int, int, int]]] = None,
        trace: bool = False,
        timeline: Optional[bool] = None,
        n_lanes: int = 1,
        memories: Optional[Sequence[Memory]] = None,
    ):
        if not programs:
            raise SimulationError("machine needs at least one thread")
        if n_lanes < 1:
            raise SimulationError("batch needs at least one lane")
        if trace:
            raise EngineError(
                "the batch engine does not record instruction traces; "
                "use the reference engine (engine='reference') for trace=True"
            )
        if timeline:
            raise EngineError(
                "the batch engine does not record run/switch/idle timelines; "
                "use the reference engine (engine='reference') for "
                "timeline=True"
            )
        if assignment is not None:
            raise EngineError(
                "the batch engine does not implement the paranoid "
                "register-safety checker; use the reference engine "
                "(engine='reference') for runs with a RegisterAssignment"
            )
        if memory is not None and n_lanes > 1:
            raise EngineError(
                "a shared Memory cannot back a multi-lane batch; pass "
                "per-lane memories=[...] or let each lane get its own"
            )
        if memories is not None and len(memories) != n_lanes:
            raise SimulationError(
                f"got {len(memories)} memories for {n_lanes} lanes"
            )
        self.nreg = nreg
        self.n_lanes = n_lanes
        self.mem_latency = mem_latency
        self.ctx_cost = ctx_cost
        self.measure_iterations = measure_iterations
        self.latency_regions = list(latency_regions or ())
        self.assignment = None
        # Interface parity with the other engines.
        self.trace_log = None
        self.timeline = None
        if memories is not None:
            self.memories = list(memories)
        elif memory is not None:
            self.memories = [memory]
        else:
            self.memories = [Memory() for _ in range(n_lanes)]
        self.regfile = np.zeros((nreg, n_lanes), dtype=np.uint64)
        #: Lanes share ONE decode per program (identity+fingerprint
        #: cached, same as the fast engine's sweep reuse).
        self._decoded = [decode_cached(p) for p in programs]
        self._vfiles = [
            np.zeros((d.n_vregs, n_lanes), dtype=np.uint64)
            for d in self._decoded
        ]
        #: Per-(lane, tid) architectural thread state (queues, stores,
        #: stats) -- reused from the reference engine verbatim.
        self._contexts: List[List[ThreadContext]] = [
            [ThreadContext(tid=i, program=p) for i, p in enumerate(programs)]
            for _ in range(n_lanes)
        ]
        self._n_threads = len(programs)
        self.cycle = 0
        self._cycles = [0] * n_lanes
        self._idles = [0] * n_lanes
        self._switches = [0] * n_lanes
        self._halted = [0] * n_lanes
        self._pcs = [[0] * self._n_threads for _ in range(n_lanes)]
        #: Per-(thread, slot, lane) counter deltas.  numpy so that a
        #: whole lane group's shared deltas land in ONE indexed add per
        #: slot at each scheduling boundary (the deltas are scalars
        #: shared by the group; see _settle_csb_group).
        self._counts = np.zeros(
            (self._n_threads, _N_COUNTS, n_lanes), dtype=np.int64
        )
        #: Deferred register writebacks per (lane, tid): one
        #: ``(row_view, value)`` tuple (LOAD/RECV) or a list of them
        #: (LOADQ), applied when the thread next holds the PU.
        self._writebacks: List[List[Optional[object]]] = [
            [None] * self._n_threads for _ in range(n_lanes)
        ]
        self._errors: List[Optional[SimulationError]] = [None] * n_lanes
        self._finished = [False] * n_lanes
        self._ready: List[deque] = [deque() for _ in range(n_lanes)]
        self._pending: List[List[Tuple[int, int]]] = [
            [] for _ in range(n_lanes)
        ]
        self._arange = np.arange(n_lanes, dtype=np.intp)
        self._lane_list = list(range(n_lanes))
        #: Reusable work arrays for the full-width in-place fast path:
        #: shift amounts and comparison masks are consumed within the
        #: dispatch-loop iteration that produced them.
        self._scratch = np.empty(n_lanes, dtype=np.uint64)
        self._bscratch = np.empty(n_lanes, dtype=np.bool_)
        self._splits = 0
        self._code: List[List[Optional[Callable]]] = []
        self._csbs: List[List[Optional[Tuple]]] = []
        self._is_alu: List[List[int]] = []
        self._is_mov: List[List[int]] = []
        for tid, d in enumerate(self._decoded):
            code, csbs, is_alu, is_mov = self._bind_thread(tid, d)
            self._code.append(code)
            self._csbs.append(csbs)
            self._is_alu.append(is_alu)
            self._is_mov.append(is_mov)

    # ------------------------------------------------------------------
    # Single-lane compatibility surface (engine registry / run_threads).
    # ------------------------------------------------------------------
    @property
    def threads(self) -> List[ThreadContext]:
        """Lane 0's thread contexts (the whole machine when
        ``n_lanes == 1``)."""
        return self._contexts[0]

    @property
    def memory(self) -> Memory:
        return self.memories[0]

    def lane_threads(self, lane: int) -> List[ThreadContext]:
        return self._contexts[lane]

    def lane_regfile(self, lane: int) -> List[int]:
        """One lane's physical register file as plain ints."""
        return [int(v) for v in self.regfile[:, lane]]

    # ------------------------------------------------------------------
    # Binding: decoded tuples -> per-thread vectorized closures.  Done
    # once per thread, NOT per lane -- a closure's row views cover every
    # lane's column at once.
    # ------------------------------------------------------------------
    def _bind_thread(self, tid: int, d: dc.DecodedProgram):
        regfile = self.regfile
        vfile = self._vfiles[tid]
        nreg = self.nreg
        scratch = self._scratch
        bscratch = self._bscratch

        def res(ref: dc.RegRef):
            """(is_phys, index) -> ``(n_lanes,)`` row view, or None when
            the physical index is outside the register file (executing
            the instruction must raise, exactly like the reference)."""
            is_phys, idx = ref
            if is_phys:
                if not 0 <= idx < nreg:
                    return None
                return regfile[idx]
            return vfile[idx]

        def bad(idx_refs):
            for is_phys, idx in idx_refs:
                if is_phys and not 0 <= idx < nreg:
                    return _bind_bad_reg(
                        f"register $r{idx} outside file of {nreg}"
                    )
            return None

        code: List[Optional[Callable]] = []
        csbs: List[Optional[Tuple]] = []
        is_alu: List[int] = []
        is_mov: List[int] = []
        for pc, t in enumerate(d.instrs):
            kind = t[0]
            npc = pc + 1
            fn = None
            csb = None
            alu = mov = 0
            if kind == dc.K_ALU_RR:
                _, f, dr, ar, br = t
                fn = bad((dr, ar, br))
                if fn is None:
                    fn = _bind_alu_rr(
                        f, res(dr), res(ar), res(br), npc, scratch
                    )
                alu = 1
            elif kind == dc.K_ALU_RI:
                _, f, dr, ar, imm = t
                fn = bad((dr, ar))
                if fn is None:
                    # ALU immediates are masked to 32 bits at bind time:
                    # add/sub/mul are congruent mod 2**32, bitwise ops and
                    # shift counts depend only on the low bits, and uint64
                    # arithmetic on two <2**32 operands never overflows.
                    fn = _bind_alu_ri(f, res(dr), res(ar), imm & _M, npc)
                alu = 1
            elif kind == dc.K_MOV:
                _, dr, sr = t
                fn = bad((dr, sr)) or _bind_mov(res(dr), res(sr), npc)
                mov = 1
            elif kind == dc.K_MOVI:
                _, dr, imm = t
                fn = bad((dr,)) or _bind_movi(res(dr), imm & _M, npc)
                alu = 1
            elif kind == dc.K_NOP:
                fn = _bind_br(npc)
            elif kind == dc.K_BR:
                fn = _bind_br(t[1])
            elif kind == dc.K_COND_RR:
                _, f, ar, br, target = t
                fn = bad((ar, br)) or _bind_cond_rr(
                    f, res(ar), res(br), target, npc, bscratch
                )
            elif kind == dc.K_COND_RI:
                _, f, ar, imm, target = t
                fn = bad((ar,))
                if fn is None:
                    folded = _fold_cond_imm(f, imm)
                    if folded is None:
                        fn = _bind_cond_ri(
                            f, res(ar), imm, target, npc, bscratch
                        )
                    else:
                        # Out-of-range immediate: the comparison is a
                        # constant, the branch an unconditional jump.
                        fn = _bind_br(target if folded else npc)
            elif kind == dc.K_LOAD:
                _, drr, br, off = t
                fn = bad((drr, br))
                if fn is None:
                    csb = (dc.K_LOAD, res(drr), res(br), off)
            elif kind == dc.K_LOADQ:
                _, drs, br, off = t
                fn = bad(drs + (br,))
                if fn is None:
                    csb = (
                        dc.K_LOADQ,
                        tuple(res(r) for r in drs),
                        res(br),
                        off,
                    )
            elif kind == dc.K_STORE:
                _, sr, br, off = t
                fn = bad((sr, br))
                if fn is None:
                    csb = (dc.K_STORE, res(sr), res(br), off)
            elif kind == dc.K_STOREQ:
                _, srs, br, off = t
                fn = bad(srs + (br,))
                if fn is None:
                    csb = (
                        dc.K_STOREQ,
                        tuple(res(r) for r in srs),
                        res(br),
                        off,
                    )
            elif kind == dc.K_RECV:
                _, drr = t
                fn = bad((drr,))
                if fn is None:
                    csb = (dc.K_RECV, res(drr))
            elif kind == dc.K_SEND:
                _, sr = t
                fn = bad((sr,))
                if fn is None:
                    csb = (dc.K_SEND, res(sr))
            elif kind == dc.K_CTX:
                csb = (dc.K_CTX,)
            elif kind == dc.K_HALT:
                csb = (dc.K_HALT,)
            else:  # pragma: no cover - decode() is exhaustive
                raise SimulationError(f"unbound decode kind {kind}")
            if fn is not None:
                code.append(fn)
                csbs.append(None)
            else:
                code.append(None)
                csbs.append(csb)
            is_alu.append(alu)
            is_mov.append(mov)
        # Falling off the end must fail the lane, as in the reference.
        code.append(None)
        csbs.append((dc.K_OFF_END,))
        is_alu.append(0)
        is_mov.append(0)
        return code, csbs, is_alu, is_mov

    # ------------------------------------------------------------------
    # Per-lane scalar scheduler (mirrors the fast engine's loop exactly).
    # ------------------------------------------------------------------
    def _advance_all(
        self,
        active: List[int],
        max_cycles: int,
        stop_on_first_halt: bool,
    ) -> Dict[Tuple[int, int], List[int]]:
        """Advance every active lane's scheduler to its next burst.

        Returns the lanes granted the PU (deferred writebacks applied)
        grouped by the ``(tid, pc)`` they will execute; lanes that
        finished or failed are recorded in ``_finished``/``_errors`` and
        omitted.  One method call covers the whole batch -- the per-lane
        loop runs over locals, which measurably matters on kernels that
        hit a scheduling boundary every few instructions.
        """
        groups: Dict[Tuple[int, int], List[int]] = {}
        cycles = self._cycles
        readys = self._ready
        pendings = self._pending
        idles = self._idles
        halteds = self._halted
        pcs = self._pcs
        writebacks = self._writebacks
        errors = self._errors
        finished = self._finished
        heappop = heapq.heappop
        for lane in active:
            cycle = cycles[lane]
            ready = readys[lane]
            pending = pendings[lane]
            while True:
                if stop_on_first_halt and halteds[lane]:
                    cycles[lane] = cycle
                    finished[lane] = True
                    break
                if cycle > max_cycles:
                    cycles[lane] = cycle
                    errors[lane] = WatchdogError(
                        f"exceeded {max_cycles} cycles; runaway program?"
                    )
                    break
                while pending and pending[0][0] <= cycle:
                    ready.append(heappop(pending)[1])
                if not ready:
                    if not pending:
                        cycles[lane] = cycle
                        finished[lane] = True
                        break  # everything halted
                    target = pending[0][0]
                    idles[lane] += target - cycle
                    cycle = target
                    continue
                tid = ready.popleft()
                cycles[lane] = cycle
                wb = writebacks[lane][tid]
                if wb is not None:
                    writebacks[lane][tid] = None
                    if type(wb) is tuple:
                        wb[0][lane] = wb[1]
                    else:
                        for row, value in wb:
                            row[lane] = value
                key = (tid, pcs[lane][tid])
                grp = groups.get(key)
                if grp is None:
                    groups[key] = [lane]
                else:
                    grp.append(lane)
                break
        return groups

    def _advance_all_single(
        self,
        active: List[int],
        max_cycles: int,
        stop_on_first_halt: bool,
    ) -> Dict[Tuple[int, int], List[int]]:
        """:meth:`_advance_all` specialized for single-thread lanes.

        With one thread per lane the scheduler degenerates: the ready
        queue and wake heap each hold at most one entry and are never
        populated together, so the grant decision is a couple of
        branches -- worth it because seed sweeps (the batch engine's
        main diet) are nearly always one program per lane.  The check
        order (halt stop, watchdog, wake/idle, watchdog after idle)
        matches the general loop exactly.
        """
        groups: Dict[Tuple[int, int], List[int]] = {}
        cycles = self._cycles
        readys = self._ready
        pendings = self._pending
        idles = self._idles
        halteds = self._halted
        pcs = self._pcs
        writebacks = self._writebacks
        errors = self._errors
        finished = self._finished
        for lane in active:
            cycle = cycles[lane]
            if stop_on_first_halt and halteds[lane]:
                finished[lane] = True
                continue
            if cycle > max_cycles:
                errors[lane] = WatchdogError(
                    f"exceeded {max_cycles} cycles; runaway program?"
                )
                continue
            ready = readys[lane]
            if ready:
                ready.popleft()
            else:
                pending = pendings[lane]
                if not pending:
                    finished[lane] = True
                    continue
                wake = pending[0][0]
                if wake > cycle:
                    idles[lane] += wake - cycle
                    cycle = wake
                    if cycle > max_cycles:
                        cycles[lane] = cycle
                        errors[lane] = WatchdogError(
                            f"exceeded {max_cycles} cycles; "
                            "runaway program?"
                        )
                        continue
                    cycles[lane] = cycle
                del pending[0]
            wb = writebacks[lane][0]
            if wb is not None:
                writebacks[lane][0] = None
                if type(wb) is tuple:
                    wb[0][lane] = wb[1]
                else:
                    for row, value in wb:
                        row[lane] = value
            key = (0, pcs[lane][0])
            grp = groups.get(key)
            if grp is None:
                groups[key] = [lane]
            else:
                grp.append(lane)
        return groups

    # ------------------------------------------------------------------
    # Vectorized burst: one (tid, pc) lane group runs to its context-
    # switch boundaries, splitting on divergent branches.
    # ------------------------------------------------------------------
    def _run_burst(
        self, tid: int, pc0: int, lanes: List[int], max_cycles: int
    ) -> None:
        code = self._code[tid]
        is_alu = self._is_alu[tid]
        is_mov = self._is_mov[tid]
        cycles = self._cycles
        # The runaway budget is tracked as one scalar: the smallest
        # remaining budget in the group.  Per-lane budgets are only
        # materialized in the (rare) branch below where some lane may
        # actually have exhausted its own.  A subgroup carries its
        # parent's minimum after a split -- a lower bound, re-tightened
        # in that same branch -- because budgets never change mid-burst.
        if len(lanes) == self.n_lanes:
            L = _FULL
            min_bud = max_cycles + 1 - max(cycles)
        else:
            L = np.array(lanes, dtype=np.intp)
            min_bud = max_cycles + 1 - max(cycles[l] for l in lanes)
        # Worklist of divergent subgroups.  Every lane in an item has
        # executed exactly the same instruction sequence this burst, so
        # the executed/alu/move counts are scalars shared by the group.
        work = [(pc0, L, min_bud, 0, 0, 0)]
        while work:
            pc, L, min_bud, n, n_alu, n_mov = work.pop()
            while True:
                if n >= min_bud:
                    # Some lane may have exhausted its runaway budget:
                    # fail exactly those, keep executing the others
                    # (per-lane watchdog).
                    arr = self._arange if L is _FULL else L
                    lanes_py = arr.tolist()
                    buds = [max_cycles + 1 - cycles[l] for l in lanes_py]
                    keep = [
                        l for l, bd in zip(lanes_py, buds) if bd > n
                    ]
                    if len(keep) != len(lanes_py):
                        for lx, bd in zip(lanes_py, buds):
                            if bd <= n:
                                self._watchdog_lane(
                                    lx, tid, pc, n, n_alu, n_mov, max_cycles
                                )
                        if not keep:
                            break
                        L = np.array(keep, dtype=np.intp)
                        min_bud = max_cycles + 1 - max(
                            cycles[l] for l in keep
                        )
                    else:
                        min_bud = min(buds)
                entry = code[pc]
                if entry is None:
                    # Context-switch boundary (or off-end sentinel):
                    # queues, memory, and wake times are scalar per-lane
                    # state, settled for the whole group at once.
                    lanes_py = self._lane_list if L is _FULL else L.tolist()
                    self._settle_csb_group(
                        tid, pc, L, lanes_py, n, n_alu, n_mov
                    )
                    break
                try:
                    r = entry(L)
                except SimulationError as exc:
                    lanes_py = self._lane_list if L is _FULL else L.tolist()
                    for lx in lanes_py:
                        self._exec_fail(lx, tid, pc, n, n_alu, n_mov, exc)
                    break
                n += 1
                n_alu += is_alu[pc]
                n_mov += is_mov[pc]
                if type(r) is int:
                    pc = r
                else:
                    taken, fall, mask = r
                    if mask.all():
                        pc = taken
                    elif not mask.any():
                        pc = fall
                    else:
                        # Divergence: split the group; the taken half is
                        # parked on the worklist, the fall-through half
                        # continues (both halves share this burst's
                        # executed counts so far).
                        self._splits += 1
                        arr = self._arange if L is _FULL else L
                        work.append(
                            (taken, arr[mask], min_bud, n, n_alu, n_mov)
                        )
                        L = arr[~mask]
                        pc = fall

    def _flush_burst(
        self, lane: int, tid: int, n: int, n_alu: int, n_mov: int
    ) -> None:
        ca = self._counts[tid]
        ca[0, lane] += n_alu
        ca[1, lane] += n_mov
        ca[2, lane] += n
        ca[3, lane] += n
        self._cycles[lane] += n

    def _watchdog_lane(
        self,
        lane: int,
        tid: int,
        pc: int,
        n: int,
        n_alu: int,
        n_mov: int,
        max_cycles: int,
    ) -> None:
        self._flush_burst(lane, tid, n, n_alu, n_mov)
        self._pcs[lane][tid] = pc
        self._errors[lane] = WatchdogError(
            f"exceeded {max_cycles} cycles; runaway program?"
        )

    def _exec_fail(
        self,
        lane: int,
        tid: int,
        pc: int,
        n: int,
        n_alu: int,
        n_mov: int,
        exc: SimulationError,
    ) -> None:
        self._flush_burst(lane, tid, n, n_alu, n_mov)
        self._pcs[lane][tid] = pc
        self._errors[lane] = exc

    # ------------------------------------------------------------------
    # Context-switch boundaries, settled per lane GROUP (mirrors the
    # fast engine's per-boundary bookkeeping exactly).  The kind
    # dispatch, register reads, and counter deltas are shared by the
    # whole group: register values leave numpy via one bulk ``tolist()``
    # instead of one boxed scalar extraction per lane, which is where
    # CSB-heavy kernels used to spend most of their time.  Queues,
    # memory words, and wake heaps stay scalar per-lane state.
    #
    # Per lane the bookkeeping is: rest the thread at the boundary pc (a
    # halted thread stays at its ``halt``; relinquishing kinds advance
    # it to pc+1), charge the burst's counters plus the boundary
    # instruction, then apply the kind's effect.
    # ------------------------------------------------------------------
    def _settle_csb_group(
        self,
        tid: int,
        pc: int,
        L,
        lanes: List[int],
        n: int,
        n_alu: int,
        n_mov: int,
    ) -> None:
        csb = self._csbs[tid][pc]
        kind = csb[0]
        contexts = self._contexts
        ca = self._counts[tid]
        cycles = self._cycles
        pcs = self._pcs
        switches = self._switches
        errors = self._errors
        ctx_cost = self.ctx_cost
        issued = n + 1
        npc = pc + 1
        # Counter deltas are scalars shared by the whole group, so every
        # slot is charged in ONE (possibly fancy-) indexed add; ``L`` is
        # a plain slice for full-width groups.  Lanes that fail on an
        # illegal address below are corrected afterwards (rare).
        if kind == dc.K_CTX:
            ca[0, L] += n_alu
            ca[1, L] += n_mov
            ca[2, L] += issued
            ca[3, L] += issued + ctx_cost
            ca[5, L] += 1  # ctx_instrs
            ca[6, L] += 1
            readys = self._ready
            for lane in lanes:
                pcs[lane][tid] = npc
                readys[lane].append(tid)
                cycles[lane] += issued + ctx_cost
                switches[lane] += ctx_cost
            return
        if kind == dc.K_HALT:
            ca[0, L] += n_alu
            ca[1, L] += n_mov
            ca[2, L] += issued
            ca[3, L] += issued + ctx_cost
            ca[6, L] += 1
            halted = self._halted
            for lane in lanes:
                pcs[lane][tid] = pc
                thread = contexts[lane][tid]
                thread.halted = True
                halted[lane] += 1
                thread.stats.finish_cycle = cycles[lane] + issued
                cycles[lane] += issued + ctx_cost
                switches[lane] += ctx_cost
            return
        if kind == dc.K_OFF_END:
            # Falling off the end fails the lane, as in the reference.
            for lane in lanes:
                ca[0, lane] += n_alu
                ca[1, lane] += n_mov
                ca[2, lane] += n
                ca[3, lane] += n
                cycles[lane] += n
                pcs[lane][tid] = pc
                errors[lane] = SimulationError(
                    f"thread {tid} ran off the end of "
                    f"{contexts[lane][tid].program.name!r}"
                )
            return

        # Blocking memory/queue kinds: apply the effect, schedule the
        # wake, charge the context switch (the fast engine's common
        # path).  ``cyc`` is the lane's cycle count after the boundary
        # instruction issues; the wake lands ``latency`` after it and
        # the PU is freed ``ctx_cost`` later.
        memories = self.memories
        pendings = self._pending
        writebacks = self._writebacks
        heappush = heapq.heappush
        base_latency = self.mem_latency
        lat_regions = self.latency_regions
        if kind == dc.K_RECV and self.measure_iterations is not None:
            # CPI measurement reads a lane's running busy/iteration
            # counters mid-flight; keep that path fully scalar.
            self._settle_recv_measured(
                tid, pc, lanes, n, n_alu, n_mov
            )
            return
        ca[0, L] += n_alu
        ca[1, L] += n_mov
        ca[2, L] += issued
        ca[3, L] += issued + ctx_cost
        ca[4, L] += 1  # mem_ops
        ca[6, L] += 1
        bad = None
        if kind == dc.K_STORE:
            _, srow, brow, off = csb
            bases = (brow if L is _FULL else brow[L]).tolist()
            vals = (srow if L is _FULL else srow[L]).tolist()
            for lane, base, value in zip(lanes, bases, vals):
                cyc = cycles[lane] + issued
                addr = (base + off) & _M
                memory = memories[lane]
                if addr >= memory.size:
                    pcs[lane][tid] = pc
                    cycles[lane] = cyc
                    errors[lane] = SimulationError(
                        f"address {addr:#x} outside memory of "
                        f"{memory.size:#x} words"
                    )
                    bad = [lane] if bad is None else bad + [lane]
                    continue
                memory._words[addr] = value
                contexts[lane][tid].stores.append((addr, value))
                latency = base_latency
                if lat_regions:
                    for lo, hi, lat in lat_regions:
                        if lo <= addr < hi:
                            latency = lat
                            break
                heappush(pendings[lane], (cyc + latency, tid))
                pcs[lane][tid] = npc
                cycles[lane] = cyc + ctx_cost
                switches[lane] += ctx_cost
        elif kind == dc.K_LOAD:
            _, drow, brow, off = csb
            bases = (brow if L is _FULL else brow[L]).tolist()
            for lane, base in zip(lanes, bases):
                cyc = cycles[lane] + issued
                addr = (base + off) & _M
                memory = memories[lane]
                if addr >= memory.size:
                    pcs[lane][tid] = pc
                    cycles[lane] = cyc
                    errors[lane] = SimulationError(
                        f"address {addr:#x} outside memory of "
                        f"{memory.size:#x} words"
                    )
                    bad = [lane] if bad is None else bad + [lane]
                    continue
                writebacks[lane][tid] = (
                    drow, memory._words.get(addr, 0)
                )
                latency = base_latency
                if lat_regions:
                    for lo, hi, lat in lat_regions:
                        if lo <= addr < hi:
                            latency = lat
                            break
                heappush(pendings[lane], (cyc + latency, tid))
                pcs[lane][tid] = npc
                cycles[lane] = cyc + ctx_cost
                switches[lane] += ctx_cost
        elif kind == dc.K_LOADQ:
            _, drows, brow, off = csb
            nw = len(drows)
            bases = (brow if L is _FULL else brow[L]).tolist()
            for lane, base in zip(lanes, bases):
                cyc = cycles[lane] + issued
                addr = (base + off) & _M
                memory = memories[lane]
                mwords = memory._words
                if addr + nw <= memory.size:
                    # In-bounds and wrap-free: skip per-word checks.
                    mget = mwords.get
                    wb = [
                        (drow, mget(addr + k, 0))
                        for k, drow in enumerate(drows)
                    ]
                else:
                    msize = memory.size
                    wb = []
                    for k, drow in enumerate(drows):
                        word = (addr + k) & _M
                        if word >= msize:
                            pcs[lane][tid] = pc
                            cycles[lane] = cyc
                            errors[lane] = SimulationError(
                                f"address {word:#x} outside memory of "
                                f"{msize:#x} words"
                            )
                            wb = None
                            break
                        wb.append((drow, mwords.get(word, 0)))
                    if wb is None:
                        bad = [lane] if bad is None else bad + [lane]
                        continue
                writebacks[lane][tid] = wb
                latency = base_latency
                if lat_regions:
                    for lo, hi, lat in lat_regions:
                        if lo <= addr < hi:
                            latency = lat
                            break
                heappush(pendings[lane], (cyc + latency, tid))
                pcs[lane][tid] = npc
                cycles[lane] = cyc + ctx_cost
                switches[lane] += ctx_cost
        elif kind == dc.K_STOREQ:
            _, srows, brow, off = csb
            nw = len(srows)
            bases = (brow if L is _FULL else brow[L]).tolist()
            vals_rows = list(zip(*(
                (srow if L is _FULL else srow[L]).tolist()
                for srow in srows
            )))
            for i, lane in enumerate(lanes):
                cyc = cycles[lane] + issued
                addr = (bases[i] + off) & _M
                memory = memories[lane]
                mwords = memory._words
                stores = contexts[lane][tid].stores
                vals = vals_rows[i]
                if addr + nw <= memory.size:
                    # In-bounds and wrap-free: skip per-word checks.
                    for k, value in enumerate(vals):
                        word = addr + k
                        mwords[word] = value
                        stores.append((word, value))
                else:
                    msize = memory.size
                    failed = False
                    for k, value in enumerate(vals):
                        word = (addr + k) & _M
                        if word >= msize:
                            pcs[lane][tid] = pc
                            cycles[lane] = cyc
                            errors[lane] = SimulationError(
                                f"address {word:#x} outside memory of "
                                f"{msize:#x} words"
                            )
                            failed = True
                            break
                        mwords[word] = value
                        stores.append((word, value))
                    if failed:
                        bad = [lane] if bad is None else bad + [lane]
                        continue
                latency = base_latency
                if lat_regions:
                    for lo, hi, lat in lat_regions:
                        if lo <= addr < hi:
                            latency = lat
                            break
                heappush(pendings[lane], (cyc + latency, tid))
                pcs[lane][tid] = npc
                cycles[lane] = cyc + ctx_cost
                switches[lane] += ctx_cost
        elif kind == dc.K_RECV:
            _, drow = csb
            inc = []
            for lane in lanes:
                cyc = cycles[lane] + issued
                thread = contexts[lane][tid]
                base = thread.next_packet()
                if base:
                    inc.append(lane)
                writebacks[lane][tid] = (drow, base & _M)
                heappush(pendings[lane], (cyc + base_latency, tid))
                pcs[lane][tid] = npc
                cycles[lane] = cyc + ctx_cost
                switches[lane] += ctx_cost
            if inc:
                ca[7, inc] += 1  # iterations
        elif kind == dc.K_SEND:
            _, srow = csb
            vals = (srow if L is _FULL else srow[L]).tolist()
            for lane, value in zip(lanes, vals):
                cyc = cycles[lane] + issued
                contexts[lane][tid].out_queue.append(value)
                heappush(pendings[lane], (cyc + base_latency, tid))
                pcs[lane][tid] = npc
                cycles[lane] = cyc + ctx_cost
                switches[lane] += ctx_cost
        else:  # pragma: no cover - binding is exhaustive
            raise SimulationError(f"unhandled CSB kind {kind}")
        if bad is not None:
            # Failed lanes never issued the blocking op or relinquished:
            # take back the pre-charged tail.
            for lane in bad:
                ca[3, lane] -= ctx_cost
                ca[4, lane] -= 1
                ca[6, lane] -= 1

    def _settle_recv_measured(
        self, tid: int, pc: int, lanes: List[int], n: int,
        n_alu: int, n_mov: int,
    ) -> None:
        """``recv`` under CPI measurement: the mark/CPI decision reads a
        lane's running iteration/busy counters, so everything stays
        scalar per lane (bookkeeping order identical to the fast
        engine)."""
        _, drow = self._csbs[tid][pc]
        contexts = self._contexts
        ca = self._counts[tid]
        cycles = self._cycles
        pcs = self._pcs
        switches = self._switches
        ctx_cost = self.ctx_cost
        issued = n + 1
        npc = pc + 1
        measure_k = self.measure_iterations
        base_latency = self.mem_latency
        writebacks = self._writebacks
        pendings = self._pending
        heappush = heapq.heappush
        for lane in lanes:
            ca[0, lane] += n_alu
            ca[1, lane] += n_mov
            ca[2, lane] += issued
            ca[3, lane] += issued
            cyc = cycles[lane] + issued
            thread = contexts[lane][tid]
            base = thread.next_packet()
            if base:
                ca[7, lane] += 1  # iterations
                iters = thread.stats.iterations + int(ca[7, lane])
                busy = thread.stats.busy_cycles + int(ca[3, lane])
                if iters == 1:
                    thread.busy_mark = busy
                elif (
                    iters == measure_k + 1
                    and thread.busy_mark is not None
                ):
                    thread.stats.measured_cpi = (
                        busy - thread.busy_mark
                    ) / measure_k
            writebacks[lane][tid] = (drow, base & _M)
            ca[3, lane] += ctx_cost
            ca[4, lane] += 1
            ca[6, lane] += 1
            heappush(pendings[lane], (cyc + base_latency, tid))
            pcs[lane][tid] = npc
            cycles[lane] = cyc + ctx_cost
            switches[lane] += ctx_cost

    # ------------------------------------------------------------------
    # Execution entry points.
    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 50_000_000,
        stop_on_first_halt: bool = False,
    ) -> MachineStats:
        """Single-lane run with the other engines' interface: returns
        the lane's :class:`MachineStats`, raising its error directly."""
        if self.n_lanes != 1:
            raise EngineError(
                f"run() drives a single lane; this batch has "
                f"{self.n_lanes} -- use run_batch()"
            )
        result = self.run_batch(
            max_cycles=max_cycles, stop_on_first_halt=stop_on_first_halt
        )[0]
        if result.error is not None:
            raise result.error
        return result.stats

    def run_batch(
        self,
        max_cycles: int = 50_000_000,
        stop_on_first_halt: bool = False,
    ) -> List[LaneResult]:
        """Run every lane to completion; per-lane outcomes in lane order.

        A lane that fails (watchdog, illegal address) is reported in its
        :class:`LaneResult` -- healthy lanes are unaffected and still
        return full stats.
        """
        if faults.active() is not None:
            raise EngineError(
                "the batch engine cannot honour an armed fault-injection "
                "plan (per-machine RNG event order is undefined across "
                "lanes); use engine='fast' or engine='reference'"
            )
        n_lanes = self.n_lanes
        for lane in range(n_lanes):
            self._ready[lane] = deque(range(self._n_threads))
            self._pending[lane] = []
        self._splits = 0
        active = [
            lane
            for lane in range(n_lanes)
            if self._errors[lane] is None and not self._finished[lane]
        ]
        errors = self._errors
        advance = (
            self._advance_all_single
            if self._n_threads == 1
            else self._advance_all
        )
        while active:
            groups = advance(active, max_cycles, stop_on_first_halt)
            if not groups:
                break
            for (tid, pc), lanes in groups.items():
                self._run_burst(tid, pc, lanes, max_cycles)
            active = [
                lane
                for lanes in groups.values()
                for lane in lanes
                if errors[lane] is None
            ]

        results: List[LaneResult] = []
        for lane in range(n_lanes):
            error = self._errors[lane]
            if error is not None:
                results.append(LaneResult(lane=lane, error=error))
                continue
            contexts = self._contexts[lane]
            for tid, thread in enumerate(contexts):
                thread.pc = self._pcs[lane][tid]
                thread.blocked_until = None
            for wake_at, tid in self._pending[lane]:
                contexts[tid].blocked_until = wake_at
            for tid, thread in enumerate(contexts):
                cnt = self._counts[tid, :, lane].tolist()
                st = thread.stats
                st.alu_ops += cnt[0]
                st.moves += cnt[1]
                st.instructions += cnt[2]
                st.busy_cycles += cnt[3]
                st.mem_ops += cnt[4]
                st.ctx_instrs += cnt[5]
                st.switches += cnt[6]
                st.iterations += cnt[7]
                self._counts[tid, :, lane] = 0
                # Mirror final virtual-register values into the context
                # (plain ints, same post-run surface as the reference).
                names = self._decoded[tid].vreg_names
                if names:
                    col = self._vfiles[tid][:, lane].tolist()
                    thread.vregs.update(zip(names, col))
            results.append(
                LaneResult(
                    lane=lane,
                    stats=MachineStats(
                        cycles=self._cycles[lane],
                        idle_cycles=self._idles[lane],
                        switch_cycles=self._switches[lane],
                        threads=[t.stats for t in contexts],
                    ),
                )
            )
        if n_lanes == 1:
            self.cycle = self._cycles[0]
        self._emit_metrics(results)
        return results

    def _emit_metrics(self, results: List[LaneResult]) -> None:
        em = obs.get_emitter()
        if not em.enabled:
            return
        ok = [r for r in results if r.ok]
        total_cycles = sum(r.stats.cycles for r in ok)
        reg = obs_metrics.registry()
        reg.counter("sim.runs").inc(len(ok))
        reg.counter("sim.runs", engine="batch").inc(len(ok))
        reg.counter("sim.cycles").inc(total_cycles)
        reg.counter("sim.cycles", engine="batch").inc(total_cycles)
        labels = {
            "lanes": self.n_lanes,
            "kernel": self._contexts[0][0].program.name,
        }
        reg.counter("sim.batch.runs", **labels).inc()
        reg.counter("sim.batch.lanes", **labels).inc(self.n_lanes)
        reg.counter("sim.batch.splits", **labels).inc(self._splits)
        errors = len(results) - len(ok)
        if errors:
            reg.counter("sim.batch.errors", **labels).inc(errors)
        em.emit(
            "sim.batch.run",
            lanes=self.n_lanes,
            kernel=labels["kernel"],
            splits=self._splits,
            errors=errors,
            cycles=total_cycles,
        )


# ----------------------------------------------------------------------
# Workload-level batch API.
# ----------------------------------------------------------------------
def build_batch_machine(
    programs: Sequence[Program],
    seeds: Sequence[int],
    packets_per_thread: int = 32,
    payload_words: int = 16,
    vary_size: bool = False,
    nreg: int = 128,
    mem_latency: int = 20,
    ctx_cost: int = 1,
    measure_iterations: Optional[int] = None,
    latency_regions: Optional[Sequence[Tuple[int, int, int]]] = None,
) -> BatchMachine:
    """A :class:`BatchMachine` with one lane per seed, each lane's
    workload laid out exactly as :func:`repro.sim.run.run_threads` lays
    it out for that seed (thread ``t`` draws packets from seed
    ``seed + t`` at the standard per-thread packet areas)."""
    from repro.sim.packets import make_workload
    from repro.sim.run import PACKET_AREA_BASE, PACKET_AREA_STRIDE

    machine = BatchMachine(
        programs,
        n_lanes=len(seeds),
        nreg=nreg,
        mem_latency=mem_latency,
        ctx_cost=ctx_cost,
        measure_iterations=measure_iterations,
        latency_regions=latency_regions,
    )
    for lane, seed in enumerate(seeds):
        memory = machine.memories[lane]
        for tid, thread in enumerate(machine.lane_threads(lane)):
            workload = make_workload(
                memory,
                base=PACKET_AREA_BASE + tid * PACKET_AREA_STRIDE,
                n_packets=packets_per_thread,
                payload_words=payload_words,
                seed=seed + tid,
                vary_size=vary_size,
            )
            thread.in_queue = list(workload.bases)
    return machine


def simulate_batch(
    programs: Sequence[Program],
    seeds: Sequence[int],
    packets_per_thread: int = 32,
    payload_words: int = 16,
    vary_size: bool = False,
    nreg: int = 128,
    mem_latency: int = 20,
    ctx_cost: int = 1,
    max_cycles: int = 50_000_000,
    stop_on_first_halt: bool = False,
    measure_iterations: Optional[int] = None,
    latency_regions: Optional[Sequence[Tuple[int, int, int]]] = None,
    return_errors: bool = False,
) -> List:
    """Run ``programs`` once per seed as a single vectorized execution.

    The default returns one :class:`MachineStats` per seed -- each lane
    bit-identical to ``run_threads(programs, seed=s, ...)`` -- raising
    the first failed lane's error.  ``return_errors=True`` instead
    returns the per-lane :class:`LaneResult` list, letting callers see
    which lanes failed while keeping the healthy lanes' stats.
    """
    machine = build_batch_machine(
        programs,
        seeds,
        packets_per_thread=packets_per_thread,
        payload_words=payload_words,
        vary_size=vary_size,
        nreg=nreg,
        mem_latency=mem_latency,
        ctx_cost=ctx_cost,
        measure_iterations=measure_iterations,
        latency_regions=latency_regions,
    )
    results = machine.run_batch(
        max_cycles=max_cycles, stop_on_first_halt=stop_on_first_halt
    )
    if return_errors:
        return results
    for r in results:
        if r.error is not None:
            raise r.error
    return [r.stats for r in results]
