"""Execution-engine selection: reference interpreter vs fast engine.

Two engines implement the machine model:

* ``"reference"`` -- :class:`~repro.sim.machine.Machine`, the semantics
  oracle.  Supports every feature: instruction tracing, timeline
  recording, and the paranoid register-safety checker.
* ``"fast"`` -- :class:`~repro.sim.fast.FastMachine`, the pre-decoded
  burst engine.  Stats-identical to the reference but records no
  traces/timelines and performs no paranoid checks.

``"auto"`` (the default) picks the fast engine whenever no
reference-only feature is in play: an explicit ``trace``/``timeline``
request, a :class:`RegisterAssignment` (paranoid mode), or an active
telemetry capture (which the reference engine turns into timeline
recording) all select the reference engine.

Explicitly asking for ``engine="fast"`` together with a reference-only
feature raises :class:`~repro.errors.EngineError`; when the *global
default* (see :func:`set_default_engine`, used by the CLI's
``--engine`` flag) is ``"fast"`` the conflict instead falls back to the
reference engine with a :class:`RuntimeWarning` -- a harness-wide
preference should not explode the one allocated run inside a sweep.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Tuple, Union

from repro.errors import EngineError
from repro.ir.program import Program
from repro.obs import events as obs
from repro.resilience import guard
from repro.sim.fast import FastMachine
from repro.sim.machine import Machine

#: Recognised engine names.
ENGINES = ("auto", "fast", "reference")

#: Either concrete machine type (both expose the same run interface).
AnyMachine = Union[Machine, FastMachine]

_default_engine = "auto"


def get_default_engine() -> str:
    """The engine used when a call site passes ``engine=None``."""
    return _default_engine


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous one."""
    global _default_engine
    _check_name(name)
    previous = _default_engine
    _default_engine = name
    return previous


def _check_name(name: str) -> None:
    if name not in ENGINES:
        raise EngineError(
            f"unknown engine {name!r}; expected one of {', '.join(ENGINES)}"
        )


def select_engine(
    engine: Optional[str] = None,
    *,
    trace: bool = False,
    timeline: Optional[bool] = None,
    assignment=None,
) -> str:
    """Resolve an engine request to ``"fast"`` or ``"reference"``.

    ``engine=None`` consults the global default (non-strict: a
    conflicting ``"fast"`` default falls back with a warning).  An
    explicit ``engine="fast"`` is strict and raises
    :class:`EngineError` on conflict.
    """
    strict = engine is not None
    name = engine if engine is not None else _default_engine
    _check_name(name)
    if name == "reference":
        return "reference"

    blockers = []
    if trace:
        blockers.append("instruction tracing (trace=True)")
    if timeline:
        blockers.append("timeline recording (timeline=True)")
    if assignment is not None:
        blockers.append("the paranoid safety checker (assignment=...)")

    if name == "auto":
        # An active telemetry capture means the reference engine would
        # auto-record its timeline; keep that data complete.
        if blockers or (timeline is None and obs.enabled()):
            return "reference"
        return "fast"

    # name == "fast"
    if blockers:
        message = (
            "the fast engine does not support "
            + ", ".join(blockers)
            + "; use engine='reference'"
        )
        if strict:
            raise EngineError(message)
        warnings.warn(
            message + " -- falling back to the reference engine",
            RuntimeWarning,
            stacklevel=3,
        )
        guard.record_degradation(
            "engine.fast_to_reference", reason="; ".join(blockers)
        )
        return "reference"
    return "fast"


def create_machine(
    programs: Sequence[Program],
    engine: Optional[str] = None,
    *,
    nreg: int = 128,
    mem_latency: int = 20,
    ctx_cost: int = 1,
    memory=None,
    assignment=None,
    measure_iterations: Optional[int] = None,
    latency_regions: Optional[Sequence[Tuple[int, int, int]]] = None,
    trace: bool = False,
    timeline: Optional[bool] = None,
) -> AnyMachine:
    """Build the machine the resolved engine calls for.

    The keyword surface matches :class:`~repro.sim.machine.Machine`, so
    callers can switch engines without touching anything else.
    """
    chosen = select_engine(
        engine, trace=trace, timeline=timeline, assignment=assignment
    )
    cls = FastMachine if chosen == "fast" else Machine
    return cls(
        programs,
        nreg=nreg,
        mem_latency=mem_latency,
        ctx_cost=ctx_cost,
        memory=memory,
        assignment=assignment,
        measure_iterations=measure_iterations,
        latency_regions=latency_regions,
        trace=trace,
        timeline=timeline,
    )
