"""Execution-engine selection: reference, fast, and batch engines.

Three engines implement the machine model:

* ``"reference"`` -- :class:`~repro.sim.machine.Machine`, the semantics
  oracle.  Supports every feature: instruction tracing, timeline
  recording, and the paranoid register-safety checker.
* ``"fast"`` -- :class:`~repro.sim.fast.FastMachine`, the pre-decoded
  burst engine.  Stats-identical to the reference but records no
  traces/timelines and performs no paranoid checks.
* ``"batch"`` -- :class:`~repro.sim.batch.BatchMachine`, the numpy
  struct-of-arrays lockstep engine.  Runs many machine instances as one
  vectorized execution (see :func:`repro.sim.batch.simulate_batch`);
  behind this registry it drives a single lane, with the fast engine's
  feature restrictions.  Requires numpy: requesting it without numpy
  installed raises :class:`~repro.errors.EngineError` -- never a silent
  fallback.

``"auto"`` (the default) picks the fast engine whenever no
reference-only feature is in play: an explicit ``trace``/``timeline``
request, a :class:`RegisterAssignment` (paranoid mode), or an active
telemetry capture (which the reference engine turns into timeline
recording) all select the reference engine.  Auto never picks batch --
batching pays off when callers hand over whole seed sweeps, not single
runs.

Explicitly asking for ``engine="fast"``/``"batch"`` together with a
reference-only feature raises :class:`~repro.errors.EngineError`; when
the *global default* (see :func:`set_default_engine`, used by the CLI's
``--engine`` flag) names that engine the conflict instead falls back to
the reference engine with a :class:`RuntimeWarning` -- a harness-wide
preference should not explode the one allocated run inside a sweep.
Each distinct conflict warns **once per process** (the degradation
record and telemetry still fire per occurrence); a thousand-point sweep
does not print a thousand identical warnings.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Set, Tuple, Union

from repro.errors import EngineError
from repro.ir.program import Program
from repro.obs import events as obs
from repro.resilience import guard
from repro.sim.fast import FastMachine
from repro.sim.machine import Machine

#: Recognised engine names.
ENGINES = ("auto", "fast", "reference", "batch")

#: Any concrete machine type (all expose the same run interface).
AnyMachine = Union[Machine, FastMachine]

_default_engine = "auto"

#: Fallback-warning messages already issued this process (see module
#: docstring: warn once per distinct conflict, not once per create()).
_warned_fallbacks: Set[str] = set()


def get_default_engine() -> str:
    """The engine used when a call site passes ``engine=None``."""
    return _default_engine


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous one."""
    global _default_engine
    _check_name(name)
    previous = _default_engine
    _default_engine = name
    return previous


def _reset_fallback_warnings() -> None:
    """Forget which fallback warnings were issued (test hook)."""
    _warned_fallbacks.clear()


def _check_name(name: str) -> None:
    if name not in ENGINES:
        raise EngineError(
            f"unknown engine {name!r}; expected one of {', '.join(ENGINES)}"
        )


def select_engine(
    engine: Optional[str] = None,
    *,
    trace: bool = False,
    timeline: Optional[bool] = None,
    assignment=None,
) -> str:
    """Resolve an engine request to a concrete engine name.

    ``engine=None`` consults the global default (non-strict: a
    conflicting ``"fast"``/``"batch"`` default falls back with a
    once-per-process warning).  An explicit engine is strict and raises
    :class:`EngineError` on conflict, naming the flag that forced it.
    """
    strict = engine is not None
    name = engine if engine is not None else _default_engine
    _check_name(name)
    if name == "reference":
        return "reference"

    blockers = []
    if trace:
        blockers.append("instruction tracing (trace=True)")
    if timeline:
        blockers.append("timeline recording (timeline=True)")
    if assignment is not None:
        blockers.append("the paranoid safety checker (assignment=...)")

    if name == "auto":
        # An active telemetry capture means the reference engine would
        # auto-record its timeline; keep that data complete.
        if blockers or (timeline is None and obs.enabled()):
            return "reference"
        return "fast"

    # name == "fast" or "batch"
    if blockers:
        message = (
            f"the {name} engine does not support "
            + ", ".join(blockers)
            + "; use engine='reference'"
        )
        if strict:
            raise EngineError(message)
        fallback_note = message + " -- falling back to the reference engine"
        if fallback_note not in _warned_fallbacks:
            _warned_fallbacks.add(fallback_note)
            warnings.warn(fallback_note, RuntimeWarning, stacklevel=3)
        guard.record_degradation(
            f"engine.{name}_to_reference", reason="; ".join(blockers)
        )
        return "reference"
    return name


def _batch_machine_class():
    """Import the batch engine, mapping a missing numpy to EngineError."""
    try:
        from repro.sim.batch import BatchMachine
    except ImportError as exc:
        raise EngineError(
            "engine='batch' requires numpy, which is not importable "
            f"({exc}); install the package dependencies or pick "
            "engine='fast'"
        ) from exc
    return BatchMachine


def create_machine(
    programs: Sequence[Program],
    engine: Optional[str] = None,
    *,
    nreg: int = 128,
    mem_latency: int = 20,
    ctx_cost: int = 1,
    memory=None,
    assignment=None,
    measure_iterations: Optional[int] = None,
    latency_regions: Optional[Sequence[Tuple[int, int, int]]] = None,
    trace: bool = False,
    timeline: Optional[bool] = None,
) -> AnyMachine:
    """Build the machine the resolved engine calls for.

    The keyword surface matches :class:`~repro.sim.machine.Machine`, so
    callers can switch engines without touching anything else.  A
    ``"batch"`` engine here is a single-lane batch; whole-sweep batching
    goes through :func:`repro.sim.batch.simulate_batch`.
    """
    chosen = select_engine(
        engine, trace=trace, timeline=timeline, assignment=assignment
    )
    if chosen == "batch":
        cls = _batch_machine_class()
    else:
        cls = FastMachine if chosen == "fast" else Machine
    return cls(
        programs,
        nreg=nreg,
        mem_latency=mem_latency,
        ctx_cost=ctx_cost,
        memory=memory,
        assignment=assignment,
        measure_iterations=measure_iterations,
        latency_regions=latency_regions,
        trace=trace,
        timeline=timeline,
    )
