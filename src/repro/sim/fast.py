"""The pre-decoded fast execution engine.

:class:`FastMachine` is a drop-in replacement for the reference
:class:`~repro.sim.machine.Machine` on the hot benchmarking path.  It
produces **bit-identical** :class:`~repro.sim.stats.MachineStats`
(cycles, idle, switch, every per-thread counter), store traces, send
queues, and memory contents -- the differential suite in
``tests/test_sim_fast.py`` enforces this over the whole benchmark suite
and over hypothesis-generated programs -- while running the inner loop
an order of magnitude faster.  Two ideas carry the speedup:

1. **Pre-decoding** (:mod:`repro.sim.decode`): each program is lowered
   once; at machine construction every decoded instruction is *bound*
   per thread into a zero-argument closure over the actual register
   lists.  Register operands become plain list indexing (virtual
   registers live in a dense per-thread list, physical ones in the
   shared file), ALU/condition ops are pre-selected C-level functions,
   immediates are ints, and branch targets are integer PCs.  No dict
   dispatch, no ``isinstance``, no ``resolve()`` in the loop.

2. **Burst execution**: threads are non-preemptable, so between two
   context-switch boundaries the scheduler has no decisions to make.
   The inner loop runs one thread straight through to its next
   relinquish point -- ``pc = code[pc]()`` per instruction plus a
   runaway-budget decrement -- instead of re-entering the scheduler,
   re-checking trace/timeline/paranoid flags, and re-deriving cycle
   accounting on every instruction.  Cycle and instruction counters are
   settled once per burst; context-switch boundaries are handled by the
   scheduler exactly as the reference engine does.

What it deliberately does **not** do: instruction tracing, run/switch/
idle timeline recording, and the paranoid private-window checker.
Those are observability/verification features of the reference engine;
requesting them together with this engine raises
:class:`~repro.errors.EngineError` (auto-selection in
:mod:`repro.sim.engine` picks the reference engine instead).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import EngineError, SimulationError, WatchdogError
from repro.ir.program import Program
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import faults
from repro.sim import decode as dc
from repro.sim.machine import ThreadContext
from repro.sim.memory import MASK32, Memory
from repro.sim.stats import MachineStats

#: Per-thread counter slots.  Closures and the scheduler bump plain
#: list cells (two C-level ops) instead of ThreadStats attributes
#: (attribute get + set each); the totals are flushed into
#: :class:`~repro.sim.stats.ThreadStats` once per run.
#: Layout: [alu_ops, moves, instructions, busy_cycles, mem_ops,
#: ctx_instrs, switches, iterations].
_N_COUNTS = 8

_M = MASK32

#: Engine-private CSB kinds for loads/receives whose destination
#: registers are all thread-private (virtual): the loaded value cannot
#: be observed by any other thread before this thread resumes, so it is
#: applied immediately instead of going through the deferred-writeback
#: list.  Physical destinations keep the deferred path -- they are
#: architecturally shared, and the reference engine makes the value
#: visible only at resume.
_K_LOAD_D = 20
_K_LOADQ_D = 21
_K_RECV_D = 22


# ----------------------------------------------------------------------
# Closure factories.  Each returns a zero-argument callable that
# executes one instruction and returns the next PC.  ``dst``/``a``/``b``
# are (register_list, index) pairs resolved at bind time, ``cnt`` the
# thread's fast counter list.
# ----------------------------------------------------------------------
def _bind_alu_rr(fn, dst, a, b, cnt, npc, M=MASK32):
    df, di = dst
    af, ai = a
    bf, bi = b

    def op():
        df[di] = fn(af[ai], bf[bi]) & M
        cnt[0] += 1
        return npc

    return op


def _bind_alu_ri(fn, dst, a, imm, cnt, npc, M=MASK32):
    df, di = dst
    af, ai = a

    def op():
        df[di] = fn(af[ai], imm) & M
        cnt[0] += 1
        return npc

    return op


def _bind_mov(dst, src, cnt, npc):
    df, di = dst
    sf, si = src

    def op():
        df[di] = sf[si]
        cnt[1] += 1
        return npc

    return op


def _bind_movi(dst, imm, cnt, npc):
    df, di = dst

    def op():
        df[di] = imm
        cnt[0] += 1
        return npc

    return op


def _bind_nop(npc):
    def op():
        return npc

    return op


# ----------------------------------------------------------------------
# Fused straight-line runs.  A maximal stretch of ALU/move instructions
# with no branch, no context-switch boundary, and no jump target in its
# interior is only ever entered at its head, so the whole run collapses
# into ONE dispatched closure: the per-step bodies below carry neither
# counter bumps nor PC returns (the fused wrapper settles both once per
# run), and the scheduler's dispatch loop executes the run as a single
# step whose ``cost`` equals its instruction count.
# ----------------------------------------------------------------------
def _step_alu_rr(fn, dst, a, b, M=MASK32):
    df, di = dst
    af, ai = a
    bf, bi = b

    def step():
        df[di] = fn(af[ai], bf[bi]) & M

    return step


def _step_alu_ri(fn, dst, a, imm, M=MASK32):
    df, di = dst
    af, ai = a

    def step():
        df[di] = fn(af[ai], imm) & M

    return step


def _step_mov(dst, src):
    df, di = dst
    sf, si = src

    def step():
        df[di] = sf[si]

    return step


def _step_movi(dst, imm):
    df, di = dst

    def step():
        df[di] = imm

    return step


def _bind_fused(steps, n_alu, n_mov, cnt, npc):
    steps = tuple(steps)
    if n_mov:

        def op():
            for s in steps:
                s()
            cnt[0] += n_alu
            cnt[1] += n_mov
            return npc

    else:

        def op():
            for s in steps:
                s()
            cnt[0] += n_alu
            return npc

    return op


def _bind_br(target):
    def op():
        return target

    return op


def _bind_cond_rr(fn, a, b, taken, fall):
    af, ai = a
    bf, bi = b

    def op():
        return taken if fn(af[ai], bf[bi]) else fall

    return op


def _bind_cond_ri(fn, a, imm, taken, fall):
    af, ai = a

    def op():
        return taken if fn(af[ai], imm) else fall

    return op


def _bind_bad_reg(message):
    def op():
        raise SimulationError(message)

    return op


class FastMachine:
    """Pre-decoded burst-execution engine; stats-identical to
    :class:`~repro.sim.machine.Machine` (see module docstring).

    Accepts the reference machine's constructor signature so the two
    are interchangeable behind :func:`repro.sim.engine.create_machine`.
    ``trace=True``, ``timeline=True``, and a non-None ``assignment``
    (the paranoid checker) raise :class:`EngineError` -- pick the
    reference engine for those.  ``timeline=None`` (the reference
    engine's "auto" default) is treated as *off*: this engine never
    records timelines, even under an active telemetry capture.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        nreg: int = 128,
        mem_latency: int = 20,
        ctx_cost: int = 1,
        memory: Optional[Memory] = None,
        assignment=None,
        measure_iterations: Optional[int] = None,
        latency_regions: Optional[Sequence[Tuple[int, int, int]]] = None,
        trace: bool = False,
        timeline: Optional[bool] = None,
    ):
        if not programs:
            raise SimulationError("machine needs at least one thread")
        if trace:
            raise EngineError(
                "the fast engine does not record instruction traces; "
                "use the reference engine (engine='reference') for trace=True"
            )
        if timeline:
            raise EngineError(
                "the fast engine does not record run/switch/idle timelines; "
                "use the reference engine (engine='reference') for "
                "timeline=True"
            )
        if assignment is not None:
            raise EngineError(
                "the fast engine does not implement the paranoid "
                "register-safety checker; use the reference engine "
                "(engine='reference') for runs with a RegisterAssignment"
            )
        self.nreg = nreg
        self.mem_latency = mem_latency
        self.ctx_cost = ctx_cost
        self.measure_iterations = measure_iterations
        self.latency_regions = list(latency_regions or ())
        self.memory = memory if memory is not None else Memory()
        self.regfile = [0] * nreg
        self.assignment = None
        # Interface parity with the reference engine.
        self.trace_log = None
        self.timeline = None
        self.threads = [
            ThreadContext(tid=i, program=p) for i, p in enumerate(programs)
        ]
        self.cycle = 0
        self._idle = 0
        self._switch = 0
        self._decoded = [decode_cached(p) for p in programs]
        self._vfiles: List[List[int]] = [
            [0] * d.n_vregs for d in self._decoded
        ]
        self._counts: List[List[int]] = [
            [0] * _N_COUNTS for _ in programs
        ]
        #: Pending register writebacks per thread, applied when the
        #: thread next holds the PU: lists of (file, index, value).
        self._writebacks: List[Optional[List[Tuple[list, int, int]]]] = [
            None for _ in programs
        ]
        self._code: List[List[Optional[Callable[[], int]]]] = []
        self._csbs: List[List[Optional[Tuple]]] = []
        #: Per-pc instruction cost of one dispatch: 1 everywhere except
        #: at the head of a fused straight-line run, where it is the
        #: run's length (the runaway budget stays instruction-exact).
        self._cost: List[List[int]] = []
        for tid, d in enumerate(self._decoded):
            code, csbs, cost = self._bind_thread(tid, d)
            self._code.append(code)
            self._csbs.append(csbs)
            self._cost.append(cost)

    # ------------------------------------------------------------------
    # Binding: decoded tuples -> per-thread closures / CSB descriptors.
    # ------------------------------------------------------------------
    def _bind_thread(self, tid: int, d: dc.DecodedProgram):
        regfile = self.regfile
        vfile = self._vfiles[tid]
        cnt = self._counts[tid]
        nreg = self.nreg

        def res(ref: dc.RegRef):
            """(is_phys, index) -> (list, index), or None when the
            physical index is outside the register file (executing the
            instruction must raise, exactly like the reference)."""
            is_phys, idx = ref
            if is_phys:
                if not 0 <= idx < nreg:
                    return None
                return (regfile, idx)
            return (vfile, idx)

        code: List[Optional[Callable[[], int]]] = []
        csbs: List[Optional[Tuple]] = []
        #: Per-pc step closure for fusion (None when the pc cannot sit
        #: inside a fused run); NOPs are fusable with no step at all.
        step_at: List[Optional[Callable[[], None]]] = []
        fusable: List[bool] = []

        def bad(idx_refs):
            for is_phys, idx in idx_refs:
                if is_phys and not 0 <= idx < nreg:
                    return _bind_bad_reg(
                        f"register $r{idx} outside file of {nreg}"
                    )
            return None

        for pc, t in enumerate(d.instrs):
            kind = t[0]
            npc = pc + 1
            fn = None
            csb = None
            step = None
            fus = False
            if kind == dc.K_ALU_RR:
                _, f, dr, ar, br = t
                fn = bad((dr, ar, br))
                if fn is None:
                    rd, ra, rb = res(dr), res(ar), res(br)
                    fn = _bind_alu_rr(f, rd, ra, rb, cnt, npc)
                    step = _step_alu_rr(f, rd, ra, rb)
                    fus = True
            elif kind == dc.K_ALU_RI:
                _, f, dr, ar, imm = t
                fn = bad((dr, ar))
                if fn is None:
                    rd, ra = res(dr), res(ar)
                    fn = _bind_alu_ri(f, rd, ra, imm, cnt, npc)
                    step = _step_alu_ri(f, rd, ra, imm)
                    fus = True
            elif kind == dc.K_MOV:
                _, dr, sr = t
                fn = bad((dr, sr))
                if fn is None:
                    rd, rs = res(dr), res(sr)
                    fn = _bind_mov(rd, rs, cnt, npc)
                    step = _step_mov(rd, rs)
                    fus = True
            elif kind == dc.K_MOVI:
                _, dr, imm = t
                fn = bad((dr,))
                if fn is None:
                    rd = res(dr)
                    fn = _bind_movi(rd, imm, cnt, npc)
                    step = _step_movi(rd, imm)
                    fus = True
            elif kind == dc.K_NOP:
                fn = _bind_nop(npc)
                fus = True
            elif kind == dc.K_BR:
                fn = _bind_br(t[1])
            elif kind == dc.K_COND_RR:
                _, f, ar, br, target = t
                fn = bad((ar, br)) or _bind_cond_rr(
                    f, res(ar), res(br), target, npc
                )
            elif kind == dc.K_COND_RI:
                _, f, ar, imm, target = t
                fn = bad((ar,)) or _bind_cond_ri(
                    f, res(ar), imm, target, npc
                )
            elif kind == dc.K_LOAD:
                _, dr, br, off = t
                fn = bad((dr, br))
                if fn is None:
                    (df, di), (bf, bi) = res(dr), res(br)
                    k = _K_LOAD_D if df is vfile else dc.K_LOAD
                    csb = (k, df, di, bf, bi, off)
            elif kind == dc.K_LOADQ:
                _, drs, br, off = t
                fn = bad(drs + (br,))
                if fn is None:
                    rds = tuple(res(r) for r in drs)
                    bf, bi = res(br)
                    k = (
                        _K_LOADQ_D
                        if all(f is vfile for f, _ in rds)
                        else dc.K_LOADQ
                    )
                    csb = (k, rds, bf, bi, off)
            elif kind == dc.K_STORE:
                _, sr, br, off = t
                fn = bad((sr, br))
                if fn is None:
                    (sf, si), (bf, bi) = res(sr), res(br)
                    csb = (dc.K_STORE, sf, si, bf, bi, off)
            elif kind == dc.K_STOREQ:
                _, srs, br, off = t
                fn = bad(srs + (br,))
                if fn is None:
                    bf, bi = res(br)
                    csb = (
                        dc.K_STOREQ,
                        tuple(res(r) for r in srs),
                        bf,
                        bi,
                        off,
                    )
            elif kind == dc.K_RECV:
                _, dr = t
                fn = bad((dr,))
                if fn is None:
                    df, di = res(dr)
                    k = _K_RECV_D if df is vfile else dc.K_RECV
                    csb = (k, df, di)
            elif kind == dc.K_SEND:
                _, sr = t
                fn = bad((sr,))
                if fn is None:
                    sf, si = res(sr)
                    csb = (dc.K_SEND, sf, si)
            elif kind == dc.K_CTX:
                csb = (dc.K_CTX,)
            elif kind == dc.K_HALT:
                csb = (dc.K_HALT,)
            else:  # pragma: no cover - decode() is exhaustive
                raise SimulationError(f"unbound decode kind {kind}")
            if fn is not None:
                # Fast-path instruction (or a bad-register raiser that
                # shadows a CSB: the raise happens before any CSB work,
                # matching the reference read/write checks).
                code.append(fn)
                csbs.append(None)
            else:
                code.append(None)
                csbs.append(csb)
            step_at.append(step)
            fusable.append(fus)
        # Falling off the end must raise, as in the reference engine.
        code.append(None)
        csbs.append((dc.K_OFF_END,))

        # --- fuse maximal straight-line runs --------------------------
        # The dispatch loop only ever *lands* on a pc that is an entry
        # point: thread start, a branch target, the fall-through after a
        # conditional branch, or the resume point after a CSB.  A run of
        # fusable instructions whose interior contains no entry point is
        # always executed from its head, so the head's closure can be
        # replaced by one fused closure covering the whole run (interior
        # pcs keep their individual closures; they are simply never
        # dispatched).
        n = len(d.instrs)
        entries = {0}
        for pc, t in enumerate(d.instrs):
            kind = t[0]
            if kind == dc.K_BR:
                entries.add(t[1])
            elif kind in (dc.K_COND_RR, dc.K_COND_RI):
                entries.add(t[-1])
                entries.add(pc + 1)
            elif kind >= dc.K_FIRST_CSB:
                entries.add(pc + 1)
        cost = [1] * len(code)
        pc = 0
        while pc < n:
            if not fusable[pc]:
                pc += 1
                continue
            end = pc + 1
            while end < n and fusable[end] and end not in entries:
                end += 1
            if end - pc >= 2:
                steps = [s for s in step_at[pc:end] if s is not None]
                n_alu = n_mov = 0
                for q in range(pc, end):
                    k = d.instrs[q][0]
                    if k == dc.K_MOV:
                        n_mov += 1
                    elif k != dc.K_NOP:
                        n_alu += 1
                code[pc] = _bind_fused(steps, n_alu, n_mov, cnt, end)
                cost[pc] = end - pc
            pc = end
        return code, csbs, cost

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def _latency_for(self, addr: Optional[int]) -> int:
        if addr is not None:
            for lo, hi, latency in self.latency_regions:
                if lo <= addr < hi:
                    return latency
        return self.mem_latency

    def _fire_bitflip(self, plan, tid: int, cycle: int) -> None:
        """``sim.bitflip`` fault site at a context-switch boundary:
        flip one random bit of one random physical register (mirrors
        ``Machine._relinquish``)."""
        spec = faults.fire("sim.bitflip", tid=tid, cycle=cycle)
        if spec is None or self.nreg <= 0:
            return
        index = plan.rng.randrange(self.nreg)
        bit = plan.rng.randrange(32)
        self.regfile[index] ^= 1 << bit

    def run(
        self,
        max_cycles: int = 50_000_000,
        stop_on_first_halt: bool = False,
    ) -> MachineStats:
        """Run until every thread halts (or ``max_cycles`` elapses).

        Scheduling, cycle accounting, and the runaway check follow the
        reference engine exactly; see
        :meth:`repro.sim.machine.Machine.run`.
        """
        threads = self.threads
        memory = self.memory
        # The scheduler path inlines Memory.read/.write (same mask and
        # bounds check); Memory is never subclassed in this codebase.
        mwords = memory._words
        msize = memory.size
        mem_latency = self.mem_latency
        regions = self.latency_regions
        ctx_cost = self.ctx_cost
        measure_k = self.measure_iterations
        writebacks = self._writebacks
        all_code = self._code
        all_csbs = self._csbs
        all_cost = self._cost
        all_counts = self._counts
        heappush = heapq.heappush
        heappop = heapq.heappop
        # Fault-injection plan, fetched ONCE per run: the hot loop pays
        # a single local-variable None check per CSB when nothing is
        # armed.  A plan armed mid-run is picked up by the next run().
        plan = faults.active()

        ready = deque(t.tid for t in threads)
        pending: List[Tuple[int, int]] = []
        #: Thread program counters, kept in a plain list during the run
        #: (synced back to ThreadContext.pc at the end).
        pcs = [t.pc for t in threads]
        halted_count = 0
        cycle = self.cycle
        idle = self._idle
        switch = self._switch

        while True:
            if stop_on_first_halt and halted_count:
                break
            if cycle > max_cycles:
                self.cycle = cycle
                raise WatchdogError(
                    f"exceeded {max_cycles} cycles; runaway program?"
                )
            while pending and pending[0][0] <= cycle:
                ready.append(heappop(pending)[1])
            if not ready:
                if not pending:
                    break  # everything halted
                target = pending[0][0]
                idle += target - cycle
                cycle = target
                continue

            tid = ready.popleft()
            thread = threads[tid]
            cnt = all_counts[tid]
            wb = writebacks[tid]
            if wb is not None:
                writebacks[tid] = None
                for file, index, value in wb:
                    file[index] = value & _M

            # --- burst: run to the next context-switch boundary -------
            # ``cost[pc]`` is 1 except at fused-run heads, keeping
            # ``executed`` an exact instruction count.  A fused run may
            # overshoot an exhausted budget by a few instructions; the
            # run is aborted by the same runaway error either way.
            code = all_code[tid]
            cost = all_cost[tid]
            pc = pcs[tid]
            budget = max_cycles - cycle + 1
            start_budget = budget
            while budget > 0:
                f = code[pc]
                if f is None:
                    break
                budget -= cost[pc]
                pc = f()
            executed = start_budget - budget
            pcs[tid] = pc
            if budget <= 0:
                cycle += executed
                cnt[2] += executed  # instructions
                cnt[3] += executed  # busy_cycles
                thread.pc = pc
                self.cycle = cycle
                raise WatchdogError(
                    f"exceeded {max_cycles} cycles; runaway program?"
                )

            # --- context-switch boundary at pc ------------------------
            csb = all_csbs[tid][pc]
            kind = csb[0]
            if kind == dc.K_OFF_END:
                cycle += executed
                cnt[2] += executed
                cnt[3] += executed
                thread.pc = pc
                self.cycle = cycle
                raise SimulationError(
                    f"thread {tid} ran off the end of "
                    f"{thread.program.name!r}"
                )
            issued = executed + 1
            cycle += issued
            cnt[2] += issued  # instructions
            cnt[3] += issued  # busy_cycles
            if kind == _K_LOAD_D:
                # Load into a thread-private register: apply now (see
                # _K_LOAD_D note above), skipping the writeback list.
                _, df, di, bf, bi, off = csb
                addr = (bf[bi] + off) & _M
                if addr >= msize:
                    raise SimulationError(
                        f"address {addr:#x} outside memory of "
                        f"{msize:#x} words"
                    )
                df[di] = mwords.get(addr, 0)
            elif kind == dc.K_STORE:
                _, sf, si, bf, bi, off = csb
                addr = (bf[bi] + off) & _M
                if addr >= msize:
                    raise SimulationError(
                        f"address {addr:#x} outside memory of "
                        f"{msize:#x} words"
                    )
                value = sf[si]
                mwords[addr] = value & _M
                thread.stores.append((addr, value))
            elif kind == _K_RECV_D:
                _, df, di = csb
                addr = None
                base = thread.next_packet()
                if base:
                    cnt[7] += 1  # iterations
                    if measure_k is not None:
                        iters = thread.stats.iterations + cnt[7]
                        busy = thread.stats.busy_cycles + cnt[3]
                        if iters == 1:
                            thread.busy_mark = busy
                        elif (
                            iters == measure_k + 1
                            and thread.busy_mark is not None
                        ):
                            thread.stats.measured_cpi = (
                                busy - thread.busy_mark
                            ) / measure_k
                df[di] = base & _M
            elif kind == dc.K_SEND:
                _, sf, si = csb
                addr = None
                thread.out_queue.append(sf[si])
            elif kind == dc.K_CTX:
                cnt[5] += 1  # ctx_instrs
                pcs[tid] = pc + 1
                ready.append(tid)
                if plan is not None:
                    self._fire_bitflip(plan, tid, cycle)
                cycle += ctx_cost
                switch += ctx_cost
                cnt[6] += 1  # switches
                cnt[3] += ctx_cost
                continue
            elif kind == dc.K_HALT:
                thread.halted = True
                halted_count += 1
                thread.stats.finish_cycle = cycle
                if plan is not None:
                    self._fire_bitflip(plan, tid, cycle)
                cycle += ctx_cost
                switch += ctx_cost
                cnt[6] += 1
                cnt[3] += ctx_cost
                continue
            elif kind == dc.K_LOAD:
                _, df, di, bf, bi, off = csb
                addr = (bf[bi] + off) & _M
                if addr >= msize:
                    raise SimulationError(
                        f"address {addr:#x} outside memory of "
                        f"{msize:#x} words"
                    )
                writebacks[tid] = ((df, di, mwords.get(addr, 0)),)
            elif kind == _K_LOADQ_D or kind == dc.K_LOADQ:
                _, dsts, bf, bi, off = csb
                addr = (bf[bi] + off) & _M
                wb = []
                for k, (df, di) in enumerate(dsts):
                    word = (addr + k) & _M
                    if word >= msize:
                        raise SimulationError(
                            f"address {word:#x} outside memory of "
                            f"{msize:#x} words"
                        )
                    if kind == _K_LOADQ_D:
                        df[di] = mwords.get(word, 0)
                    else:
                        wb.append((df, di, mwords.get(word, 0)))
                if kind == dc.K_LOADQ:
                    writebacks[tid] = wb
            elif kind == dc.K_STOREQ:
                _, srcs, bf, bi, off = csb
                addr = (bf[bi] + off) & _M
                for k, (sf, si) in enumerate(srcs):
                    value = sf[si]
                    word = (addr + k) & _M
                    if word >= msize:
                        raise SimulationError(
                            f"address {word:#x} outside memory of "
                            f"{msize:#x} words"
                        )
                    mwords[word] = value & _M
                    thread.stores.append((word, value))
            else:  # K_RECV with a physical (shared) destination
                _, df, di = csb
                addr = None
                base = thread.next_packet()
                if base:
                    cnt[7] += 1
                    if measure_k is not None:
                        iters = thread.stats.iterations + cnt[7]
                        busy = thread.stats.busy_cycles + cnt[3]
                        if iters == 1:
                            thread.busy_mark = busy
                        elif (
                            iters == measure_k + 1
                            and thread.busy_mark is not None
                        ):
                            thread.stats.measured_cpi = (
                                busy - thread.busy_mark
                            ) / measure_k
                writebacks[tid] = ((df, di, base),)
            cnt[4] += 1  # mem_ops
            if regions:
                latency = mem_latency
                if addr is not None:
                    for lo, hi, lat in regions:
                        if lo <= addr < hi:
                            latency = lat
                            break
                wake_at = cycle + latency
            else:
                wake_at = cycle + mem_latency
            if plan is not None:
                # ``sim.stuck``: the wake never arrives; the idle-advance
                # jumps the clock past ``max_cycles`` and the watchdog
                # fires -- never a hang (mirrors Machine._block).
                if faults.fire("sim.stuck", tid=tid, cycle=cycle) is not None:
                    wake_at = cycle + faults.STUCK_DELAY
                self._fire_bitflip(plan, tid, cycle)
            heappush(pending, (wake_at, tid))
            pcs[tid] = pc + 1
            cycle += ctx_cost
            switch += ctx_cost
            cnt[6] += 1
            cnt[3] += ctx_cost

        self.cycle = cycle
        self._idle = idle
        self._switch = switch
        for thread, pc in zip(threads, pcs):
            thread.pc = pc
            thread.blocked_until = None
        for wake_at, tid in pending:
            threads[tid].blocked_until = wake_at
        for tid, thread in enumerate(threads):
            cnt = self._counts[tid]
            st = thread.stats
            st.alu_ops += cnt[0]
            st.moves += cnt[1]
            st.instructions += cnt[2]
            st.busy_cycles += cnt[3]
            st.mem_ops += cnt[4]
            st.ctx_instrs += cnt[5]
            st.switches += cnt[6]
            st.iterations += cnt[7]
            cnt[:] = [0] * _N_COUNTS
            # Mirror final virtual-register values into the context's
            # vregs dict so post-run inspection works like the
            # reference engine (decoded-but-never-written regs read 0,
            # the same default the reference's dict lookup yields).
            names = self._decoded[tid].vreg_names
            if names:
                thread.vregs.update(zip(names, self._vfiles[tid]))
        em = obs.get_emitter()
        if em.enabled:
            # Mirror the reference engine's run counters (machine.py) so
            # the labeled series compare across engines; totals stay
            # engine-agnostic.
            reg = obs_metrics.registry()
            reg.counter("sim.runs").inc()
            reg.counter("sim.runs", engine="fast").inc()
            reg.counter("sim.cycles").inc(cycle)
            reg.counter("sim.cycles", engine="fast").inc(cycle)
            reg.counter("sim.idle_cycles").inc(idle)
            reg.counter("sim.switch_cycles").inc(switch)
            for thread in threads:
                labels = {
                    "thread": thread.tid,
                    "kernel": thread.program.name,
                    "engine": "fast",
                }
                st = thread.stats
                reg.counter("sim.thread.busy_cycles", **labels).inc(
                    st.busy_cycles
                )
                reg.counter("sim.thread.instructions", **labels).inc(
                    st.instructions
                )
                reg.counter("sim.thread.iterations", **labels).inc(
                    st.iterations
                )
                reg.counter("sim.thread.switches", **labels).inc(st.switches)
        return MachineStats(
            cycles=cycle,
            idle_cycles=idle,
            switch_cycles=switch,
            threads=[t.stats for t in threads],
        )


def decode_cached(program: Program) -> dc.DecodedProgram:
    """Decode ``program``, reusing a cached decode for the same object.

    Programs are mutable (rewriting passes edit them in place), so the
    cache is keyed by object identity *and* a structural fingerprint
    (instruction identities + label table); any edit misses the cache
    and re-decodes.  Multiple machines over the same program -- the
    repeated runs of a benchmark sweep -- then share one decode.
    """
    key = (
        tuple(id(i) for i in program.instrs),
        tuple(sorted(program.labels.items())),
    )
    cached = getattr(program, "_decode_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    decoded = dc.decode_program(program)
    program._decode_cache = (key, decoded)  # type: ignore[attr-defined]
    return decoded
