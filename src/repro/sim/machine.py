"""The processing-unit simulator.

One :class:`Machine` models one micro-engine: up to ``Nthd`` hardware
threads sharing a register file of ``nreg`` physical registers and one
SRAM.  Timing model (the three facts the paper's numbers rest on):

* every instruction costs 1 cycle to issue;
* ``load``/``store``/``recv``/``send`` additionally block the issuing
  thread for ``mem_latency`` cycles; the PU switches to the next ready
  thread meanwhile;
* every relinquish of the PU (block, voluntary ``ctx``, halt) costs
  ``ctx_cost`` switch cycles.

Threads are non-preemptable and scheduled round-robin among ready threads;
blocked threads re-enter the ready queue in deterministic
``(wake_time, tid)`` order.  A ``load``'s destination register is written
when the thread *resumes* (the IXP's transfer-register behaviour -- the
GPR is untouched while other threads run, so the destination is not live
across the CSB).

Programs may use virtual registers (each thread then has a private
unbounded register map -- the *reference mode* used as a semantics oracle)
or physical registers (the shared register file).

**Paranoid mode**: given the :class:`RegisterAssignment` produced by the
allocator, the machine dynamically enforces the paper's safety property --
each thread only touches its private window and the shared window, and a
thread's private window is bit-identical across every span in which other
threads held the PU.  Violations raise :class:`SafetyViolation`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.assign import RegisterAssignment
from repro.errors import SafetyViolation, SimulationError, WatchdogError
from repro.resilience import faults
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, PhysReg, Reg, VirtualReg
from repro.ir.program import Program
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.sim.memory import MASK32, Memory
from repro.sim.stats import MachineStats, ThreadStats


class Segment(NamedTuple):
    """One maximal stretch of cycles spent the same way.

    ``kind`` is ``"run"`` (a thread issuing instructions), ``"switch"``
    (context-switch overhead charged to ``tid``), or ``"idle"`` (no ready
    thread; ``tid`` is None).  Half-open ``[start, end)`` in machine
    cycles; a machine's segments tile ``[0, cycles)`` exactly.
    """

    kind: str
    tid: Optional[int]
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start

_ALU_RR = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 31),
    Opcode.SHR: lambda a, b: a >> (b & 31),
    Opcode.MUL: lambda a, b: a * b,
}
_ALU_RI = {
    Opcode.ADDI: lambda a, b: a + b,
    Opcode.SUBI: lambda a, b: a - b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SHLI: lambda a, b: a << (b & 31),
    Opcode.SHRI: lambda a, b: a >> (b & 31),
    Opcode.MULI: lambda a, b: a * b,
}
_COND = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
    Opcode.BEQI: lambda a, b: a == b,
    Opcode.BNEI: lambda a, b: a != b,
    Opcode.BLTI: lambda a, b: a < b,
    Opcode.BGEI: lambda a, b: a >= b,
}


@dataclass
class ThreadContext:
    """One hardware thread's architectural state."""

    tid: int
    program: Program
    pc: int = 0
    vregs: Dict[str, int] = field(default_factory=dict)
    halted: bool = False
    blocked_until: Optional[int] = None
    pending_writeback: List[Tuple[Reg, int]] = field(default_factory=list)
    in_queue: List[int] = field(default_factory=list)
    in_pos: int = 0
    out_queue: List[int] = field(default_factory=list)
    stores: List[Tuple[int, int]] = field(default_factory=list)
    stats: ThreadStats = field(default_factory=ThreadStats)
    private_snapshot: Optional[List[int]] = None
    #: Busy-cycle mark taken at the first successful recv, used for the
    #: fixed-window steady-state measurement.
    busy_mark: Optional[int] = None

    def next_packet(self) -> int:
        if self.in_pos < len(self.in_queue):
            base = self.in_queue[self.in_pos]
            self.in_pos += 1
            return base
        return 0


class Machine:
    """An IXP-style micro-engine with ``nreg`` shared registers."""

    def __init__(
        self,
        programs: Sequence[Program],
        nreg: int = 128,
        mem_latency: int = 20,
        ctx_cost: int = 1,
        memory: Optional[Memory] = None,
        assignment: Optional[RegisterAssignment] = None,
        measure_iterations: Optional[int] = None,
        latency_regions: Optional[Sequence[Tuple[int, int, int]]] = None,
        trace: bool = False,
        timeline: Optional[bool] = None,
    ):
        """``latency_regions`` optionally overrides the memory latency per
        address range: ``(lo, hi, latency)`` applies to accesses with
        ``lo <= addr < hi`` (first match wins).  This models the IXP's
        split between fast SRAM (tables) and slower SDRAM (packet data);
        unmatched addresses use ``mem_latency``.

        ``trace`` records every executed instruction as
        ``(cycle, tid, pc, text)`` in :attr:`trace_log` (debugging aid;
        costs memory proportional to the run).

        ``timeline`` records cycle accounting as run/switch/idle
        :class:`Segment` objects in :attr:`timeline` (see
        :meth:`timeline_accounting`).  The default (None) follows the
        telemetry emitter: recording turns on automatically under an
        active :func:`repro.obs.events.capture` and stays off -- at zero
        per-cycle cost -- otherwise."""
        if not programs:
            raise SimulationError("machine needs at least one thread")
        self.nreg = nreg
        self.mem_latency = mem_latency
        self.ctx_cost = ctx_cost
        self.measure_iterations = measure_iterations
        self.latency_regions = list(latency_regions or ())
        self.trace_log: Optional[List[Tuple[int, int, int, str]]] = (
            [] if trace else None
        )
        if timeline is None:
            timeline = obs.enabled()
        self.timeline: Optional[List[Segment]] = [] if timeline else None
        self.memory = memory if memory is not None else Memory()
        self.regfile = [0] * nreg
        self.assignment = assignment
        self.threads = [
            ThreadContext(tid=i, program=p) for i, p in enumerate(programs)
        ]
        self.cycle = 0
        self._idle = 0
        self._switch = 0
        #: Threads that have executed ``halt`` (O(1) stop-on-first-halt
        #: checks instead of an O(threads) scan per scheduling step).
        self._halted_count = 0
        #: Min-heap of ``(wake_cycle, tid)`` for blocked threads; pops in
        #: exactly the deterministic ``(blocked_until, tid)`` wake order.
        self._pending_wake: List[Tuple[int, int]] = []
        #: Per-thread pre-resolved branch targets (label -> int PC done
        #: once here, not on every taken branch).
        self._targets = [t.program.target_pcs() for t in self.threads]

    # ------------------------------------------------------------------
    # Register access (with paranoid ownership checks).
    # ------------------------------------------------------------------
    def _windows(self, tid: int) -> Optional[Tuple[Tuple[int, int], Tuple[int, int]]]:
        if self.assignment is None:
            return None
        m = self.assignment.maps[tid]
        return m.private_registers(), self.assignment.shared_registers()

    def _check_owner(self, tid: int, index: int, access: str) -> None:
        windows = self._windows(tid)
        if windows is None:
            return
        (p0, p1), (s0, s1) = windows
        if p0 <= index < p1 or s0 <= index < s1:
            return
        raise SafetyViolation(
            f"thread {tid} {access} register $r{index} outside its private "
            f"window [{p0}, {p1}) and the shared window [{s0}, {s1})"
        )

    def _read(self, thread: ThreadContext, reg: Reg) -> int:
        if isinstance(reg, PhysReg):
            if not 0 <= reg.index < self.nreg:
                raise SimulationError(f"register {reg} outside file of {self.nreg}")
            self._check_owner(thread.tid, reg.index, "reads")
            return self.regfile[reg.index]
        return thread.vregs.get(reg.name, 0)

    def _write(self, thread: ThreadContext, reg: Reg, value: int) -> None:
        value &= MASK32
        if isinstance(reg, PhysReg):
            if not 0 <= reg.index < self.nreg:
                raise SimulationError(f"register {reg} outside file of {self.nreg}")
            self._check_owner(thread.tid, reg.index, "writes")
            self.regfile[reg.index] = value
        else:
            thread.vregs[reg.name] = value

    # ------------------------------------------------------------------
    # Paranoid private-window integrity.
    # ------------------------------------------------------------------
    def _snapshot_private(self, thread: ThreadContext) -> None:
        windows = self._windows(thread.tid)
        if windows is None:
            return
        (p0, p1), _ = windows
        thread.private_snapshot = self.regfile[p0:p1]

    def _verify_private(self, thread: ThreadContext) -> None:
        windows = self._windows(thread.tid)
        if windows is None or thread.private_snapshot is None:
            return
        (p0, p1), _ = windows
        current = self.regfile[p0:p1]
        if current != thread.private_snapshot:
            diffs = [
                f"$r{p0 + i}"
                for i, (a, b) in enumerate(zip(thread.private_snapshot, current))
                if a != b
            ]
            raise SafetyViolation(
                f"thread {thread.tid} private registers {', '.join(diffs)} "
                f"were clobbered while it was switched out"
            )

    # ------------------------------------------------------------------
    # Cycle-accounting timeline.
    # ------------------------------------------------------------------
    def _mark(self, kind: str, tid: Optional[int], start: int, end: int) -> None:
        """Extend or append a timeline segment covering ``[start, end)``."""
        tl = self.timeline
        if tl is None or end <= start:
            return
        if tl:
            last = tl[-1]
            if last.kind == kind and last.tid == tid and last.end == start:
                tl[-1] = Segment(kind, tid, last.start, end)
                return
        tl.append(Segment(kind, tid, start, end))

    def timeline_accounting(self) -> Dict[str, Any]:
        """Where every machine cycle went, from the recorded timeline.

        Returns a JSON-ready dict: total ``cycles``, global ``idle``
        cycles, per-thread ``run`` / ``switch`` cycle totals (summing,
        with idle, to ``cycles``), and ``switch_histogram`` -- the
        context-switch histogram, i.e. how many uninterrupted run
        segments had each length in cycles.
        """
        if self.timeline is None:
            raise SimulationError(
                "machine was not created with timeline recording "
                "(pass timeline=True or run under obs.events.capture())"
            )
        per: Dict[int, Dict[str, Any]] = {
            t.tid: {
                "tid": t.tid,
                "name": t.program.name,
                "run": 0,
                "switch": 0,
            }
            for t in self.threads
        }
        idle = 0
        run_lengths: Dict[int, int] = {}
        for seg in self.timeline:
            if seg.kind == "idle":
                idle += seg.cycles
                continue
            per[seg.tid][seg.kind] += seg.cycles  # type: ignore[index]
            if seg.kind == "run":
                run_lengths[seg.cycles] = run_lengths.get(seg.cycles, 0) + 1
        return {
            "cycles": self.cycle,
            "idle": idle,
            "threads": [per[t.tid] for t in self.threads],
            "switch_histogram": {
                str(k): v for k, v in sorted(run_lengths.items())
            },
        }

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 50_000_000,
        stop_on_first_halt: bool = False,
    ) -> MachineStats:
        """Run until every thread halts (or ``max_cycles`` elapses).

        ``stop_on_first_halt`` stops as soon as any thread halts: with
        equal per-thread workloads this samples the steady state, before
        the machine starts draining and latency hiding degenerates.
        """
        ready: List[int] = [t.tid for t in self.threads]
        current: Optional[ThreadContext] = None
        while True:
            if stop_on_first_halt and self._halted_count:
                break
            if self.cycle > max_cycles:
                raise WatchdogError(
                    f"exceeded {max_cycles} cycles; runaway program?"
                )
            if current is None:
                self._wake(ready)
                if ready:
                    current = self.threads[ready.pop(0)]
                    self._verify_private(current)
                    if current.pending_writeback:
                        writebacks = current.pending_writeback
                        current.pending_writeback = []
                        for reg, value in writebacks:
                            self._write(current, reg, value)
                else:
                    if not self._pending_wake:
                        break  # everything halted
                    target = self._pending_wake[0][0]
                    self._idle += max(target - self.cycle, 0)
                    if self.timeline is not None:
                        self._mark(
                            "idle", None, self.cycle, max(target, self.cycle)
                        )
                    self.cycle = max(target, self.cycle)
                continue
            current = self._step(current, ready)
        stats = MachineStats(
            cycles=self.cycle,
            idle_cycles=self._idle,
            switch_cycles=self._switch,
            threads=[t.stats for t in self.threads],
        )
        em = obs.get_emitter()
        if em.enabled and self.timeline is not None:
            acct = self.timeline_accounting()
            em.emit("sim.accounting", **acct)
            reg = obs_metrics.registry()
            reg.counter("sim.runs").inc()
            reg.counter("sim.runs", engine="reference").inc()
            reg.counter("sim.cycles").inc(stats.cycles)
            reg.counter("sim.cycles", engine="reference").inc(stats.cycles)
            reg.counter("sim.idle_cycles").inc(stats.idle_cycles)
            reg.counter("sim.switch_cycles").inc(stats.switch_cycles)
            for t in self.threads:
                labels = {
                    "thread": t.tid,
                    "kernel": t.program.name,
                    "engine": "reference",
                }
                ts = t.stats
                reg.counter("sim.thread.busy_cycles", **labels).inc(
                    ts.busy_cycles
                )
                reg.counter("sim.thread.instructions", **labels).inc(
                    ts.instructions
                )
                reg.counter("sim.thread.iterations", **labels).inc(
                    ts.iterations
                )
                reg.counter("sim.thread.switches", **labels).inc(ts.switches)
            for seg in self.timeline:
                em.emit(
                    "sim.segment",
                    kind=seg.kind,
                    tid=seg.tid,
                    start=seg.start,
                    end=seg.end,
                )
        return stats

    def _wake(self, ready: List[int]) -> None:
        pending = self._pending_wake
        while pending and pending[0][0] <= self.cycle:
            _, tid = heapq.heappop(pending)
            self.threads[tid].blocked_until = None
            ready.append(tid)

    def _relinquish(self, thread: ThreadContext) -> None:
        self._snapshot_private(thread)
        if faults.active() is not None:
            self._fire_bitflip(thread)
        if self.timeline is not None:
            self._mark(
                "switch", thread.tid, self.cycle, self.cycle + self.ctx_cost
            )
        self.cycle += self.ctx_cost
        self._switch += self.ctx_cost
        thread.stats.switches += 1
        thread.stats.busy_cycles += self.ctx_cost

    def _step(
        self, thread: ThreadContext, ready: List[int]
    ) -> Optional[ThreadContext]:
        """Execute one instruction; return the thread still holding the PU
        (or None after a relinquish)."""
        program = thread.program
        if thread.pc >= len(program.instrs):
            raise SimulationError(
                f"thread {thread.tid} ran off the end of {program.name!r}"
            )
        instr = program.instrs[thread.pc]
        op = instr.opcode
        self.cycle += 1
        if self.timeline is not None:
            self._mark("run", thread.tid, self.cycle - 1, self.cycle)
        thread.stats.instructions += 1
        thread.stats.busy_cycles += 1
        if self.trace_log is not None:
            self.trace_log.append(
                (self.cycle, thread.tid, thread.pc, str(instr))
            )
        next_pc = thread.pc + 1

        if op in _ALU_RR:
            d, a, b = instr.operands
            self._write(
                thread, d, _ALU_RR[op](self._read(thread, a), self._read(thread, b))
            )
            thread.stats.alu_ops += 1
        elif op in _ALU_RI:
            d, a, imm = instr.operands
            self._write(
                thread, d, _ALU_RI[op](self._read(thread, a), imm.value)
            )
            thread.stats.alu_ops += 1
        elif op is Opcode.MOV:
            d, s = instr.operands
            self._write(thread, d, self._read(thread, s))
            thread.stats.moves += 1
        elif op is Opcode.MOVI:
            d, imm = instr.operands
            self._write(thread, d, imm.value)
            thread.stats.alu_ops += 1
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.BR:
            target = self._targets[thread.tid][thread.pc]
            if target is None:
                target = program.resolve(instr.target.name)
            next_pc = target
        elif op in _COND:
            a, b, _ = instr.operands
            bval = b.value if isinstance(b, Imm) else self._read(thread, b)
            if _COND[op](self._read(thread, a), bval):
                target = self._targets[thread.tid][thread.pc]
                if target is None:
                    target = program.resolve(instr.target.name)
                next_pc = target
        elif op is Opcode.LOAD:
            d, base, off = instr.operands
            addr = (self._read(thread, base) + off.value) & MASK32
            thread.pending_writeback = [(d, self.memory.read(addr))]
            thread.pc = next_pc
            return self._block(thread, addr)
        elif op is Opcode.LOADQ:
            d0, d1, d2, d3, base, off = instr.operands
            addr = (self._read(thread, base) + off.value) & MASK32
            thread.pending_writeback = [
                (d, self.memory.read((addr + k) & MASK32))
                for k, d in enumerate((d0, d1, d2, d3))
            ]
            thread.pc = next_pc
            return self._block(thread, addr)
        elif op is Opcode.STORE:
            s, base, off = instr.operands
            addr = (self._read(thread, base) + off.value) & MASK32
            value = self._read(thread, s)
            self.memory.write(addr, value)
            thread.stores.append((addr, value))
            thread.pc = next_pc
            return self._block(thread, addr)
        elif op is Opcode.STOREQ:
            s0, s1, s2, s3, base, off = instr.operands
            addr = (self._read(thread, base) + off.value) & MASK32
            for k, s in enumerate((s0, s1, s2, s3)):
                value = self._read(thread, s)
                self.memory.write((addr + k) & MASK32, value)
                thread.stores.append(((addr + k) & MASK32, value))
            thread.pc = next_pc
            return self._block(thread, addr)
        elif op is Opcode.RECV:
            (d,) = instr.operands
            base = thread.next_packet()
            if base:
                thread.stats.iterations += 1
                self._measure_mark(thread)
            thread.pending_writeback = [(d, base)]
            thread.pc = next_pc
            return self._block(thread)
        elif op is Opcode.SEND:
            (s,) = instr.operands
            thread.out_queue.append(self._read(thread, s))
            thread.pc = next_pc
            return self._block(thread)
        elif op is Opcode.CTX:
            thread.stats.ctx_instrs += 1
            thread.pc = next_pc
            ready.append(thread.tid)
            self._relinquish(thread)
            return None
        elif op is Opcode.HALT:
            thread.halted = True
            self._halted_count += 1
            thread.stats.finish_cycle = self.cycle
            self._relinquish(thread)
            return None
        else:  # pragma: no cover - exhaustive over the ISA
            raise SimulationError(f"unhandled opcode {op}")

        thread.pc = next_pc
        return thread

    def _fire_bitflip(self, thread: ThreadContext) -> None:
        """``sim.bitflip`` fault site: flip one random bit of one random
        physical register at a context-switch boundary.  Fired *after*
        :meth:`_snapshot_private`, so a flip landing in the relinquishing
        thread's own private window is exactly the clobbering that
        paranoid mode's :meth:`_verify_private` exists to catch."""
        spec = faults.fire("sim.bitflip", tid=thread.tid, cycle=self.cycle)
        if spec is None:
            return
        plan = faults.active()
        if plan is None or self.nreg <= 0:  # pragma: no cover - raced disarm
            return
        index = plan.rng.randrange(self.nreg)
        bit = plan.rng.randrange(32)
        self.regfile[index] ^= 1 << bit

    def _measure_mark(self, thread: ThreadContext) -> None:
        """Fixed-window measurement: the window opens at the first
        successful recv and closes at recv number ``measure_iterations +
        1``, covering exactly that many complete iterations."""
        k = self.measure_iterations
        if k is None:
            return
        if thread.stats.iterations == 1:
            thread.busy_mark = thread.stats.busy_cycles
        elif thread.stats.iterations == k + 1 and thread.busy_mark is not None:
            span = thread.stats.busy_cycles - thread.busy_mark
            thread.stats.measured_cpi = span / k

    def _latency_for(self, addr: Optional[int]) -> int:
        if addr is not None:
            for lo, hi, latency in self.latency_regions:
                if lo <= addr < hi:
                    return latency
        return self.mem_latency

    def _block(self, thread: ThreadContext, addr: Optional[int] = None) -> None:
        thread.stats.mem_ops += 1
        thread.blocked_until = self.cycle + self._latency_for(addr)
        if faults.active() is not None:
            # ``sim.stuck`` fault site: the wake never arrives (a lost
            # memory grant).  The idle-advance then jumps the clock past
            # ``max_cycles`` and the watchdog fires -- never a hang.
            spec = faults.fire("sim.stuck", tid=thread.tid, cycle=self.cycle)
            if spec is not None:
                thread.blocked_until = self.cycle + faults.STUCK_DELAY
        heapq.heappush(
            self._pending_wake, (thread.blocked_until, thread.tid)
        )
        self._relinquish(thread)
        return None
