"""Allocation-as-a-service: the hardened ``repro.service`` frontend.

The service turns the one-shot allocation pipeline into a long-running,
fault-tolerant endpoint with an explicit robustness contract:

* **admission** (:mod:`~repro.service.admission`) -- bounded queue,
  FIFO within priority, typed 429 shedding with ``retry_after``;
* **coalescing** (:mod:`~repro.service.coalesce`) -- identical
  in-flight requests share one pipeline execution;
* **result store** (:mod:`~repro.service.store`) -- content-addressed,
  idempotent replay across restarts;
* **circuit breakers** (:mod:`~repro.service.breaker`) -- per-subsystem
  degradation layered on the :mod:`repro.resilience.guard` ladder;
* **protocol** (:mod:`~repro.service.protocol`) -- request validation,
  canonical keys, ok/error envelopes;
* **server** (:mod:`~repro.service.server`) -- the lifecycle core and
  the stdlib HTTP frontend with health/readiness/drain;
* **client** (:mod:`~repro.service.client`) -- synchronous caller with
  typed exception rehydration and backoff-honouring retries.

See ``docs/SERVICE.md`` for the protocol and operations guide.
"""

from repro.service.admission import AdmissionQueue
from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.coalesce import Coalescer
from repro.service.protocol import (
    OPTION_DEFAULTS,
    SCHEMA,
    canonical_options,
    error_envelope,
    exception_for,
    http_status,
    ok_envelope,
    outcome_payload,
    parse_request,
    request_key,
)
from repro.service.server import ReproServer, ServiceConfig, ServiceCore
from repro.service.store import ResultStore

__all__ = [
    "AdmissionQueue",
    "BreakerBoard",
    "CircuitBreaker",
    "Coalescer",
    "OPTION_DEFAULTS",
    "ReproServer",
    "ResultStore",
    "SCHEMA",
    "ServiceClient",
    "ServiceConfig",
    "ServiceCore",
    "canonical_options",
    "error_envelope",
    "exception_for",
    "http_status",
    "ok_envelope",
    "outcome_payload",
    "parse_request",
    "request_key",
]
