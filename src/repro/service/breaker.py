"""Per-subsystem circuit breakers layered on the degradation ladder.

A :class:`CircuitBreaker` guards one fallible subsystem of the service
(the result store, the verdict engine, the verifier) with the classic
three-state machine:

``closed``
    healthy; calls flow.  ``threshold`` *consecutive* failures trip to
    ``open``.
``open``
    failing; calls are skipped outright (the degraded mode serves
    instead: memory-only store, reference engine, verification
    skipped-with-flag).  After ``cooldown`` seconds the breaker
    half-opens.
``half-open``
    one probe call is allowed through.  Success closes the breaker;
    failure re-opens it and restarts the cooldown.

Where the degradation ladder (:mod:`repro.resilience.guard`) records
*that* a fallback was taken, the breaker adds *when to stop trying and
when to try again* -- the long-running-server dimension the one-shot
CLI never needed.  Tripping records the breaker's ladder rung exactly
once per trip, so the chaos gate can assert the degradation was by
policy; every transition updates the ``service.breaker{site=,state=}``
gauge family (1 on the active state, 0 on the others) and emits a
``service.breaker`` event under an active capture.

The clock is injectable (monotonic seconds) so tests and chaos
scenarios drive cooldown expiry deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import guard

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

STATES = (CLOSED, OPEN, HALF_OPEN)


class CircuitBreaker:
    """One subsystem's breaker; see the module docstring."""

    def __init__(
        self,
        site: str,
        rung: Optional[str] = None,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.site = site
        self.rung = rung
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0
        self._set_gauges()

    # ------------------------------------------------------------------
    def _set_gauges(self) -> None:
        reg = obs_metrics.registry()
        for state in STATES:
            reg.gauge(
                "service.breaker", site=self.site, state=state
            ).set(1.0 if state == self._state else 0.0)

    def _transition(self, state: str, reason: str = "") -> None:
        if state == self._state:
            return
        previous, self._state = self._state, state
        self._set_gauges()
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "service.breaker",
                site=self.site,
                state=state,
                previous=previous,
                reason=reason,
            )

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, cooldown expiry applied lazily."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._transition(HALF_OPEN, reason="cooldown elapsed")
        return self._state

    def allow(self) -> bool:
        """May the guarded call run right now?

        ``closed`` and ``half-open`` (the probe) allow; ``open`` skips.
        """
        return self.state != OPEN

    def success(self) -> None:
        """The guarded call succeeded; half-open probes close the breaker."""
        state = self.state
        self._failures = 0
        if state == HALF_OPEN:
            self._transition(CLOSED, reason="probe succeeded")

    def failure(self, reason: str = "") -> None:
        """The guarded call failed; trip when the streak hits threshold."""
        state = self.state
        if state == HALF_OPEN:
            self._opened_at = self._clock()
            self._transition(OPEN, reason=f"probe failed: {reason}")
            return
        self._failures += 1
        if state == CLOSED and self._failures >= self.threshold:
            self.trips += 1
            self._opened_at = self._clock()
            self._transition(
                OPEN,
                reason=f"{self._failures} consecutive failures "
                f"(last: {reason})",
            )
            if self.rung is not None:
                guard.record_degradation(
                    self.rung,
                    reason=f"breaker {self.site} tripped: {reason}",
                    site=self.site,
                    failures=self._failures,
                )


class BreakerBoard:
    """The service's breakers by site name, with one-line call guards."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.breakers: Dict[str, CircuitBreaker] = {
            "store": CircuitBreaker(
                "store", rung="service.store_to_memory",
                threshold=threshold, cooldown=cooldown, clock=clock,
            ),
            "engine": CircuitBreaker(
                "engine", rung="service.engine_to_reference",
                threshold=threshold, cooldown=cooldown, clock=clock,
            ),
            "verify": CircuitBreaker(
                "verify", rung="service.verify_to_skip",
                threshold=threshold, cooldown=cooldown, clock=clock,
            ),
        }

    def __getitem__(self, site: str) -> CircuitBreaker:
        return self.breakers[site]

    def states(self) -> Dict[str, str]:
        return {site: b.state for site, b in self.breakers.items()}

    def degraded_flags(self) -> list:
        """The envelope ``degraded`` entries for currently-open breakers."""
        return [
            f"{site}:open"
            for site, b in sorted(self.breakers.items())
            if b.state == OPEN
        ]
