"""The service wire protocol: requests, canonical options, envelopes.

One request allocates registers for one PU -- a list of thread
programs (inline assembly or suite kernel references) plus a register
budget and pipeline options -- and comes back as a **response
envelope**: a schema-versioned JSON object whose ``result`` payload is
byte-identical to what a direct :func:`repro.core.pipeline.
allocate_programs` call would produce for the same inputs (the
service's correctness contract, gated in CI), or a **typed error**
drawn from the documented taxonomy.  Nothing the server returns is
ever an untyped 500: every :class:`~repro.errors.ReproError` subclass
maps to a stable ``error.type`` string and an HTTP status.

Request shape (``POST /v1/allocate``)::

    {"programs": [{"kernel": "crc"}, {"asm": "start: ...", "name": "t1"}],
     "nreg": 32,
     "policy": "greedy",          # or "round_robin"
     "check_init": true,
     "simulate": 0,               # packets per thread; 0 = no verdict
     "engine": "reference",       # verdict engine
     "verify": false,             # run the independent verifier
     "priority": 1,               # 0 urgent / 1 normal / 2 batch
     "deadline_s": 30.0}          # per-request wall-clock budget

Response envelope (``schema: repro.service/1``)::

    {"schema": "repro.service/1", "status": "ok",
     "key": "6b52...",            # content address of the request
     "cached": false,             # served from the result store
     "coalesced": false,          # shared an in-flight execution
     "degraded": [],              # e.g. ["store:open", "verify:skipped"]
     "result": {...}}             # see outcome_payload()

    {"schema": "repro.service/1", "status": "error",
     "key": "...",                # omitted when unknown (parse failures)
     "error": {"type": "ServiceOverloaded", "message": "...",
               "retry_after": 0.05}}

The **request key** is a sha256 over the program fingerprints
(:meth:`repro.ir.program.Program.fingerprint`) and the canonical
options -- the same content-addressing discipline as the analysis cache
and the fabric manifest.  Two textually different requests for the same
programs and options share one key, hence one in-flight execution
(:mod:`repro.service.coalesce`) and one result-store entry
(:mod:`repro.service.store`).

Error taxonomy (``error.type`` -> HTTP status):

=====================  ====  ==============================================
type                   code  meaning
=====================  ====  ==============================================
``RequestRejected``    400   malformed body / unknown field / bad value
                             (``413`` when ``reason`` is ``too-large``)
``AsmSyntaxError``     400   inline assembly failed to parse
``ValidationError``    400   a program violates a structural rule
``AllocationError``    422   the budget is infeasible for these threads
``ServiceOverloaded``  429   admission queue full or server draining
                             (carries ``retry_after``)
``DeadlineExceeded``   504   the request's wall-clock budget ran out
(other ReproError)     500   typed internal failure (e.g. a surfaced
                             ``InjectedFault`` under chaos)
=====================  ====  ==============================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.pipeline import AllocationOutcome
from repro.errors import (
    DeadlineExceeded,
    ReproError,
    RequestRejected,
    ServiceOverloaded,
)
from repro.ir.parser import parse_program
from repro.ir.printer import format_program
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.suite.registry import load as load_kernel

SCHEMA = "repro.service/1"

#: Canonical option defaults.  Options are *always* fully materialized
#: before hashing, so a request that spells out a default and one that
#: omits it share a key.
OPTION_DEFAULTS: Dict[str, Any] = {
    "nreg": 32,
    "policy": "greedy",
    "check_init": True,
    "simulate": 0,
    "engine": "reference",
    "verify": False,
}

#: Fields allowed at the top level of a request (everything else is a
#: typed rejection -- silently ignoring unknown fields would let typos
#: change semantics without an error).
REQUEST_FIELDS = frozenset(
    set(OPTION_DEFAULTS) | {"programs", "priority", "deadline_s"}
)

_POLICIES = ("greedy", "round_robin")
_VERDICT_ENGINES = ("reference", "fast", "auto")

#: Priorities: 0 urgent, 1 normal (default), 2 batch.
PRIORITIES = (0, 1, 2)

#: Hard ceiling on threads per request -- a PU has a fixed number of
#: hardware threads; admission rejects anything larger before analysis.
MAX_PROGRAMS = 8

#: Hard ceiling on instructions per inline program.
MAX_INSTRS = 20_000

#: HTTP status per error type (see the module table).
ERROR_STATUS: Dict[str, int] = {
    "RequestRejected": 400,
    "AsmSyntaxError": 400,
    "ValidationError": 400,
    "AllocationError": 422,
    "ServiceOverloaded": 429,
    "DeadlineExceeded": 504,
}


@dataclass(frozen=True)
class ServiceRequest:
    """A parsed, validated, content-addressed allocation request."""

    programs: Tuple[Program, ...]
    options: Tuple[Tuple[str, Any], ...]  #: canonical, sorted pairs
    priority: int
    deadline_s: Optional[float]
    key: str
    fingerprints: Tuple[str, ...] = field(default=())

    def option(self, name: str) -> Any:
        return dict(self.options)[name]


def _reject(message: str, reason: str = "malformed") -> RequestRejected:
    return RequestRejected(message, reason=reason)


def _parse_one_program(doc: Any, index: int) -> Program:
    if not isinstance(doc, Mapping):
        raise _reject(
            f"programs[{index}] must be an object with 'kernel' or 'asm', "
            f"got {type(doc).__name__}",
            reason="bad-field",
        )
    unknown = set(doc) - {"kernel", "asm", "name"}
    if unknown:
        raise _reject(
            f"programs[{index}] has unknown field(s) "
            f"{sorted(unknown)}", reason="bad-field",
        )
    kernel = doc.get("kernel")
    asm = doc.get("asm")
    if (kernel is None) == (asm is None):
        raise _reject(
            f"programs[{index}] needs exactly one of 'kernel' or 'asm'",
            reason="bad-field",
        )
    if kernel is not None:
        if not isinstance(kernel, str):
            raise _reject(
                f"programs[{index}].kernel must be a string",
                reason="bad-field",
            )
        try:
            return load_kernel(kernel)
        except KeyError as exc:
            raise _reject(
                f"programs[{index}]: {exc.args[0]}", reason="bad-field"
            ) from None
    if not isinstance(asm, str):
        raise _reject(
            f"programs[{index}].asm must be a string", reason="bad-field"
        )
    name = doc.get("name", f"t{index}")
    if not isinstance(name, str) or not name:
        raise _reject(
            f"programs[{index}].name must be a non-empty string",
            reason="bad-field",
        )
    # AsmSyntaxError propagates typed; validation happens in
    # parse_request so kernel programs are checked identically.
    program = parse_program(asm, name)
    if len(program.instrs) > MAX_INSTRS:
        raise _reject(
            f"programs[{index}] has {len(program.instrs)} instructions; "
            f"the service caps inline programs at {MAX_INSTRS}",
            reason="too-large",
        )
    return program


def canonical_options(doc: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Materialize and validate the pipeline options of a request.

    Returns sorted ``(name, value)`` pairs with every default filled in
    -- the exact bytes that feed :func:`request_key`.
    """
    opts: Dict[str, Any] = dict(OPTION_DEFAULTS)
    for name in OPTION_DEFAULTS:
        if name in doc:
            opts[name] = doc[name]
    nreg = opts["nreg"]
    if not isinstance(nreg, int) or isinstance(nreg, bool) \
            or not 1 <= nreg <= 4096:
        raise _reject(
            f"nreg must be an integer in [1, 4096], got {nreg!r}",
            reason="bad-field",
        )
    if opts["policy"] not in _POLICIES:
        raise _reject(
            f"policy must be one of {_POLICIES}, got {opts['policy']!r}",
            reason="bad-field",
        )
    if not isinstance(opts["check_init"], bool):
        raise _reject("check_init must be a boolean", reason="bad-field")
    simulate = opts["simulate"]
    if not isinstance(simulate, int) or isinstance(simulate, bool) \
            or not 0 <= simulate <= 1024:
        raise _reject(
            f"simulate must be an integer packet count in [0, 1024], "
            f"got {simulate!r}",
            reason="bad-field",
        )
    if opts["engine"] not in _VERDICT_ENGINES:
        raise _reject(
            f"engine must be one of {_VERDICT_ENGINES}, "
            f"got {opts['engine']!r}",
            reason="bad-field",
        )
    if not isinstance(opts["verify"], bool):
        raise _reject("verify must be a boolean", reason="bad-field")
    return tuple(sorted(opts.items()))


def request_key(
    fingerprints: Sequence[str], options: Tuple[Tuple[str, Any], ...]
) -> str:
    """Content address of one request: programs (in thread order) plus
    canonical options.  Priority and deadline are *not* part of the key
    -- they shape scheduling, not the result."""
    h = hashlib.sha256()
    h.update(SCHEMA.encode())
    for fp in fingerprints:
        h.update(b"\x1ep")
        h.update(fp.encode())
    h.update(b"\x1eo")
    h.update(json.dumps(list(options), sort_keys=True).encode())
    return h.hexdigest()


def parse_request(
    doc: Any, max_programs: int = MAX_PROGRAMS
) -> ServiceRequest:
    """Validate a decoded request body into a :class:`ServiceRequest`.

    Raises typed :class:`~repro.errors.RequestRejected` /
    :class:`~repro.errors.AsmSyntaxError` /
    :class:`~repro.errors.ValidationError` -- never does any analysis
    or allocation work, so malformed traffic is rejected cheaply.
    """
    if not isinstance(doc, Mapping):
        raise _reject(
            f"request body must be a JSON object, got {type(doc).__name__}"
        )
    unknown = set(doc) - REQUEST_FIELDS
    if unknown:
        raise _reject(
            f"unknown request field(s) {sorted(unknown)}; known: "
            f"{sorted(REQUEST_FIELDS)}",
            reason="bad-field",
        )
    raw_programs = doc.get("programs")
    if not isinstance(raw_programs, Sequence) or isinstance(
        raw_programs, (str, bytes)
    ) or not raw_programs:
        raise _reject(
            "request needs a non-empty 'programs' array", reason="bad-field"
        )
    if len(raw_programs) > max_programs:
        raise _reject(
            f"request has {len(raw_programs)} programs; the service caps "
            f"threads per PU at {max_programs}",
            reason="too-large",
        )
    options = canonical_options(doc)
    check_init = dict(options)["check_init"]
    programs = []
    for i, p in enumerate(raw_programs):
        program = _parse_one_program(p, i)
        validate_program(program, check_init=check_init)
        programs.append(program)
    priority = doc.get("priority", 1)
    if priority not in PRIORITIES:
        raise _reject(
            f"priority must be one of {PRIORITIES}, got {priority!r}",
            reason="bad-field",
        )
    deadline_s = doc.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) or isinstance(
            deadline_s, bool
        ) or deadline_s < 0:
            raise _reject(
                f"deadline_s must be a non-negative number, "
                f"got {deadline_s!r}",
                reason="bad-field",
            )
        deadline_s = float(deadline_s)
    fingerprints = tuple(p.fingerprint() for p in programs)
    return ServiceRequest(
        programs=tuple(programs),
        options=options,
        priority=priority,
        deadline_s=deadline_s,
        key=request_key(fingerprints, options),
        fingerprints=fingerprints,
    )


# ----------------------------------------------------------------------
# Result payloads and envelopes.
# ----------------------------------------------------------------------
def outcome_payload(outcome: AllocationOutcome) -> Dict[str, Any]:
    """The deterministic allocation payload of a response envelope.

    A pure function of the :class:`AllocationOutcome`, shared by the
    service worker and by tests/CI asserting the byte-identity contract
    against a direct pipeline call.
    """
    return {
        "nreg": outcome.inter.nreg,
        "sgr": outcome.sgr,
        "total_registers": outcome.total_registers,
        "total_moves": outcome.total_moves,
        "threads": [
            {
                "name": t.name,
                "pr": t.pr,
                "sr": t.sr,
                "move_cost": t.move_cost,
                "private_base": m.private_base,
            }
            for t, m in zip(outcome.inter.threads, outcome.assignment.maps)
        ],
        "programs": [format_program(p) for p in outcome.programs],
        "source_fingerprints": [
            p.fingerprint() for p in outcome.source_programs
        ],
        "fingerprints": [p.fingerprint() for p in outcome.programs],
        "summary": outcome.summary(),
    }


def verdict_payload(stats: Any) -> Dict[str, Any]:
    """Digest of a simulation verdict run (deterministic fields only)."""
    return {
        "cycles": stats.cycles,
        "idle_cycles": stats.idle_cycles,
        "switch_cycles": stats.switch_cycles,
        "threads": [
            {
                "instructions": t.instructions,
                "busy_cycles": t.busy_cycles,
                "switches": t.switches,
                "iterations": t.iterations,
            }
            for t in stats.threads
        ],
    }


def ok_envelope(
    key: str,
    result: Mapping[str, Any],
    cached: bool = False,
    coalesced: bool = False,
    degraded: Sequence[str] = (),
) -> Dict[str, Any]:
    return {
        "schema": SCHEMA,
        "status": "ok",
        "key": key,
        "cached": bool(cached),
        "coalesced": bool(coalesced),
        "degraded": sorted(degraded),
        "result": dict(result),
    }


def error_envelope(
    exc: BaseException,
    key: Optional[str] = None,
    coalesced: bool = False,
    degraded: Sequence[str] = (),
) -> Dict[str, Any]:
    """A typed error envelope for any exception.

    :class:`ReproError` subclasses keep their class name and structured
    fields; anything else (which the gate treats as a bug) is tagged
    ``InternalError`` but still shipped as a well-formed envelope.
    """
    err: Dict[str, Any] = {
        "type": type(exc).__name__ if isinstance(exc, ReproError)
        else "InternalError",
        "message": str(exc),
    }
    if isinstance(exc, ServiceOverloaded):
        err["retry_after"] = exc.retry_after
    if isinstance(exc, RequestRejected):
        err["reason"] = exc.reason
    if isinstance(exc, DeadlineExceeded):
        err["phase"] = exc.phase
    envelope: Dict[str, Any] = {
        "schema": SCHEMA,
        "status": "error",
        "coalesced": bool(coalesced),
        "degraded": sorted(degraded),
        "error": err,
    }
    if key is not None:
        envelope["key"] = key
    return envelope


def http_status(envelope: Mapping[str, Any]) -> int:
    """The HTTP status code for a response envelope."""
    if envelope.get("status") == "ok":
        return 200
    err = envelope.get("error") or {}
    if err.get("type") == "RequestRejected" and err.get("reason") == \
            "too-large":
        return 413
    return ERROR_STATUS.get(err.get("type", ""), 500)


#: Exception classes a client raises back from ``error.type`` strings.
_CLIENT_ERRORS: Dict[str, type] = {}


def exception_for(envelope: Mapping[str, Any]) -> ReproError:
    """Rehydrate the typed exception a response envelope describes."""
    global _CLIENT_ERRORS
    if not _CLIENT_ERRORS:
        from repro import errors as _errors

        _CLIENT_ERRORS = {
            name: obj
            for name, obj in vars(_errors).items()
            if isinstance(obj, type) and issubclass(obj, ReproError)
        }
    err = envelope.get("error") or {}
    name = err.get("type", "ReproError")
    message = err.get("message", "service error")
    cls = _CLIENT_ERRORS.get(name)
    if cls is ServiceOverloaded:
        return ServiceOverloaded(
            message, retry_after=float(err.get("retry_after", 0.05))
        )
    if cls is RequestRejected:
        return RequestRejected(message, reason=err.get("reason", "malformed"))
    if cls is DeadlineExceeded:
        return DeadlineExceeded(message, phase=err.get("phase", ""))
    if cls is None:
        return ReproError(f"{name}: {message}")
    try:
        return cls(message)
    except TypeError:  # exotic constructor signature
        return ReproError(f"{name}: {message}")
