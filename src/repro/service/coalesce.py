"""In-flight request coalescing keyed on content addresses.

N identical concurrent requests (same :func:`~repro.service.protocol.
request_key`: same program fingerprints, same canonical options) share
ONE pipeline execution.  The first arrival becomes the **leader** and
owns the execution; every later arrival is a **follower** that parks on
the leader's entry and wakes with the same result object -- the
ILP-aware-co-scheduling idea from the admission layer's point of view:
identical work admitted once, served N times.

The entry is resolved exactly once (result or typed error) and then
removed from the table, so a *later* identical request starts a fresh
execution (or, in the full service, hits the result store first).
Followers never outlive their deadline: :meth:`Entry.wait` takes a
timeout and converts expiry into a typed
:class:`~repro.errors.DeadlineExceeded`.

Telemetry: ``service.coalesced`` counts followers; the counter is
recorded unconditionally (servers scrape ``/metrics`` without an event
capture), events only under an active capture.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import DeadlineExceeded
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics


class Entry:
    """One in-flight execution: an event plus its eventual outcome."""

    __slots__ = ("key", "done", "result", "error", "followers")

    def __init__(self, key: str):
        self.key = key
        self.done = threading.Event()
        self.result: Optional[Any] = None
        self.error: Optional[BaseException] = None
        self.followers = 0

    def wait(self, timeout: Optional[float]) -> Any:
        """Block for the outcome; raise it when it is a typed error.

        A timeout means the follower's own deadline expired while the
        leader was still working -- a typed
        :class:`DeadlineExceeded`, never a hang.
        """
        if not self.done.wait(timeout=timeout):
            raise DeadlineExceeded(
                f"deadline expired waiting on coalesced execution "
                f"{self.key[:12]}",
                phase="coalesce-wait",
            )
        if self.error is not None:
            raise self.error
        return self.result


class Coalescer:
    """The in-flight table: key -> :class:`Entry`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Entry] = {}

    def lease(self, key: str) -> Tuple[Entry, bool]:
        """Join (or start) the in-flight execution for ``key``.

        Returns ``(entry, leader)``: the leader must eventually call
        :meth:`resolve` exactly once -- on success, on error, and on
        shed alike -- or followers would wait out their deadlines.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.followers += 1
                obs_metrics.registry().counter("service.coalesced").inc()
                em = obs.get_emitter()
                if em.enabled:
                    em.emit(
                        "service.coalesced",
                        key=key[:12],
                        followers=entry.followers,
                    )
                return entry, False
            entry = Entry(key)
            self._inflight[key] = entry
            return entry, True

    def resolve(
        self,
        entry: Entry,
        result: Optional[Any] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Publish the outcome and retire the entry (idempotent)."""
        with self._lock:
            if self._inflight.get(entry.key) is entry:
                del self._inflight[entry.key]
        if not entry.done.is_set():
            entry.result = result
            entry.error = error
            entry.done.set()

    def abort_all(self, error: BaseException) -> int:
        """Resolve every in-flight entry with ``error`` (server drain)."""
        with self._lock:
            entries = list(self._inflight.values())
            self._inflight.clear()
        for entry in entries:
            if not entry.done.is_set():
                entry.error = error
                entry.done.set()
        return len(entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)
