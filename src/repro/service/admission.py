"""Bounded admission with explicit backpressure.

The queue is the service's budgeted resource, managed the way the paper
manages registers: a hard bound, deterministic shedding at the bound,
and observable occupancy.  ``offer`` either admits a request or raises
a typed :class:`~repro.errors.ServiceOverloaded` *immediately* -- there
is no unbounded buffering and no blocking producer path, so overload
surfaces as fast, typed backpressure (429 + ``retry_after``) instead of
queue growth or hangs.

Ordering is **FIFO within priority**: items are served strictly by
``(priority, arrival sequence)``, so an urgent request overtakes batch
work but two requests of equal priority never reorder (the invariant
the hypothesis property test in ``tests/test_service.py`` drives).

Telemetry: ``service.queue_depth`` gauge tracks occupancy on every
transition, ``service.shed`` counts rejections, and a ``service.shed``
event fires when a capture is active.  Metric counters are recorded
unconditionally -- a server scrapes ``/metrics`` whether or not an
event capture is running.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, List, Optional, Tuple

from repro.errors import ServiceOverloaded
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics


class AdmissionQueue:
    """A bounded priority queue that sheds instead of growing.

    ``bound`` is the maximum number of queued (admitted, not yet taken)
    items; ``retry_after`` is the backoff hint carried by the
    :class:`ServiceOverloaded` raised at the bound.
    """

    def __init__(self, bound: int, retry_after: float = 0.05):
        if bound < 1:
            raise ValueError(f"admission bound must be >= 1, got {bound}")
        self.bound = bound
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = 0
        self._closed = False
        self.shed_count = 0
        self.admitted_count = 0

    # ------------------------------------------------------------------
    def _set_depth_locked(self) -> None:
        obs_metrics.registry().gauge("service.queue_depth").set(
            len(self._heap)
        )

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def offer(self, item: Any, priority: int = 1) -> None:
        """Admit ``item`` or raise :class:`ServiceOverloaded`.

        Never blocks: the full queue and the draining server are both
        immediate, typed rejections carrying ``retry_after``.
        """
        with self._lock:
            if self._closed:
                shed_reason = "draining"
            elif len(self._heap) >= self.bound:
                shed_reason = "queue-full"
            else:
                heapq.heappush(self._heap, (priority, self._seq, item))
                self._seq += 1
                self.admitted_count += 1
                self._set_depth_locked()
                self._not_empty.notify()
                return
            self.shed_count += 1
            depth = len(self._heap)
        obs_metrics.registry().counter("service.shed").inc()
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "service.shed",
                reason=shed_reason,
                depth=depth,
                bound=self.bound,
            )
        if shed_reason == "draining":
            raise ServiceOverloaded(
                "service is draining and no longer admits requests",
                retry_after=self.retry_after,
            )
        raise ServiceOverloaded(
            f"admission queue full ({depth}/{self.bound}); retry after "
            f"{self.retry_after:.3f}s",
            retry_after=self.retry_after,
        )

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the next item in ``(priority, arrival)`` order.

        Blocks up to ``timeout`` seconds (forever when ``None``);
        returns ``None`` on timeout or when the queue is closed and
        empty -- the worker-loop shutdown signal.
        """
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            _, _, item = heapq.heappop(self._heap)
            self._set_depth_locked()
            return item

    def close(self) -> None:
        """Stop admitting; queued items stay takeable (graceful drain).

        Wakes every blocked :meth:`take` so worker loops can observe
        the close and exit once the backlog is gone.
        """
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain_remaining(self) -> List[Any]:
        """Remove and return every queued item (deadline-out on drain)."""
        with self._lock:
            items = [item for _, _, item in sorted(self._heap)]
            self._heap.clear()
            self._set_depth_locked()
            return items
