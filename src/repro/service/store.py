"""Content-addressed result store: idempotent responses across restarts.

Completed response payloads are stored under their request key (sha256
of program fingerprints + canonical options), in two layers:

* an in-memory LRU overlay, always on;
* an optional on-disk layer (``<root>/<key>.json``, atomic
  temp-file + ``os.replace`` writes) that makes replay idempotent
  across worker restarts -- a client retrying after a crash gets the
  byte-identical payload without a second pipeline execution.

The disk format is canonical JSON (sorted keys, compact separators)
wrapped in a one-line header object, so entries are greppable and
diffable; a corrupt or foreign entry is quarantined to ``*.bad`` and
treated as a miss, with the quarantine capped by the same
oldest-first trim as the analysis cache
(:func:`repro.core.cache.trim_quarantine`).

Failure policy: store trouble **never fails a request** -- the service
core wraps every call in the ``store`` circuit breaker; repeated
failures trip the ``service.store_to_memory`` rung and the store keeps
serving from memory.  The ``service.store`` fault site lets the chaos
harness damage entries (mode ``corrupt``) or fail I/O outright (mode
``error``).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from collections import OrderedDict
from typing import Any, Dict, Optional, Union

from repro.core.cache import DEFAULT_MAX_QUARANTINE, trim_quarantine
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import faults

SCHEMA_STORE = "repro.service.store/1"

#: Default in-memory overlay capacity (entries).
DEFAULT_MEMORY_ENTRIES = 256


class ResultStore:
    """Two-layer (memory + optional disk) content-addressed store."""

    def __init__(
        self,
        root: Optional[Union[str, pathlib.Path]] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        max_quarantine: int = DEFAULT_MAX_QUARANTINE,
    ):
        if memory_entries < 1:
            raise ValueError(
                f"memory_entries must be >= 1, got {memory_entries}"
            )
        self.root = pathlib.Path(root) if root else None
        self.memory_entries = memory_entries
        self.max_quarantine = max_quarantine
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # ------------------------------------------------------------------
    def _note(self, result: str) -> None:
        obs_metrics.registry().counter("service.store", result=result).inc()

    def _path(self, key: str) -> Optional[pathlib.Path]:
        if self.root is None:
            return None
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key {key!r}")
        return self.root / f"{key}.json"

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None``.

        Raises on disk trouble (including injected ``service.store``
        faults in ``error`` mode) -- the caller's circuit breaker owns
        the failure policy.  A corrupt entry is quarantined and
        reported as a miss, not an error: the payload is gone either
        way and recomputing is the fix.
        """
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self._note("memory-hit")
            return cached
        path = self._path(key)
        if path is None or not path.exists():
            self._note("miss")
            return None
        spec = faults.fire("service.store", op="get", key=key[:12])
        if spec is not None:
            if spec.mode == "corrupt":
                path.write_bytes(b"\x00not-json\x00")
            else:
                raise OSError(f"injected store read failure for {key[:12]}")
        try:
            doc = json.loads(path.read_text())
            if doc.get("schema") != SCHEMA_STORE or doc.get("key") != key:
                raise ValueError(f"foreign or mismatched entry in {path}")
            payload = doc["payload"]
            if not isinstance(payload, dict):
                raise ValueError(f"malformed payload in {path}")
        except (ValueError, KeyError) as exc:
            action = self._quarantine(path)
            em = obs.get_emitter()
            if em.enabled:
                em.emit(
                    "service.store_error",
                    key=key[:12],
                    error=f"{type(exc).__name__}: {exc}",
                    action=action,
                )
            self._note("corrupt")
            return None
        self._remember(key, payload)
        self._note("disk-hit")
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (memory always, disk if rooted).

        Disk writes are atomic (temp file + ``os.replace``), so readers
        and concurrent writers never see partial entries; identical
        concurrent writes are benign -- the content is the same bytes.
        Raises on disk trouble; the memory overlay is already updated
        by then, so the caller's breaker can absorb the failure without
        losing the result for this process's lifetime.
        """
        self._remember(key, payload)
        path = self._path(key)
        if path is None:
            self._note("memory-put")
            return
        spec = faults.fire("service.store", op="put", key=key[:12])
        if spec is not None:
            raise OSError(f"injected store write failure for {key[:12]}")
        doc = {"schema": SCHEMA_STORE, "key": key, "payload": payload}
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._note("put")

    def _quarantine(self, path: pathlib.Path) -> str:
        try:
            os.replace(path, path.with_suffix(".bad"))
        except OSError:
            try:
                path.unlink()
                return "deleted"
            except OSError:
                return "left-in-place"
        trim_quarantine(path.parent, self.max_quarantine)
        return "quarantined"

    def __len__(self) -> int:
        return len(self._memory)
