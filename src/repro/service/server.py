"""The allocation service: core request lifecycle + HTTP frontend.

Two layers, deliberately separable:

:class:`ServiceCore`
    The whole hardened lifecycle with no sockets anywhere -- parse /
    validate / reject, store lookup, coalescing, bounded admission,
    worker execution under a per-request :class:`~repro.resilience.
    deadline.Deadline`, circuit-breakered store/engine/verifier access,
    typed envelopes for every outcome.  Tests and the chaos harness
    drive this object directly; every robustness invariant lives here.

:class:`ReproServer`
    A thin stdlib HTTP skin (``http.server.ThreadingHTTPServer``) over
    one core: ``POST /v1/allocate`` plus health/readiness/metrics
    endpoints and graceful drain.  No new dependencies.

Request lifecycle (the order is the robustness story)::

    reject    size cap and structural validation BEFORE any analysis
    replay    content-addressed result store -> idempotent cache hit
    coalesce  identical in-flight request -> follow the leader
    admit     bounded queue; full or draining -> typed 429 + retry_after
    execute   worker thread, Deadline threaded into the pipeline,
              breakers around store/engine/verifier
    respond   ok / typed error envelope; degraded modes flagged

Every response is either a payload byte-identical to a direct
:func:`~repro.core.pipeline.allocate_programs` call or a typed error
envelope -- zero hangs (every wait has a deadline), zero untyped 500s
(the catch-all still ships a well-formed envelope, and only injected
chaos ever reaches it).

Metrics (always recorded -- servers scrape ``/metrics`` without an
event capture): ``service.requests{status=}``, ``service.queue_depth``,
``service.shed``, ``service.coalesced``, ``service.store{result=}``,
``service.breaker{site=,state=}``, ``service.request_seconds``.
"""

from __future__ import annotations

import http.server
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.pipeline import allocate_programs
from repro.errors import (
    DeadlineExceeded,
    InjectedFault,
    RequestRejected,
    ServiceOverloaded,
    SimulationError,
    VerificationError,
)
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.service import protocol
from repro.service.admission import AdmissionQueue
from repro.service.breaker import BreakerBoard
from repro.service.coalesce import Coalescer, Entry
from repro.service.store import ResultStore

#: Cycle watchdog for service verdict runs -- a runaway rewritten
#: program trips a typed WatchdogError, never a wall-clock hang.
VERDICT_MAX_CYCLES = 5_000_000

#: Extra seconds a caller waits past its own deadline for the worker's
#: typed DeadlineExceeded to arrive before raising its own.
_WAIT_GRACE = 0.25


@dataclass
class ServiceConfig:
    """Everything that shapes one service instance."""

    workers: int = 2
    queue_depth: int = 16
    retry_after: float = 0.05
    max_request_bytes: int = 256 * 1024
    max_programs: int = protocol.MAX_PROGRAMS
    default_deadline_s: float = 30.0
    store_dir: Optional[str] = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


@dataclass
class _Job:
    """One admitted execution: the leader's request plus its outcome slot."""

    request: protocol.ServiceRequest
    deadline: Deadline
    entry: Entry


class ServiceCore:
    """The request lifecycle engine (no sockets; see module docstring)."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        clock=time.monotonic,
    ):
        self.config = config or ServiceConfig()
        self.clock = clock
        self.queue = AdmissionQueue(
            self.config.queue_depth, retry_after=self.config.retry_after
        )
        self.coalescer = Coalescer()
        self.store = ResultStore(self.config.store_dir)
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=clock,
        )
        self.draining = False
        self.started = False
        self.pipeline_runs = 0
        self._counts_lock = threading.Lock()
        self._status_counts: Dict[str, int] = {}
        self._workers: List[threading.Thread] = []
        self.started_at = clock()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        if self.started:
            return
        self.started = True
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            t.start()
            self._workers.append(t)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain: stop admitting, finish or deadline-out work.

        Returns True when every worker exited within ``timeout``
        seconds (default: the configured ``drain_timeout_s``); queued
        items that could not be finished in time are resolved with a
        typed :class:`DeadlineExceeded` so no caller is left hanging.
        """
        budget = (
            self.config.drain_timeout_s if timeout is None else timeout
        )
        self.draining = True
        self.queue.close()
        em = obs.get_emitter()
        if em.enabled:
            em.emit("service.drain", backlog=self.queue.depth)
        expire = self.clock() + budget
        for t in self._workers:
            t.join(timeout=max(expire - self.clock(), 0.0))
        clean = not any(t.is_alive() for t in self._workers)
        # Deadline-out whatever survived the budget: queued jobs first,
        # then any in-flight coalesce entries a stuck worker holds.
        for job in self.queue.drain_remaining():
            self.coalescer.resolve(
                job.entry,
                error=DeadlineExceeded(
                    "server drained before this request ran",
                    phase="drain",
                ),
            )
        if not clean:
            self.coalescer.abort_all(
                DeadlineExceeded(
                    "server drain timed out mid-execution", phase="drain"
                )
            )
        return clean

    # ------------------------------------------------------------------
    # Bookkeeping.
    # ------------------------------------------------------------------
    def _count(self, status: str) -> None:
        obs_metrics.registry().counter(
            "service.requests", status=status
        ).inc()
        with self._counts_lock:
            self._status_counts[status] = (
                self._status_counts.get(status, 0) + 1
            )

    def status_snapshot(self) -> Dict[str, Any]:
        """The ``/statusz`` document (also handy for tests and drain)."""
        with self._counts_lock:
            counts = dict(sorted(self._status_counts.items()))
        return {
            "schema": "repro.service.status/1",
            "draining": self.draining,
            "uptime_s": self.clock() - self.started_at,
            "queue": {
                "depth": self.queue.depth,
                "bound": self.queue.bound,
                "admitted": self.queue.admitted_count,
                "shed": self.queue.shed_count,
            },
            "requests": counts,
            "pipeline_runs": self.pipeline_runs,
            "inflight": len(self.coalescer),
            "store_entries": len(self.store),
            "breakers": self.breakers.states(),
        }

    def ledger_metrics(self) -> Dict[str, float]:
        """Scalar counters for the drain-time run-ledger row."""
        with self._counts_lock:
            total = sum(self._status_counts.values())
            ok = self._status_counts.get("ok", 0)
        return {
            "service.requests": float(total),
            "service.ok": float(ok),
            "service.shed": float(self.queue.shed_count),
            "service.pipeline_runs": float(self.pipeline_runs),
            "service.breaker_trips": float(
                sum(b.trips for b in self.breakers.breakers.values())
            ),
        }

    # ------------------------------------------------------------------
    # The request path.
    # ------------------------------------------------------------------
    def submit(
        self,
        doc: Any,
        body_bytes: Optional[int] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Run one request through the full lifecycle.

        Never raises: every outcome -- success, shed, rejection,
        deadline, even an unexpected internal failure -- comes back as
        ``(http_status, envelope)``.
        """
        t0 = time.perf_counter()
        key: Optional[str] = None
        coalesced = False
        try:
            if body_bytes is not None and \
                    body_bytes > self.config.max_request_bytes:
                raise RequestRejected(
                    f"request body is {body_bytes} bytes; the service "
                    f"caps bodies at {self.config.max_request_bytes}",
                    reason="too-large",
                )
            if self.draining:
                raise ServiceOverloaded(
                    "service is draining and no longer admits requests",
                    retry_after=self.config.retry_after,
                )
            request = protocol.parse_request(
                doc, max_programs=self.config.max_programs
            )
            key = request.key
            budget = (
                request.deadline_s
                if request.deadline_s is not None
                else self.config.default_deadline_s
            )
            deadline = Deadline.after(budget)
            cached = self._store_get(key)
            if cached is not None:
                return self._respond(
                    t0,
                    protocol.ok_envelope(
                        key,
                        cached,
                        cached=True,
                        degraded=self.breakers.degraded_flags(),
                    ),
                )
            entry, leader = self.coalescer.lease(key)
            coalesced = not leader
            if leader:
                job = _Job(request=request, deadline=deadline, entry=entry)
                try:
                    self.queue.offer(job, priority=request.priority)
                except ServiceOverloaded:
                    # Followers of a shed leader shed too, typed.
                    self.coalescer.resolve(
                        entry,
                        error=ServiceOverloaded(
                            "admission queue full",
                            retry_after=self.config.retry_after,
                        ),
                    )
                    raise
            payload, flags = entry.wait(
                timeout=max(deadline.remaining(), 0.0) + _WAIT_GRACE
            )
            return self._respond(
                t0,
                protocol.ok_envelope(
                    key,
                    payload,
                    coalesced=coalesced,
                    degraded=list(flags) + self.breakers.degraded_flags(),
                ),
            )
        except BaseException as exc:  # typed envelope for EVERYTHING
            return self._respond(
                t0,
                protocol.error_envelope(exc, key=key, coalesced=coalesced),
            )

    def _respond(
        self, t0: float, envelope: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        status = protocol.http_status(envelope)
        label = (
            "ok"
            if envelope["status"] == "ok"
            else envelope["error"]["type"]
        )
        self._count(label)
        obs_metrics.registry().histogram(
            "service.request_seconds",
            bounds=obs_metrics.TIMING_BUCKETS,
        ).observe(time.perf_counter() - t0)
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "service.request",
                status=label,
                http=status,
                key=envelope.get("key", "")[:12],
                cached=envelope.get("cached", False),
                coalesced=envelope.get("coalesced", False),
            )
        return status, envelope

    # ------------------------------------------------------------------
    # Breaker-guarded subsystems.
    # ------------------------------------------------------------------
    def _store_get(self, key: str) -> Optional[Dict[str, Any]]:
        breaker = self.breakers["store"]
        if not breaker.allow():
            return self.store._memory.get(key)  # memory overlay only
        try:
            payload = self.store.get(key)
        except Exception as exc:
            breaker.failure(f"{type(exc).__name__}: {exc}")
            return None
        # A miss is not evidence of disk health (it may not even have
        # touched the disk), so only a real hit feeds the breaker.
        if payload is not None:
            breaker.success()
        return payload

    def _store_put(self, key: str, payload: Dict[str, Any]) -> None:
        breaker = self.breakers["store"]
        if not breaker.allow():
            self.store._remember(key, payload)
            return
        try:
            self.store.put(key, payload)
        except Exception as exc:
            breaker.failure(f"{type(exc).__name__}: {exc}")
        else:
            breaker.success()

    def _verify(self, outcome, flags: List[str]) -> bool:
        """Run the independent verifier behind its breaker.

        A :class:`VerificationError` -- the verifier *rejecting* the
        allocation -- always surfaces typed: that is the one failure
        skipping would turn into silent corruption.  The breaker only
        absorbs the verifier itself crashing.
        """
        from repro.core.verify import verify_outcome

        breaker = self.breakers["verify"]
        if not breaker.allow():
            flags.append("verify:skipped")
            return False
        try:
            verify_outcome(outcome, packets_per_thread=4)
        except VerificationError:
            breaker.success()  # the verifier worked; the outcome failed
            raise
        except Exception as exc:
            breaker.failure(f"{type(exc).__name__}: {exc}")
            flags.append("verify:skipped")
            return False
        breaker.success()
        return True

    def _simulate(
        self, outcome, packets: int, engine: str, flags: List[str]
    ) -> Dict[str, Any]:
        """Run the verdict simulation behind the engine breaker.

        A failing requested engine degrades to the reference
        interpreter (flagged ``engine:reference``); reference failures
        surface typed -- there is nothing left to fall back to.
        """
        from repro.sim.run import run_threads

        def _run(engine_name: str) -> Dict[str, Any]:
            result = run_threads(
                list(outcome.programs),
                packets_per_thread=packets,
                nreg=outcome.inter.nreg,
                engine=engine_name,
                max_cycles=VERDICT_MAX_CYCLES,
            )
            return protocol.verdict_payload(result.stats)

        breaker = self.breakers["engine"]
        if engine != "reference" and not breaker.allow():
            flags.append("engine:reference")
            return _run("reference")
        try:
            verdict = _run(engine)
        except SimulationError as exc:
            if engine == "reference":
                raise
            breaker.failure(f"{type(exc).__name__}: {exc}")
            flags.append("engine:reference")
            return _run("reference")
        breaker.success()
        return verdict

    # ------------------------------------------------------------------
    # Worker side.
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.take()
            if job is None:
                return
            self._execute(job)

    def _execute(self, job: _Job) -> None:
        """One admitted request, end to end; resolves the coalesce entry
        exactly once whatever happens."""
        flags: List[str] = []
        try:
            spec = faults.fire(
                "service.handler", key=job.request.key[:12]
            )
            if spec is not None:
                raise InjectedFault(
                    f"injected service handler fault for "
                    f"{job.request.key[:12]}"
                )
            job.deadline.check("dequeue")
            opts = dict(job.request.options)
            outcome = allocate_programs(
                list(job.request.programs),
                nreg=opts["nreg"],
                check_init=opts["check_init"],
                policy=opts["policy"],
                deadline=job.deadline,
            )
            self.pipeline_runs += 1
            payload = protocol.outcome_payload(outcome)
            if opts["verify"]:
                job.deadline.check("verify")
                if self._verify(outcome, flags):
                    payload["verified"] = True
            if opts["simulate"]:
                job.deadline.check("simulate")
                payload["verdict"] = self._simulate(
                    outcome, opts["simulate"], opts["engine"], flags
                )
            # Degraded payloads are served but never stored: the store's
            # replay contract is "the healthy payload, byte-identical",
            # and a later healthy request should recompute.
            if not flags:
                self._store_put(job.request.key, payload)
            self.coalescer.resolve(job.entry, result=(payload, flags))
        except BaseException as exc:
            self.coalescer.resolve(job.entry, error=exc)


# ----------------------------------------------------------------------
# HTTP skin.
# ----------------------------------------------------------------------
class _Handler(http.server.BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP adapter around the bound :class:`ServiceCore`."""

    core: ServiceCore  # bound by _make_handler
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the service speaks through repro.obs, not stderr

    def _send_json(
        self,
        status: int,
        doc: Any,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        body = json.dumps(doc, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_envelope(self, status: int, envelope: Dict[str, Any]) -> None:
        headers: Tuple[Tuple[str, str], ...] = ()
        err = envelope.get("error") or {}
        if "retry_after" in err:
            headers = (("Retry-After", f"{err['retry_after']:.3f}"),)
        self._send_json(status, envelope, headers)

    def do_GET(self) -> None:  # noqa: N802
        core = self.core
        if self.path == "/healthz":
            self._send_json(
                200,
                {"ok": True, "uptime_s": core.clock() - core.started_at},
            )
        elif self.path == "/readyz":
            ready = core.started and not core.draining
            self._send_json(
                200 if ready else 503,
                {"ready": ready, "draining": core.draining},
            )
        elif self.path == "/statusz":
            self._send_json(200, core.status_snapshot())
        elif self.path == "/metrics":
            from repro.obs.export import to_prometheus

            body = to_prometheus(
                obs_metrics.registry().snapshot()
            ).encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_envelope(
                404,
                protocol.error_envelope(
                    RequestRejected(
                        f"no such endpoint {self.path!r}",
                        reason="bad-field",
                    )
                ),
            )

    def do_POST(self) -> None:  # noqa: N802
        core = self.core
        if self.path != "/v1/allocate":
            self._send_envelope(
                404,
                protocol.error_envelope(
                    RequestRejected(
                        f"no such endpoint {self.path!r}",
                        reason="bad-field",
                    )
                ),
            )
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_envelope(
                411,
                protocol.error_envelope(
                    RequestRejected(
                        "request needs a Content-Length header"
                    )
                ),
            )
            return
        if length > core.config.max_request_bytes:
            # Reject before reading the body; close the connection so
            # the unread bytes cannot poison keep-alive framing.
            envelope = protocol.error_envelope(
                RequestRejected(
                    f"request body is {length} bytes; the service caps "
                    f"bodies at {core.config.max_request_bytes}",
                    reason="too-large",
                )
            )
            self.close_connection = True
            self._send_envelope(413, envelope)
            return
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            self._send_envelope(
                400,
                protocol.error_envelope(
                    RequestRejected(f"request body is not JSON: {exc}")
                ),
            )
            return
        status, envelope = core.submit(doc, body_bytes=length)
        self._send_envelope(status, envelope)


def _make_handler(core: ServiceCore) -> type:
    return type("BoundHandler", (_Handler,), {"core": core})


class _ThreadingServer(http.server.ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ReproServer:
    """One :class:`ServiceCore` behind a threading HTTP server."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        clock=time.monotonic,
    ):
        self.core = ServiceCore(config, clock=clock)
        self.httpd = _ThreadingServer(
            (host, port), _make_handler(self.core)
        )
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` -- the real port when 0 was asked."""
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        """Start workers and serve in a background thread (idempotent)."""
        self.core.start()
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._serve_thread.start()

    def drain_and_stop(self, timeout: Optional[float] = None) -> bool:
        """SIGTERM semantics: stop admitting, drain, then stop serving.

        Health endpoints keep answering during the drain (``/readyz``
        goes 503 immediately) so orchestrators can watch it happen.
        Returns True when the drain finished within its budget.
        """
        clean = self.core.drain(timeout)
        self.httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self.httpd.server_close()
        return clean
