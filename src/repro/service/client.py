"""Synchronous client for the allocation service.

:class:`ServiceClient` speaks the ``repro.service/1`` protocol over
plain ``http.client`` (stdlib only) and turns error envelopes back into
the same typed exceptions the library raises locally, so callers handle
a remote :class:`~repro.errors.AllocationError` exactly like a local
one.

Backpressure is honoured, not fought: a 429 :class:`~repro.errors.
ServiceOverloaded` response is retried up to ``retries`` times, waiting
the server's ``retry_after`` hint stretched by the jittered exponential
schedule from :func:`repro.resilience.guard.backoff_delays` (seedable,
zero-jitter by default -- the retry timeline is reproducible).  Every
other typed error is raised immediately: retrying a
:class:`~repro.errors.RequestRejected` or a failed allocation would
just repeat the failure.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ServiceError, ServiceOverloaded
from repro.resilience.guard import backoff_delays
from repro.service import protocol


class ServiceClient:
    """A synchronous ``repro.service/1`` client (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8742,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        jitter: float = 0.0,
        rng=None,
        sleep=time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.rng = rng
        self.sleep = sleep

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> Any:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        if path == "/metrics":
            return raw.decode()
        try:
            return json.loads(raw)
        except ValueError:
            raise ServiceError(
                f"service returned non-JSON for {method} {path} "
                f"(HTTP {response.status}): {raw[:200]!r}"
            )

    # ------------------------------------------------------------------
    # The protocol surface.
    # ------------------------------------------------------------------
    def submit(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """POST a raw request document; return the full ok envelope.

        Typed errors come back as raised exceptions
        (:func:`~repro.service.protocol.exception_for`);
        :class:`ServiceOverloaded` is retried on the jittered backoff
        schedule, honouring the server's ``retry_after`` floor.
        """
        body = json.dumps(doc, sort_keys=True).encode()
        # retries = extra attempts after the first, so the schedule
        # needs one delay per retry (attempts = retries + 1).
        delays = backoff_delays(
            self.backoff,
            self.retries + 1,
            jitter=self.jitter,
            rng=self.rng,
            label="service.submit",
        )
        attempt = 0
        while True:
            envelope = self._request("POST", "/v1/allocate", body)
            if envelope.get("status") == "ok":
                return envelope
            exc = protocol.exception_for(envelope)
            if (
                not isinstance(exc, ServiceOverloaded)
                or attempt >= self.retries
            ):
                raise exc
            self.sleep(max(exc.retry_after, delays[attempt]))
            attempt += 1

    def allocate(
        self,
        programs: Sequence[Union[str, Dict[str, Any]]],
        priority: int = 1,
        deadline_s: Optional[float] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """Allocate ``programs`` and return the result payload.

        Each program is a kernel name (suite reference), an assembly
        string (anything with a newline or spaces), or an explicit
        ``{"kernel": ...}`` / ``{"asm": ...}`` object.  Keyword options
        are the protocol options (``nreg``, ``policy``, ``simulate``,
        ``engine``, ``verify``, ``check_init``).
        """
        docs: List[Dict[str, Any]] = []
        for program in programs:
            if isinstance(program, dict):
                docs.append(program)
            elif "\n" in program or " " in program.strip():
                docs.append({"asm": program})
            else:
                docs.append({"kernel": program})
        doc: Dict[str, Any] = {"programs": docs}
        doc.update(options)
        if priority != 1:
            doc["priority"] = priority
        if deadline_s is not None:
            doc["deadline_s"] = deadline_s
        return self.submit(doc)["result"]

    # ------------------------------------------------------------------
    # Operational endpoints.
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def ready(self) -> bool:
        return bool(self._request("GET", "/readyz").get("ready"))

    def status(self) -> Dict[str, Any]:
        return self._request("GET", "/statusz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")
