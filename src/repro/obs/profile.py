"""One-call profiling harness over the allocator pipeline and simulator.

:func:`profile_programs` runs the full allocation (and, by default, the
allocated simulation) under a fresh event capture and metric registry,
then distills the telemetry into a :class:`ProfileReport`: wall time per
pipeline phase, allocator decision counts (greedy steps, probes,
recolors/splits), and the simulator's per-thread run/idle/switch cycle
accounting.  ``repro profile`` is a thin CLI shell around it.

The harness is intentionally *outside* the measured code: installing the
capture here means the pipeline's own instrumentation stays no-op in
normal runs and only lights up while a profile (or an explicit
``--metrics`` capture) is active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import events, metrics
from repro.obs.export import SCHEMA_RUN, to_jsonable


@dataclass
class ProfileReport:
    """Distilled telemetry for one profiled allocation(+simulation)."""

    wall_s: float
    phases: Dict[str, float]
    event_counts: Dict[str, int]
    metrics: Dict[str, Any]
    inter_steps: List[Dict[str, Any]]
    sim: List[Dict[str, Any]]
    allocation: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = to_jsonable(self)
        out["schema"] = SCHEMA_RUN
        return out


def profile_programs(
    programs: Sequence[Any],
    nreg: int = 128,
    packets: int = 16,
    sim: bool = True,
    policy: str = "greedy",
    engine: Optional[str] = None,
    jobs: int = 1,
) -> ProfileReport:
    """Profile one PU's allocation (and optionally its simulation).

    Args:
        programs: virtual-register programs, one per hardware thread.
        nreg: physical register budget.
        packets: packets per thread for the simulated run.
        sim: also run the allocated programs on the simulator.
        policy: inter-thread reduction policy.
        jobs: worker processes for analysis cache misses (see
            :func:`repro.core.pipeline.allocate_programs`).
        engine: execution engine for the simulated run (see
            :mod:`repro.sim.engine`).  The profiled run carries the
            paranoid safety checker and records its timeline into the
            capture, so the default ``None``/``"auto"`` resolves to the
            reference engine; an explicit ``"fast"`` raises
            :class:`~repro.errors.EngineError`.
    """
    from repro.core.pipeline import allocate_programs
    from repro.sim.run import run_threads

    start = time.perf_counter()
    with metrics.scoped() as reg, events.capture() as em:
        outcome = allocate_programs(
            programs, nreg=nreg, policy=policy, jobs=jobs
        )
        if sim:
            run_threads(
                outcome.programs,
                packets_per_thread=packets,
                nreg=nreg,
                assignment=outcome.assignment,
                engine=engine,
            )
    wall = time.perf_counter() - start
    allocation = {
        "nreg": nreg,
        "policy": policy,
        "total_registers": outcome.total_registers,
        "sgr": outcome.sgr,
        "total_moves": outcome.total_moves,
        "threads": [
            {"name": t.name, "pr": t.pr, "sr": t.sr, "moves": t.move_cost}
            for t in outcome.inter.threads
        ],
    }
    return ProfileReport(
        wall_s=wall,
        phases=em.phase_timings(),
        event_counts=em.counts(),
        metrics=reg.snapshot(),
        inter_steps=[e.fields for e in em.events_named("inter.step")],
        sim=[e.fields for e in em.events_named("sim.accounting")],
        allocation=allocation,
    )


def render_report(report: ProfileReport) -> str:
    """Human-readable profile: phase table, decisions, cycle accounting."""
    from repro.harness.report import text_table

    blocks: List[str] = []

    total = sum(
        d for p, d in report.phases.items() if "/" not in p
    ) or report.wall_s
    phase_rows = [
        (path, 1000.0 * dur, 100.0 * dur / total if total else 0.0)
        for path, dur in sorted(report.phases.items())
    ]
    blocks.append(
        "Phase timings\n"
        + text_table(["phase", "ms", "% of total"], phase_rows)
    )

    counters = report.metrics.get("counters", {})
    decision_rows = [(name, value) for name, value in sorted(counters.items())]
    if decision_rows:
        blocks.append(
            "Allocator decisions\n"
            + text_table(["counter", "count"], decision_rows)
        )

    if report.inter_steps:
        kinds: Dict[str, int] = {}
        total_delta = 0
        for step in report.inter_steps:
            kinds[step.get("kind", "?")] = kinds.get(step.get("kind", "?"), 0) + 1
            total_delta += step.get("delta", 0)
        blocks.append(
            f"Inter-thread greedy loop: {len(report.inter_steps)} steps "
            f"({', '.join(f'{k}={v}' for k, v in sorted(kinds.items()))}), "
            f"total move-cost delta {total_delta}"
        )

    for acct in report.sim:
        rows = [
            (
                t.get("tid"),
                t.get("name", "?"),
                t.get("run", 0),
                t.get("switch", 0),
            )
            for t in acct.get("threads", [])
        ]
        blocks.append(
            f"Simulator cycle accounting: {acct.get('cycles', 0)} cycles, "
            f"idle {acct.get('idle', 0)}\n"
            + text_table(["tid", "thread", "run", "switch"], rows)
        )

    blocks.append(f"total wall time: {1000.0 * report.wall_s:.1f} ms")
    return "\n\n".join(blocks)
