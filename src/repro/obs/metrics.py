"""Counters, gauges, and histograms in a process-global registry.

Metrics complement events: events answer *what happened, in order*,
metrics answer *how much, in total*, cheaply enough to leave on.  All
metric types are JSON-ready via :meth:`MetricsRegistry.snapshot`, and the
whole registry round-trips through ``json.dumps`` losslessly.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted lowercase
``<layer>.<thing>``, e.g. ``inter.steps``, ``intra.recolors``,
``sim.cycles``.  Get-or-create accessors make call sites declaration-free::

    registry().counter("inter.steps").inc()
    registry().histogram("inter.step_delta").observe(delta)

Metrics optionally carry **labels** -- a small set of key/value pairs
passed as keyword arguments -- so one metric name becomes a family of
independent series that can be sliced after the fact::

    registry().counter("inter.steps", kind="pr").inc()
    registry().counter("sim.thread.busy_cycles", thread=2, kernel="md5").inc(n)

Label handling is deterministic: keys are sorted, values stringified,
and the snapshot key is the Prometheus-style ``name{k="v",...}`` form
(:func:`format_key` / :func:`parse_key` round-trip it).  Unlabeled call
sites are unchanged -- ``counter("x")`` is the same series it always
was -- and ``snapshot()`` ordering stays stable (plain string sort over
the full keys).  The conventional label keys are ``kernel``, ``engine``,
``thread``, ``impl``, ``site``, ``phase``, ``kind``, and (for merged
sweep-worker snapshots) ``item``.

Tests and profilers that need isolation swap the global registry with
:func:`scoped` instead of resetting shared state they don't own.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

#: Default histogram bucket upper bounds (values above the last bound land
#: in the overflow bucket).  Roughly log-spaced: decision costs, segment
#: lengths, and cycle counts all fit without configuration.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 10_000, 100_000,
)

#: Bucket bounds for *wall-clock seconds*.  :data:`DEFAULT_BUCKETS`
#: starts at ``0, 1, 2, ...``, so every sub-second observation -- which
#: is all of them, for span and phase timings -- collapses into one
#: bucket.  These fractional bounds resolve from 100 microseconds up to
#: a minute; pass them (or any per-histogram override) as the ``bounds``
#: argument of :meth:`MetricsRegistry.histogram`.
TIMING_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: A normalized label set: sorted key/value string pairs.
LabelPairs = Tuple[Tuple[str, str], ...]


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append("\n" if nxt == "n" else nxt)
    return "".join(out)


def normalize_labels(labels: Mapping[str, Any]) -> LabelPairs:
    """Sorted ``(key, str(value))`` pairs -- the canonical label form."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(name: str, labels: LabelPairs = ()) -> str:
    """The snapshot key: ``name`` or ``name{k="v",...}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels
    )
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, LabelPairs]:
    """Invert :func:`format_key`; plain names come back with ``()``."""
    brace = key.find("{")
    if brace < 0:
        return key, ()
    if not key.endswith("}"):
        raise ValueError(f"malformed metric key {key!r}")
    name = key[:brace]
    inner = key[brace + 1:-1]
    pairs: List[Tuple[str, str]] = []
    i = 0
    while i < len(inner):
        eq = inner.index("=", i)
        label = inner[i:eq]
        if inner[eq + 1] != '"':
            raise ValueError(f"malformed metric key {key!r}")
        j = eq + 2
        raw: List[str] = []
        while j < len(inner):
            ch = inner[j]
            if ch == "\\":
                raw.append(inner[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"malformed metric key {key!r}")
        pairs.append((label, _unescape_label_value("".join(raw))))
        i = j + 1
        if i < len(inner) and inner[i] == ",":
            i += 1
    return name, tuple(pairs)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution: count/sum/min/max plus fixed cumulative buckets."""

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "count", "total",
        "min", "max",
    )

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        labels: LabelPairs = (),
    ):
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, self.bucket_counts)},
                "+inf": self.bucket_counts[-1],
            },
        }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Used to merge sweep-worker registries back into the parent; the
        snapshot must have the same bucket layout.
        """
        buckets = snap["buckets"]
        if len(buckets) != len(self.bucket_counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshot with "
                f"{len(buckets)} buckets into {len(self.bucket_counts)}"
            )
        for i, c in enumerate(buckets.values()):
            self.bucket_counts[i] += c
        self.count += snap["count"]
        self.total += snap["sum"]
        if snap["min"] is not None:
            self.min = snap["min"] if self.min is None else min(
                self.min, snap["min"]
            )
        if snap["max"] is not None:
            self.max = snap["max"] if self.max is None else max(
                self.max, snap["max"]
            )


def _parse_bound(text: str) -> float:
    """A bucket key back to its numeric bound, preserving int-ness so
    re-snapshotting produces the exact same key strings."""
    try:
        return int(text)
    except ValueError:
        return float(text)


class MetricsRegistry:
    """Process-wide named metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        pairs = normalize_labels(labels) if labels else ()
        key = format_key(name, pairs)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, pairs)
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        pairs = normalize_labels(labels) if labels else ()
        key = format_key(name, pairs)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, pairs)
        return g

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        pairs = normalize_labels(labels) if labels else ()
        key = format_key(name, pairs)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, bounds, pairs)
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every metric (sorted for diffability).

        Labeled series appear under their ``name{k="v",...}`` key right
        after (string sort) the plain ``name`` series, so the ordering
        is stable run to run regardless of creation order.
        """
        return {
            "counters": {
                key: c.value for key, c in sorted(self._counters.items())
            },
            "gauges": {
                key: g.value for key, g in sorted(self._gauges.items())
            },
            "histograms": {
                key: h.snapshot()
                for key, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(
        self,
        snap: Mapping[str, Any],
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        Counters add, gauges last-write-win, histograms merge bucket by
        bucket.  ``labels``, when given, are appended to every merged
        series (existing snapshot labels are kept) -- this is how sweep
        workers' registries come home labeled by item, see
        :func:`repro.harness.sweep.sweep_map`.
        """
        extra = dict(labels) if labels else {}
        for key, value in snap.get("counters", {}).items():
            name, pairs = parse_key(key)
            self.counter(name, **{**dict(pairs), **extra}).inc(value)
        for key, value in snap.get("gauges", {}).items():
            name, pairs = parse_key(key)
            self.gauge(name, **{**dict(pairs), **extra}).set(value)
        for key, hsnap in snap.get("histograms", {}).items():
            name, pairs = parse_key(key)
            bounds = tuple(
                _parse_bound(b) for b in hsnap["buckets"] if b != "+inf"
            )
            self.histogram(
                name, bounds, **{**dict(pairs), **extra}
            ).merge(hsnap)

    def reset(self) -> None:
        """Drop every metric (names included, so types can change)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry."""
    return _registry


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Install ``reg`` globally; returns the previous registry."""
    global _registry
    previous = _registry
    _registry = reg
    return previous


@contextmanager
def scoped(reg: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Swap in a fresh registry for the block, restoring on exit."""
    fresh = reg if reg is not None else MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)
