"""Counters, gauges, and histograms in a process-global registry.

Metrics complement events: events answer *what happened, in order*,
metrics answer *how much, in total*, cheaply enough to leave on.  All
metric types are JSON-ready via :meth:`MetricsRegistry.snapshot`, and the
whole registry round-trips through ``json.dumps`` losslessly.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted lowercase
``<layer>.<thing>``, e.g. ``inter.steps``, ``intra.recolors``,
``sim.cycles``.  Get-or-create accessors make call sites declaration-free::

    registry().counter("inter.steps").inc()
    registry().histogram("inter.step_delta").observe(delta)

Tests and profilers that need isolation swap the global registry with
:func:`scoped` instead of resetting shared state they don't own.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (values above the last bound land
#: in the overflow bucket).  Roughly log-spaced: decision costs, segment
#: lengths, and cycle counts all fit without configuration.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 10_000, 100_000,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution: count/sum/min/max plus fixed cumulative buckets."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, self.bucket_counts)},
                "+inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Process-wide named metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every metric (sorted for diffability)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (names included, so types can change)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry."""
    return _registry


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Install ``reg`` globally; returns the previous registry."""
    global _registry
    previous = _registry
    _registry = reg
    return previous


@contextmanager
def scoped(reg: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Swap in a fresh registry for the block, restoring on exit."""
    fresh = reg if reg is not None else MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)
