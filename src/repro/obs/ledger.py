"""The run ledger: an append-only JSONL store of benchmark measurements.

Every benchmark harness run -- ``pytest benchmarks/bench_*.py`` via
:func:`benchmarks._util.publish` and every ``repro bench`` invocation --
appends one schema-versioned row per experiment, next to the committed
``BENCH_*.json`` snapshots.  Where a ``BENCH_*.json`` file holds *one*
(committed, reproducible) measurement, the ledger accumulates the
*trajectory* of measurements across runs and machines; the regression
sentinel (:mod:`repro.harness.trend`, ``repro bench trend``) reads both
to decide whether a watched metric regressed.

Row shape (``schema: repro.ledger/1``)::

    {"schema": "repro.ledger/1", "bench": "perf",
     "ts": 1754550000.0, "commit": "79a5f3d",
     "config": {"engine": "auto", "jobs": 1},
     "fingerprints": ["9ae2...", ...],
     "metrics": {"sim.speedup": 5.79, ...}}

``ts`` and ``commit`` are **caller-supplied** (wall time and VCS state
are the caller's business -- the library never calls ``time.time`` or
``git`` itself); :func:`default_commit` just reads the conventional
environment variables.  ``metrics`` holds the watched scalar values for
this bench (see :data:`repro.harness.trend.WATCHED`), ``fingerprints``
the content fingerprints of the programs measured, ``config`` whatever
knobs shaped the run.

The store is plain JSON Lines: one compact object per line, appended
with a single ``write`` so concurrent appenders interleave at line
granularity.  :func:`read` recovers from a corrupt or truncated tail
(the realistic failure: a killed process mid-append) by keeping every
complete leading row and warning about the rest.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.obs.export import to_jsonable

SCHEMA_LEDGER = "repro.ledger/1"

#: Environment override for the ledger location.
ENV_LEDGER = "REPRO_LEDGER"

#: Default location, relative to the repo root / current directory --
#: next to the committed ``BENCH_*.json`` artifacts (but NOT committed
#: itself; rows carry timestamps and machine-dependent timings).
DEFAULT_RELPATH = pathlib.Path("benchmarks") / "out" / "ledger.jsonl"

PathLike = Union[str, pathlib.Path]


def default_path() -> pathlib.Path:
    """The ledger path: ``$REPRO_LEDGER`` or ``benchmarks/out/ledger.jsonl``."""
    env = os.environ.get(ENV_LEDGER)
    return pathlib.Path(env) if env else DEFAULT_RELPATH


def default_commit() -> Optional[str]:
    """The commit id from the conventional environment variables
    (``REPRO_COMMIT``, then CI's ``GITHUB_SHA``), or None."""
    return os.environ.get("REPRO_COMMIT") or os.environ.get("GITHUB_SHA")


def make_row(
    bench: str,
    metrics: Mapping[str, float],
    *,
    config: Optional[Mapping[str, Any]] = None,
    fingerprints: Optional[Iterable[str]] = None,
    ts: Optional[float] = None,
    commit: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one schema-versioned ledger row (strict-JSON-ready)."""
    if not bench:
        raise ValueError("ledger rows need a non-empty bench name")
    return {
        "schema": SCHEMA_LEDGER,
        "bench": bench,
        "ts": ts,
        "commit": commit if commit is not None else default_commit(),
        "config": to_jsonable(dict(config) if config else {}),
        "fingerprints": sorted(fingerprints) if fingerprints else [],
        "metrics": {k: to_jsonable(v) for k, v in sorted(metrics.items())},
    }


def append(
    row: Union[Mapping[str, Any], Iterable[Mapping[str, Any]]],
    path: Optional[PathLike] = None,
) -> pathlib.Path:
    """Append one row (or an iterable of rows) to the ledger.

    Creates the file and parent directories on first use.  Each row is
    one compact JSON line; returns the ledger path.
    """
    out = pathlib.Path(path) if path is not None else default_path()
    rows = [row] if isinstance(row, Mapping) else list(row)
    lines = []
    for r in rows:
        if r.get("schema") != SCHEMA_LEDGER:
            raise ValueError(
                f"refusing to append a row without schema "
                f"{SCHEMA_LEDGER!r}: {r.get('schema')!r} (use make_row)"
            )
        lines.append(
            json.dumps(
                to_jsonable(r), separators=(",", ":"), allow_nan=False
            )
        )
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("a") as fh:
        fh.write("".join(line + "\n" for line in lines))
    return out


def read(
    path: Optional[PathLike] = None, strict: bool = False
) -> List[Dict[str, Any]]:
    """Load every row of the ledger; ``[]`` when it does not exist.

    An unparsable line (a truncated tail from a killed appender, or
    plain corruption) ends the scan: every complete row *before* it is
    returned, the rest is dropped with a :class:`RuntimeWarning` --
    append-only logs are only ever damaged at the end, so rows after a
    bad line are not trusted either.  ``strict=True`` raises
    :class:`ValueError` instead.  Rows with an unknown schema are kept
    (forward compatibility) but unknown top-level shapes (non-objects)
    count as corruption.
    """
    src = pathlib.Path(path) if path is not None else default_path()
    if not src.exists():
        return []
    rows: List[Dict[str, Any]] = []
    with src.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                row = json.loads(text)
                if not isinstance(row, dict):
                    raise ValueError(f"row is {type(row).__name__}, not object")
            except ValueError as exc:
                message = (
                    f"ledger {src}: line {lineno} is corrupt ({exc}); "
                    f"keeping the {len(rows)} complete row(s) before it"
                )
                if strict:
                    raise ValueError(message) from exc
                warnings.warn(message, RuntimeWarning, stacklevel=2)
                break
            rows.append(row)
    return rows


def rows_for(
    bench: str, path: Optional[PathLike] = None
) -> List[Dict[str, Any]]:
    """Every ledger row for one bench name, oldest first."""
    return [r for r in read(path) if r.get("bench") == bench]
