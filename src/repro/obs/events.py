"""Structured telemetry events with nested, wall-clock-timed spans.

Two primitives:

* an **event** is a named point-in-time record with free-form fields
  (``emit("inter.step", kind="pr", thread=2, delta=0)``);
* a **span** is a named duration covering everything emitted inside its
  ``with`` block; spans nest, and every record carries the path of its
  enclosing span (``"allocate/inter"``), which is what turns a flat event
  log back into a phase tree.

The process-global emitter defaults to :data:`NULL`, a no-op whose
``emit`` returns immediately and whose ``span`` hands back one shared
do-nothing context manager -- instrumented hot paths stay zero-cost until
someone installs a real :class:`Emitter`, normally via :func:`capture`::

    with capture() as em:
        allocate_programs(programs, nreg=32)
    em.phase_timings()  # {"allocate": 0.01, "allocate/inter": 0.007, ...}

Timestamps are seconds relative to the emitter's creation (monotonic
clock), so event logs are diffable between runs and never depend on wall
time; converting to absolute time is the consumer's business.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class Event:
    """One telemetry record (a point event or a completed span)."""

    name: str
    kind: str  #: ``"event"`` or ``"span"``
    ts: float  #: seconds since the emitter's epoch (span: start time)
    seq: int  #: emitter-wide ordering (spans are sequenced at *exit*)
    span: Optional[str] = None  #: enclosing span path, None at top level
    dur: Optional[float] = None  #: span wall time in seconds
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def path(self) -> str:
        """Full span path of the record itself."""
        return f"{self.span}/{self.name}" if self.span else self.name

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (compact: optional keys omitted when empty)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "ts": round(self.ts, 9),
            "seq": self.seq,
        }
        if self.span is not None:
            out["span"] = self.span
        if self.dur is not None:
            out["dur"] = round(self.dur, 9)
        if self.fields:
            out["fields"] = self.fields
        return out


class _NullSpan:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullEmitter:
    """The disabled emitter: records nothing, costs (almost) nothing."""

    enabled = False
    events: tuple = ()

    def emit(self, name: str, **fields: Any) -> None:
        return None

    def span(self, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def span_path(self) -> Optional[str]:
        return None

    def phase_timings(self) -> Dict[str, float]:
        return {}

    def counts(self) -> Dict[str, int]:
        return {}

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []


class Emitter:
    """An enabled emitter: an in-memory, append-only event log."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._stack: List[str] = []
        self._seq = 0
        self.events: List[Event] = []

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    def span_path(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    def emit(self, name: str, **fields: Any) -> Event:
        """Record a point event under the current span."""
        ev = Event(
            name=name,
            kind="event",
            ts=self._now(),
            seq=self._seq,
            span=self.span_path(),
            fields=fields,
        )
        self._seq += 1
        self.events.append(ev)
        return ev

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Time a phase; everything emitted inside carries its path."""
        parent = self.span_path()
        path = f"{parent}/{name}" if parent else name
        self._stack.append(path)
        start = self._now()
        try:
            yield
        finally:
            self._stack.pop()
            ev = Event(
                name=name,
                kind="span",
                ts=start,
                seq=self._seq,
                span=parent,
                dur=self._now() - start,
                fields=fields,
            )
            self._seq += 1
            self.events.append(ev)

    # ------------------------------------------------------------------
    # Read-side helpers.
    # ------------------------------------------------------------------
    def events_named(self, name: str) -> List[Event]:
        return [e for e in self.events if e.name == name]

    def phase_timings(self) -> Dict[str, float]:
        """Total wall seconds per span path (repeated spans accumulate)."""
        out: Dict[str, float] = {}
        for e in self.events:
            if e.kind == "span" and e.dur is not None:
                out[e.path] = out.get(e.path, 0.0) + e.dur
        return out

    def counts(self) -> Dict[str, int]:
        """Record count per event name (spans included)."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0) + 1
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.events]


#: The disabled singleton every call site sees by default.
NULL = NullEmitter()

_current: Any = NULL


def get_emitter() -> Any:
    """The process-global emitter (``NULL`` unless :func:`capture` is
    active or :func:`set_emitter` installed one)."""
    return _current


def set_emitter(emitter: Any) -> Any:
    """Install ``emitter`` globally; returns the previous one."""
    global _current
    previous = _current
    _current = emitter
    return previous


def enabled() -> bool:
    return _current.enabled


def emit(name: str, **fields: Any) -> None:
    """Emit through the global emitter (no-op when disabled)."""
    em = _current
    if em.enabled:
        em.emit(name, **fields)


def span(name: str, **fields: Any):
    """Open a span on the global emitter (no-op when disabled)."""
    return _current.span(name, **fields)


@contextmanager
def capture(emitter: Optional[Emitter] = None) -> Iterator[Emitter]:
    """Install a (fresh by default) emitter for the duration of the block.

    The previous emitter is restored on exit, even on error, so captures
    nest and never leak into unrelated code.
    """
    em = emitter if emitter is not None else Emitter()
    previous = set_emitter(em)
    try:
        yield em
    finally:
        set_emitter(previous)
