"""Observability: structured tracing, metrics, and profiling.

The subsystem is dependency-free and **zero-cost when disabled**: the
process-global emitter defaults to a :class:`~repro.obs.events.NullEmitter`
whose ``emit`` is a constant-time no-op and whose ``span`` hands back a
shared do-nothing context manager, so instrumented code paths pay one
attribute check when nobody is listening.

Layers:

* :mod:`repro.obs.events` -- structured events and nested phase spans
  (wall-clock timed), captured by installing an :class:`Emitter`;
* :mod:`repro.obs.metrics` -- counters / gauges / histograms in a
  process-global registry with a JSON-ready ``snapshot()``;
* :mod:`repro.obs.export` -- JSON / JSONL writers, the combined
  ``run_snapshot`` document the CLI's ``--metrics`` flag produces, the
  ``BENCH_*.json`` benchmark-trajectory snapshots, and the standard
  exporters (Prometheus text exposition, Chrome trace-event JSON);
* :mod:`repro.obs.ledger` -- the append-only JSONL run ledger that
  accumulates benchmark measurements across runs (read by the
  ``repro bench trend`` regression sentinel);
* :mod:`repro.obs.profile` -- one-call wall-time + allocation-decision
  profiling harness behind ``repro profile``.

See ``docs/OBSERVABILITY.md`` for the event schema, metric names, and
the label conventions.
"""

from repro.obs import events, export, ledger, metrics, profile

__all__ = ["events", "export", "ledger", "metrics", "profile"]
