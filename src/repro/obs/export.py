"""JSON / JSONL writers for telemetry and benchmark artifacts.

Everything funnels through :func:`to_jsonable`, which knows dataclasses,
mappings, sequences, and the awkward floats (NaN/inf become ``None`` so
the output is *strict* JSON -- ``jq`` and browsers both choke on bare
``NaN``).

Three document shapes leave this module:

* ``write_jsonl`` -- one event dict per line, the ``--trace-json`` format;
* :func:`run_snapshot` -- the combined ``--metrics`` document: phase
  timings, per-greedy-step inter-allocator events, simulator cycle
  accounting, and the metric registry snapshot;
* :func:`bench_snapshot` -- ``BENCH_<name>.json`` trajectory files written
  next to the text artifacts under ``benchmarks/out/``.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import Any, Dict, Iterable, Mapping, Optional, Union

SCHEMA_RUN = "repro.obs/1"
SCHEMA_BENCH = "repro.bench/1"

PathLike = Union[str, pathlib.Path]


def to_jsonable(obj: Any) -> Any:
    """Convert ``obj`` into strict-JSON-compatible plain data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return str(obj)


def write_json(path: PathLike, payload: Any, indent: int = 2) -> pathlib.Path:
    """Write ``payload`` as pretty-printed strict JSON; returns the path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(to_jsonable(payload), indent=indent, allow_nan=False)
        + "\n"
    )
    return out


def write_jsonl(
    path: PathLike, rows: Iterable[Mapping[str, Any]]
) -> pathlib.Path:
    """Write ``rows`` as JSON Lines (one compact object per line)."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        for row in rows:
            fh.write(
                json.dumps(
                    to_jsonable(row),
                    separators=(",", ":"),
                    allow_nan=False,
                )
            )
            fh.write("\n")
    return out


def run_snapshot(
    emitter: Any,
    registry: Any = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the combined ``--metrics`` document from one captured run.

    Keys:

    * ``phases`` -- wall seconds per span path (the allocator pipeline's
      validate/analyze/bounds/inter/assign/rewrite timings);
    * ``event_counts`` -- record count per event name;
    * ``inter_steps`` -- the inter-thread greedy loop's state trace:
      the ``inter.start`` budget state, one ``inter.step`` event per
      committed reduction (kind, threads, move-cost delta, requirement
      vs. budget), and the ``inter.done`` end state;
    * ``sim`` -- every ``sim.accounting`` event (per-thread run/idle/
      switch cycle totals that sum to machine cycles, plus the
      context-switch histogram);
    * ``metrics`` -- the registry snapshot (when a registry is given).
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA_RUN,
        "phases": emitter.phase_timings(),
        "event_counts": emitter.counts(),
        "inter_steps": [
            {"event": e.name, **e.fields}
            for e in getattr(emitter, "events", ())
            if e.name in ("inter.start", "inter.step", "inter.done")
        ],
        "sim": [
            e.fields
            for e in getattr(emitter, "events", ())
            if e.name == "sim.accounting"
        ],
    }
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    if extra:
        doc.update(extra)
    return doc


def bench_snapshot(
    name: str,
    data: Any,
    out_dir: PathLike,
    extra: Optional[Mapping[str, Any]] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path.

    The file shape is ``{"schema": ..., "bench": name, "data": ...}`` so
    trajectory tooling can glob ``BENCH_*.json`` and diff ``data``
    between revisions without caring which experiment produced it.
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA_BENCH,
        "bench": name,
        "data": to_jsonable(data),
    }
    if extra:
        doc.update(to_jsonable(extra))
    return write_json(pathlib.Path(out_dir) / f"BENCH_{name}.json", doc)
