"""JSON / JSONL writers plus standard exporters for telemetry artifacts.

Everything funnels through :func:`to_jsonable`, which knows dataclasses,
mappings, sequences, and the awkward floats (NaN/inf become ``None`` so
the output is *strict* JSON -- ``jq`` and browsers both choke on bare
``NaN``).

Document shapes leaving this module:

* ``write_jsonl`` -- one event dict per line, the ``--trace-json`` format;
* :func:`run_snapshot` -- the combined ``--metrics`` document: phase
  timings, per-greedy-step inter-allocator events, simulator cycle
  accounting, and the metric registry snapshot;
* :func:`bench_snapshot` -- ``BENCH_<name>.json`` trajectory files written
  next to the text artifacts under ``benchmarks/out/``;
* :func:`to_prometheus` -- the metric registry in the Prometheus text
  exposition format (the CLI's ``--prom`` flag), histograms expanded to
  ``_bucket``/``_sum``/``_count`` with cumulative ``le`` buckets;
* :func:`to_chrome_trace` -- the span tree as Chrome trace-event JSON
  (the CLI's ``--trace-chrome`` flag), loadable in ``chrome://tracing``
  and Perfetto.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

SCHEMA_RUN = "repro.obs/1"
SCHEMA_BENCH = "repro.bench/1"

PathLike = Union[str, pathlib.Path]


def to_jsonable(obj: Any) -> Any:
    """Convert ``obj`` into strict-JSON-compatible plain data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return str(obj)


def write_json(path: PathLike, payload: Any, indent: int = 2) -> pathlib.Path:
    """Write ``payload`` as pretty-printed strict JSON; returns the path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(to_jsonable(payload), indent=indent, allow_nan=False)
        + "\n"
    )
    return out


def write_jsonl(
    path: PathLike, rows: Iterable[Mapping[str, Any]]
) -> pathlib.Path:
    """Write ``rows`` as JSON Lines (one compact object per line)."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        for row in rows:
            fh.write(
                json.dumps(
                    to_jsonable(row),
                    separators=(",", ":"),
                    allow_nan=False,
                )
            )
            fh.write("\n")
    return out


_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str, prefix: str = "repro_") -> str:
    """A dotted metric name as a valid Prometheus metric name."""
    sanitized = _PROM_BAD_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _prom_labels(pairs, extra: Iterable = ()) -> str:
    items = list(pairs) + list(extra)
    if not items:
        return ""
    def esc(v: str) -> str:
        return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return "{" + ",".join(f'{k}="{esc(str(v))}"' for k, v in items) + "}"


def to_prometheus(snapshot: Mapping[str, Any], prefix: str = "repro_") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` document as Prometheus
    text exposition format (version 0.0.4).

    Dotted names become underscore names under ``prefix``
    (``inter.steps`` -> ``repro_inter_steps``); labeled series keep
    their labels.  Histograms are expanded the standard way: cumulative
    ``_bucket`` series with ``le`` upper bounds (``+Inf`` included),
    plus ``_sum`` and ``_count``.  One ``# TYPE`` line is emitted per
    metric family, families in sorted order, so the output is
    byte-stable for a given snapshot.
    """
    from repro.obs.metrics import parse_key

    lines: List[str] = []
    families: Dict[str, List[str]] = {}

    def family(name: str, kind: str) -> List[str]:
        pname = prom_name(name, prefix)
        block = families.get(pname)
        if block is None:
            block = families[pname] = [f"# TYPE {pname} {kind}"]
        return block

    for key, value in snapshot.get("counters", {}).items():
        name, pairs = parse_key(key)
        pname = prom_name(name, prefix)
        family(name, "counter").append(
            f"{pname}{_prom_labels(pairs)} {_prom_value(value)}"
        )
    for key, value in snapshot.get("gauges", {}).items():
        name, pairs = parse_key(key)
        pname = prom_name(name, prefix)
        family(name, "gauge").append(
            f"{pname}{_prom_labels(pairs)} {_prom_value(value)}"
        )
    for key, hist in snapshot.get("histograms", {}).items():
        name, pairs = parse_key(key)
        pname = prom_name(name, prefix)
        block = family(name, "histogram")
        cumulative = 0
        for bound, count in hist["buckets"].items():
            cumulative += count
            le = "+Inf" if bound == "+inf" else bound
            block.append(
                f"{pname}_bucket{_prom_labels(pairs, [('le', le)])} "
                f"{cumulative}"
            )
        block.append(
            f"{pname}_sum{_prom_labels(pairs)} {_prom_value(hist['sum'])}"
        )
        block.append(
            f"{pname}_count{_prom_labels(pairs)} {_prom_value(hist['count'])}"
        )
    for pname in sorted(families):
        lines.extend(families[pname])
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    path: PathLike, snapshot: Mapping[str, Any], prefix: str = "repro_"
) -> pathlib.Path:
    """Write :func:`to_prometheus` output to ``path``; returns the path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(to_prometheus(snapshot, prefix))
    return out


def to_chrome_trace(emitter: Any, pid: int = 1, tid: int = 1) -> Dict[str, Any]:
    """The captured event log as a Chrome trace-event document.

    Spans become complete (``"ph": "X"``) events with microsecond
    ``ts``/``dur``; point events become thread-scoped instants
    (``"ph": "i"``).  The emitter records spans at *exit* but with their
    start timestamp, so the ``X`` events nest correctly when sorted by
    ``ts`` -- which this function does.  Load the result in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    trace_events: List[Dict[str, Any]] = []
    for e in getattr(emitter, "events", ()):
        record: Dict[str, Any] = {
            "name": e.name,
            "cat": e.span if e.span else "top",
            "ts": round(e.ts * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if e.kind == "span":
            record["ph"] = "X"
            record["dur"] = round((e.dur or 0.0) * 1e6, 3)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if e.fields:
            record["args"] = to_jsonable(e.fields)
        trace_events.append(record)
    trace_events.sort(key=lambda r: (r["ts"], -r.get("dur", 0.0)))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: PathLike, emitter: Any, pid: int = 1, tid: int = 1
) -> pathlib.Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    return write_json(path, to_chrome_trace(emitter, pid=pid, tid=tid))


def run_snapshot(
    emitter: Any,
    registry: Any = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the combined ``--metrics`` document from one captured run.

    Keys:

    * ``phases`` -- wall seconds per span path (the allocator pipeline's
      validate/analyze/bounds/inter/assign/rewrite timings);
    * ``event_counts`` -- record count per event name;
    * ``inter_steps`` -- the inter-thread greedy loop's state trace:
      the ``inter.start`` budget state, one ``inter.step`` event per
      committed reduction (kind, threads, move-cost delta, requirement
      vs. budget), and the ``inter.done`` end state;
    * ``sim`` -- every ``sim.accounting`` event (per-thread run/idle/
      switch cycle totals that sum to machine cycles, plus the
      context-switch histogram);
    * ``metrics`` -- the registry snapshot (when a registry is given).
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA_RUN,
        "phases": emitter.phase_timings(),
        "event_counts": emitter.counts(),
        "inter_steps": [
            {"event": e.name, **e.fields}
            for e in getattr(emitter, "events", ())
            if e.name in ("inter.start", "inter.step", "inter.done")
        ],
        "sim": [
            e.fields
            for e in getattr(emitter, "events", ())
            if e.name == "sim.accounting"
        ],
    }
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    if extra:
        doc.update(extra)
    return doc


def bench_snapshot(
    name: str,
    data: Any,
    out_dir: PathLike,
    extra: Optional[Mapping[str, Any]] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path.

    The file shape is ``{"schema": ..., "bench": name, "data": ...}`` so
    trajectory tooling can glob ``BENCH_*.json`` and diff ``data``
    between revisions without caring which experiment produced it.
    """
    doc: Dict[str, Any] = {
        "schema": SCHEMA_BENCH,
        "bench": name,
        "data": to_jsonable(data),
    }
    if extra:
        doc.update(to_jsonable(extra))
    return write_json(pathlib.Path(out_dir) / f"BENCH_{name}.json", doc)
