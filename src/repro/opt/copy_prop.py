"""Block-local copy propagation.

Inside each basic block, after ``mov d, s`` later reads of ``d`` are
rewritten to read ``s`` until either register is redefined.  The mov
itself stays; if the propagation made it dead, dead-code elimination
removes it afterwards.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cfg.blocks import build_blocks
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode, U
from repro.ir.operands import Reg
from repro.ir.program import Program


def propagate_copies(program: Program) -> Program:
    """Return a new program with block-local copies propagated."""
    blocks = build_blocks(program)
    new_instrs: List[Instruction] = list(program.instrs)
    for block in blocks:
        alias: Dict[Reg, Reg] = {}
        for i in block.indices():
            instr = new_instrs[i]
            # Rewrite uses through the alias map.
            if alias and any(r in alias for r in instr.uses):
                ops = []
                for role, operand in zip(
                    instr.spec.signature, instr.operands
                ):
                    if role == U and operand in alias:
                        ops.append(alias[operand])
                    else:
                        ops.append(operand)
                instr = instr.with_operands(ops)
                new_instrs[i] = instr
            # Kill aliases broken by this instruction's defs.
            for d in instr.defs:
                alias.pop(d, None)
                for key in [k for k, v in alias.items() if v == d]:
                    del alias[key]
            # Record a fresh copy.
            if instr.opcode is Opcode.MOV:
                d, s = instr.operands
                if d != s:
                    alias[d] = s
    return Program(
        name=program.name, instrs=new_instrs, labels=dict(program.labels)
    )
