"""Dead-code elimination.

Removes instructions that define only dead registers and have no side
effects: ALU operations, ``mov``/``movi`` and ``nop``.  Memory operations,
packet operations, ``ctx``, branches and ``halt`` are never removed (CSBs
shape the thread's scheduling, so even a dead ``load`` stays).

Deletion uses :class:`~repro.cfg.edit.ProgramEditor` semantics in reverse:
instructions are dropped and labels re-anchored to the next surviving
instruction, which is safe because dropped instructions are pure
fallthrough bodies.
"""

from __future__ import annotations

from typing import List, Set

from repro.cfg.liveness import compute_liveness
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.program import Program

#: Opcodes safe to delete when their result is dead.
_PURE = {
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.SHR, Opcode.MUL,
    Opcode.ADDI, Opcode.SUBI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SHLI, Opcode.SHRI, Opcode.MULI,
    Opcode.MOV, Opcode.MOVI, Opcode.NOP,
}


def eliminate_dead_code(program: Program) -> Program:
    """Return a new program without dead pure instructions.

    Iterates internally: removing one dead instruction can kill another.
    ``nop`` instructions are kept when they are a label's only anchor at
    the end of the program.
    """
    current = program
    for _ in range(len(program.instrs) + 1):
        liveness = compute_liveness(current)
        dead: Set[int] = set()
        for i, instr in enumerate(current.instrs):
            if instr.opcode not in _PURE:
                continue
            if instr.opcode is Opcode.NOP:
                if i + 1 < len(current.instrs):
                    dead.add(i)
                continue
            if all(d not in liveness.live_out[i] for d in instr.defs):
                dead.add(i)
        if not dead:
            return current
        new_instrs: List[Instruction] = []
        index_map = {}
        for i, instr in enumerate(current.instrs):
            index_map[i] = len(new_instrs)
            if i not in dead:
                new_instrs.append(instr)
        new_labels = {
            name: index_map[idx] for name, idx in current.labels.items()
        }
        current = Program(
            name=current.name, instrs=new_instrs, labels=new_labels
        )
    return current
