"""Machine-independent optimization passes over npir.

The npc front end emits one temporary per subexpression; these passes
clean that up before register allocation (fewer live ranges, lower
pressure, fewer instructions), and are useful on hand-written code too.

* :func:`~repro.opt.const_fold.fold_constants` -- block-local constant
  propagation and folding (``movi`` + ALU chains become ``movi``; reg-reg
  ALU ops with one known operand become immediate forms).
* :func:`~repro.opt.copy_prop.propagate_copies` -- block-local copy
  propagation through ``mov``.
* :func:`~repro.opt.dead_code.eliminate_dead_code` -- removes side-effect-
  free instructions whose results are dead (never removes CSBs, branches,
  or stores).
* :func:`optimize` -- runs all passes to a fixpoint.

Every pass is semantics-preserving over the simulator's observable
behaviour (stores and sends); the property tests assert it on random
programs.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.opt.algebraic import simplify_algebra
from repro.opt.const_fold import fold_constants
from repro.opt.copy_prop import propagate_copies
from repro.opt.dead_code import eliminate_dead_code

__all__ = [
    "fold_constants",
    "propagate_copies",
    "eliminate_dead_code",
    "simplify_algebra",
    "optimize",
]

#: Upper bound on fixpoint iterations (each pass strictly shrinks or
#: simplifies the program, so this is generous).
_MAX_ROUNDS = 20


def optimize(program: Program) -> Program:
    """Run all passes to a fixpoint; returns a new program."""
    current = program
    for _ in range(_MAX_ROUNDS):
        after = eliminate_dead_code(
            propagate_copies(simplify_algebra(fold_constants(current)))
        )
        if [str(i) for i in after.instrs] == [
            str(i) for i in current.instrs
        ]:
            return after
        current = after
    return current
