"""Algebraic simplification (peephole identities).

Rewrites ALU instructions whose immediate operand makes them trivial:

* ``addi/subi/ori/xori/shli/shri d, a, 0`` -> ``mov d, a``
* ``muli d, a, 1``                         -> ``mov d, a``
* ``muli d, a, 0`` / ``andi d, a, 0``      -> ``movi d, 0``
* ``andi d, a, 0xFFFFFFFF``                -> ``mov d, a``
* ``muli d, a, 2**k``                      -> ``shli d, a, k``
* ``sub d, a, a`` / ``xor d, a, a``        -> ``movi d, 0``

Strictly local, no analysis required; run before copy propagation so the
introduced ``mov``s dissolve.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm
from repro.ir.program import Program

MASK = 0xFFFFFFFF

_ZERO_NEUTRAL = {
    Opcode.ADDI, Opcode.SUBI, Opcode.ORI, Opcode.XORI,
    Opcode.SHLI, Opcode.SHRI,
}


def _simplify(instr: Instruction) -> Optional[Instruction]:
    op = instr.opcode
    if op in _ZERO_NEUTRAL:
        d, a, imm = instr.operands
        if imm.value == 0:  # type: ignore[union-attr]
            return Instruction(Opcode.MOV, (d, a))
    if op is Opcode.MULI:
        d, a, imm = instr.operands
        v = imm.value  # type: ignore[union-attr]
        if v == 1:
            return Instruction(Opcode.MOV, (d, a))
        if v == 0:
            return Instruction(Opcode.MOVI, (d, Imm(0)))
        if v and v & (v - 1) == 0:
            return Instruction(
                Opcode.SHLI, (d, a, Imm(v.bit_length() - 1))
            )
    if op is Opcode.ANDI:
        d, a, imm = instr.operands
        v = imm.value  # type: ignore[union-attr]
        if v == 0:
            return Instruction(Opcode.MOVI, (d, Imm(0)))
        if v == MASK:
            return Instruction(Opcode.MOV, (d, a))
    if op in (Opcode.SUB, Opcode.XOR):
        d, a, b = instr.operands
        if a == b:
            return Instruction(Opcode.MOVI, (d, Imm(0)))
    if op is Opcode.MOV:
        d, s = instr.operands
        if d == s:
            return Instruction(Opcode.NOP, ())
    return None


def simplify_algebra(program: Program) -> Program:
    """Return a new program with trivial ALU forms rewritten."""
    new_instrs: List[Instruction] = []
    for instr in program.instrs:
        replacement = _simplify(instr)
        new_instrs.append(replacement if replacement is not None else instr)
    return Program(
        name=program.name, instrs=new_instrs, labels=dict(program.labels)
    )
