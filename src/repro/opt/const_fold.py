"""Block-local constant propagation and folding.

Within each basic block, registers with a known constant value (from
``movi`` or a folded ALU result) are tracked; instructions whose operands
are all known fold to ``movi``, and reg-reg ALU instructions with a known
*second* operand (or a known first operand of a commutative op) rewrite to
their immediate form.  Conditional branches with known operands are left
alone -- control-flow folding is out of scope and rarely fires on real
kernels.

Block-local only: no values flow across labels or branches, so the pass
needs no dataflow fixpoint and is trivially correct in loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.blocks import build_blocks
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Reg, VirtualReg
from repro.ir.program import Program

MASK = 0xFFFFFFFF

_EVAL = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 31),
    Opcode.SHR: lambda a, b: a >> (b & 31),
    Opcode.MUL: lambda a, b: a * b,
}
_IMM_EVAL = {
    Opcode.ADDI: lambda a, b: a + b,
    Opcode.SUBI: lambda a, b: a - b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SHLI: lambda a, b: a << (b & 31),
    Opcode.SHRI: lambda a, b: a >> (b & 31),
    Opcode.MULI: lambda a, b: a * b,
}
_TO_IMM_FORM = {
    Opcode.ADD: Opcode.ADDI,
    Opcode.SUB: Opcode.SUBI,
    Opcode.AND: Opcode.ANDI,
    Opcode.OR: Opcode.ORI,
    Opcode.XOR: Opcode.XORI,
    Opcode.SHL: Opcode.SHLI,
    Opcode.SHR: Opcode.SHRI,
    Opcode.MUL: Opcode.MULI,
}
_COMMUTATIVE = {Opcode.ADD, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MUL}


def fold_constants(program: Program) -> Program:
    """Return a new program with block-local constants folded."""
    blocks = build_blocks(program)
    new_instrs: List[Instruction] = list(program.instrs)
    for block in blocks:
        known: Dict[Reg, int] = {}
        for i in block.indices():
            instr = new_instrs[i]
            op = instr.opcode
            replaced: Optional[Instruction] = None
            if op is Opcode.MOVI:
                d, imm = instr.operands
                known[d] = imm.value  # type: ignore[union-attr]
                continue
            if op is Opcode.MOV:
                d, s = instr.operands
                if s in known:
                    replaced = Instruction(
                        Opcode.MOVI, (d, Imm(known[s]))
                    )
                    known[d] = known[s]
                else:
                    known.pop(d, None)
                if replaced is not None:
                    new_instrs[i] = replaced
                continue
            if op in _EVAL:
                d, a, b = instr.operands
                if a in known and b in known:
                    value = _EVAL[op](known[a], known[b]) & MASK
                    new_instrs[i] = Instruction(Opcode.MOVI, (d, Imm(value)))
                    known[d] = value
                    continue
                if b in known:
                    new_instrs[i] = Instruction(
                        _TO_IMM_FORM[op], (d, a, Imm(known[b]))
                    )
                elif a in known and op in _COMMUTATIVE:
                    new_instrs[i] = Instruction(
                        _TO_IMM_FORM[op], (d, b, Imm(known[a]))
                    )
                known.pop(d, None)
                continue
            if op in _IMM_EVAL:
                d, a, imm = instr.operands
                if a in known:
                    value = _IMM_EVAL[op](known[a], imm.value) & MASK  # type: ignore[union-attr]
                    new_instrs[i] = Instruction(Opcode.MOVI, (d, Imm(value)))
                    known[d] = value
                    continue
                known.pop(d, None)
                continue
            # Anything else (memory, branches, recv...): kill its defs.
            for d in instr.defs:
                known.pop(d, None)
    return Program(
        name=program.name, instrs=new_instrs, labels=dict(program.labels)
    )
