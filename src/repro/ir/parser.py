"""Parser for the npir textual assembly syntax.

Syntax (one statement per line)::

    ; full-line or trailing comment
    loop:                       ; a label
        movi  %i, 0
        load  %w, [%buf + 4]    ; memory operand sugar for LOAD/STORE
        add   %sum, %sum, %w
        blti  %i, 16, loop
        ctx
        halt

Registers are ``%name`` (virtual) or ``$rN`` (physical).  Immediates are
decimal or ``0x`` hexadecimal, optionally negative (wrapped to 32 bits).
Branch targets are bare identifiers.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import AsmSyntaxError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import D, I, L, MNEMONICS, Opcode, U, spec
from repro.ir.operands import Imm, Label, Operand, PhysReg, VirtualReg
from repro.ir.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*):$")
_VREG_RE = re.compile(r"^%([A-Za-z_.][\w.]*)$")
_PREG_RE = re.compile(r"^\$r(\d+)$")
_IMM_RE = re.compile(r"^-?(0[xX][0-9a-fA-F]+|\d+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_.][\w.]*$")
_MEM_RE = re.compile(
    r"^\[\s*([^\s\]]+)\s*(?:([+-])\s*([^\s\]]+)\s*)?\]$"
)


def _strip_comment(line: str) -> str:
    pos = line.find(";")
    if pos >= 0:
        return line[:pos]
    return line


def _parse_reg(token: str, line_no: int, line: str) -> Operand:
    m = _VREG_RE.match(token)
    if m:
        return VirtualReg(m.group(1))
    m = _PREG_RE.match(token)
    if m:
        return PhysReg(int(m.group(1)))
    raise AsmSyntaxError(f"expected a register, got {token!r}", line_no, line)


def _parse_imm(token: str, line_no: int, line: str) -> Imm:
    if not _IMM_RE.match(token):
        raise AsmSyntaxError(f"expected an immediate, got {token!r}", line_no, line)
    return Imm(int(token, 0))


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are outside brackets."""
    parts: List[str] = []
    depth = 0
    cur = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_mem(token: str, line_no: int, line: str) -> Tuple[Operand, Imm]:
    """Parse ``[%base]``, ``[%base + off]`` or ``[%base - off]``."""
    m = _MEM_RE.match(token)
    if not m:
        raise AsmSyntaxError(
            f"expected a memory operand [reg + imm], got {token!r}", line_no, line
        )
    base = _parse_reg(m.group(1), line_no, line)
    if m.group(3) is None:
        return base, Imm(0)
    off = _parse_imm(m.group(3), line_no, line)
    if m.group(2) == "-":
        off = Imm(-off.value)
    return base, off


def parse_instruction(text: str, line_no: int = 0) -> Instruction:
    """Parse a single instruction (no label, no comment)."""
    stripped = text.strip()
    parts = stripped.split(None, 1)
    mnemonic = parts[0].lower()
    opcode = MNEMONICS.get(mnemonic)
    if opcode is None:
        raise AsmSyntaxError(f"unknown mnemonic {mnemonic!r}", line_no, text)
    rest = parts[1] if len(parts) > 1 else ""
    tokens = _split_operands(rest)

    # Memory-operand sugar: memory ops write as  op reg..., [base + off].
    if opcode in (Opcode.LOAD, Opcode.STORE, Opcode.LOADQ, Opcode.STOREQ):
        n_regs = 4 if opcode in (Opcode.LOADQ, Opcode.STOREQ) else 1
        if len(tokens) != n_regs + 1:
            raise AsmSyntaxError(
                f"{mnemonic} expects {n_regs} registers and '[base + off]'",
                line_no,
                text,
            )
        regs = [_parse_reg(t, line_no, text) for t in tokens[:n_regs]]
        base, off = _parse_mem(tokens[n_regs], line_no, text)
        return Instruction(opcode, (*regs, base, off))

    sig = spec(opcode).signature
    if len(tokens) != len(sig):
        raise AsmSyntaxError(
            f"{mnemonic} expects {len(sig)} operands, got {len(tokens)}",
            line_no,
            text,
        )
    operands: List[Operand] = []
    for role, token in zip(sig, tokens):
        if role in (D, U):
            operands.append(_parse_reg(token, line_no, text))
        elif role == I:
            operands.append(_parse_imm(token, line_no, text))
        elif role == L:
            if not _IDENT_RE.match(token):
                raise AsmSyntaxError(
                    f"expected a label, got {token!r}", line_no, text
                )
            operands.append(Label(token))
    return Instruction(opcode, tuple(operands))


def parse_program(text: str, name: str = "program") -> Program:
    """Parse a full assembly listing into a :class:`Program`.

    Labels may share a line index (several labels before one instruction).
    A label at end-of-file (pointing past the last instruction) is a syntax
    error, as is a completely empty program.
    """
    program = Program(name=name)
    pending_labels: List[Tuple[str, int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        m = _LABEL_RE.match(line)
        if m:
            label = m.group(1)
            if label in program.labels or any(
                label == p[0] for p in pending_labels
            ):
                raise AsmSyntaxError(f"duplicate label {label!r}", line_no, raw)
            pending_labels.append((label, line_no, raw))
            continue
        instr = parse_instruction(line, line_no)
        for label, _, _ in pending_labels:
            program.labels[label] = len(program.instrs)
        pending_labels = []
        program.instrs.append(instr)
    if pending_labels:
        label, line_no, raw = pending_labels[0]
        raise AsmSyntaxError(
            f"label {label!r} points past the last instruction", line_no, raw
        )
    if not program.instrs:
        raise AsmSyntaxError("empty program", 0, "")
    return program
