"""The :class:`Program` container: an ordered instruction list with labels.

A program is one thread's code: a flat list of instructions plus a mapping
from label names to instruction indices.  Labels attach to the instruction
*at* their index (a label at ``len(instrs)`` would be dangling and is
rejected by validation).

Programs are the unit the whole pipeline operates on: the CFG builder, the
allocators and the simulator all take a ``Program``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import PhysReg, Reg, VirtualReg


@dataclass
class Program:
    """A named, single-entry instruction sequence for one thread.

    Attributes:
        name: human-readable program name (used in reports).
        instrs: the instruction list; entry is index 0.
        labels: label name -> instruction index.
    """

    name: str
    instrs: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instrs)

    def label_at(self, index: int) -> Optional[str]:
        """Return a label attached to ``index``, or None."""
        for name, i in self.labels.items():
            if i == index:
                return name
        return None

    def labels_at(self, index: int) -> List[str]:
        """Return all labels attached to ``index`` (sorted for determinism)."""
        return sorted(name for name, i in self.labels.items() if i == index)

    def resolve(self, label: str) -> int:
        """Return the instruction index a label points at."""
        try:
            return self.labels[label]
        except KeyError:
            raise ValidationError(
                f"program {self.name!r}: undefined label {label!r}"
            ) from None

    def target_pcs(self) -> Tuple[Optional[int], ...]:
        """Per-instruction pre-resolved branch targets.

        Entry ``i`` is the integer PC of instruction ``i``'s branch
        target; non-branches get ``None``, and so does a branch whose
        label is undefined (executing it still raises lazily through
        :meth:`resolve`, and :func:`~repro.ir.validate.validate_program`
        rejects it up front).  Engines call this once per run and index
        the result instead of paying a ``resolve`` call on every taken
        branch; the tuple is recomputed on each call so structural
        edits between runs can never serve stale targets.
        """
        labels = self.labels
        return tuple(
            labels.get(instr.target.name) if instr.spec.is_branch else None
            for instr in self.instrs
        )

    def fingerprint(self) -> str:
        """Stable content hash of the program (a sha256 hex digest).

        Two programs share a fingerprint exactly when their name, label
        table, and full instruction stream (opcode plus every operand,
        in order) coincide -- the same identity the binary encoding
        (:mod:`repro.ir.encoding`) captures, extended to virtual-register
        programs so pre-allocation artifacts can be content-addressed.
        Any instruction, operand, or label mutation therefore changes the
        digest, while parse -> print -> parse round trips preserve it.

        Like :meth:`target_pcs`, the digest is recomputed on each call so
        structural edits between calls can never serve a stale identity.
        """
        h = hashlib.sha256()
        h.update(self.name.encode())
        for label, index in sorted(self.labels.items()):
            h.update(b"\x1eL")
            h.update(label.encode())
            h.update(b"\x1f")
            h.update(str(index).encode())
        for instr in self.instrs:
            h.update(b"\x1eI")
            h.update(instr.opcode.name.encode())
            for op in instr.operands:
                h.update(b"\x1f")
                h.update(type(op).__name__.encode())
                h.update(b"\x1f")
                h.update(str(op).encode())
        return h.hexdigest()

    def successors(self, index: int) -> Tuple[int, ...]:
        """Instruction-level control-flow successors of instruction ``index``.

        Fallthrough goes to ``index + 1``; a fallthrough off the end of the
        program is rejected by validation, so it is not produced here.
        """
        instr = self.instrs[index]
        s = instr.spec
        if s.is_halt:
            return ()
        if s.is_branch:
            target = self.resolve(instr.target.name)
            if s.is_cond:
                return (index + 1, target)
            return (target,)
        return (index + 1,)

    def virtual_regs(self) -> Set[VirtualReg]:
        """The set of virtual registers referenced anywhere in the program."""
        out: Set[VirtualReg] = set()
        for instr in self.instrs:
            for reg in instr.regs:
                if isinstance(reg, VirtualReg):
                    out.add(reg)
        return out

    def phys_regs(self) -> Set[PhysReg]:
        """The set of physical registers referenced anywhere in the program."""
        out: Set[PhysReg] = set()
        for instr in self.instrs:
            for reg in instr.regs:
                if isinstance(reg, PhysReg):
                    out.add(reg)
        return out

    def count_opcode(self, opcode: Opcode) -> int:
        """Number of instructions with the given opcode."""
        return sum(1 for instr in self.instrs if instr.opcode == opcode)

    def count_csb(self) -> int:
        """Number of context-switch-boundary instructions."""
        return sum(1 for instr in self.instrs if instr.is_csb)

    def fresh_label(self, stem: str) -> str:
        """Return a label name based on ``stem`` not yet used in the program."""
        if stem not in self.labels:
            return stem
        i = 1
        while f"{stem}.{i}" in self.labels:
            i += 1
        return f"{stem}.{i}"

    def fresh_vreg(self, stem: str) -> VirtualReg:
        """Return a virtual register named after ``stem`` not yet referenced."""
        existing = {r.name for r in self.virtual_regs()}
        if stem not in existing:
            return VirtualReg(stem)
        i = 1
        while f"{stem}.{i}" in existing:
            i += 1
        return VirtualReg(f"{stem}.{i}")

    def copy(self) -> "Program":
        """Return a shallow-ish copy safe to mutate structurally."""
        return Program(self.name, list(self.instrs), dict(self.labels))
