"""Textual rendering of instructions and programs.

``parse_program(format_program(p))`` reproduces ``p`` exactly (labels are
re-attached at the same indices), which the round-trip tests rely on.
"""

from __future__ import annotations

from typing import List

from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.program import Program


def format_instruction(instr: Instruction) -> str:
    """Render one instruction in canonical npir syntax."""
    mnemonic = instr.opcode.value
    if instr.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.LOADQ, Opcode.STOREQ):
        *regs, base, off = instr.operands
        regs_text = ", ".join(str(r) for r in regs)
        if off.value == 0:  # type: ignore[union-attr]
            return f"{mnemonic} {regs_text}, [{base}]"
        return f"{mnemonic} {regs_text}, [{base} + {off}]"
    if not instr.operands:
        return mnemonic
    ops = ", ".join(str(op) for op in instr.operands)
    return f"{mnemonic} {ops}"


def format_program(program: Program) -> str:
    """Render a whole program, labels included."""
    lines: List[str] = []
    for index, instr in enumerate(program.instrs):
        for label in program.labels_at(index):
            lines.append(f"{label}:")
        lines.append(f"    {format_instruction(instr)}")
    return "\n".join(lines) + "\n"
