"""Binary encoding of npir programs (the assembler's last step).

The paper's toolchain ends with an assembler producing micro-engine
machine code; this module is that step for npir.  Physical-register
programs encode to a stream of 64-bit words:

* bits 63..56 -- opcode ordinal;
* bits 55..16 -- five 8-bit register fields in signature order (unused
  fields are zero);
* bits 15..14 -- extension-word count (0..2);
* bits 13..0  -- an inline payload for instructions with exactly one
  small immediate / branch target.

An instruction has up to two *payloads* (an immediate and/or a branch
target, e.g. ``beqi reg, imm, label``).  A single payload below 2**14 is
stored inline; anything else moves to one 64-bit extension word per
payload, in signature order.  Branch targets are encoded as absolute
instruction indices; decoding reconstructs labels (``L<index>``) at
branch targets, so ``decode_program(encode_program(p))`` reproduces ``p``
up to label names -- asserted structurally by :func:`same_code`.

Virtual registers cannot be encoded (machine code exists only after
register allocation); :func:`encode_program` rejects them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import ValidationError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import D, I, L, Opcode, U, spec
from repro.ir.operands import Imm, Label, PhysReg, VirtualReg
from repro.ir.program import Program

#: Stable opcode numbering (enum definition order).
_OPCODE_LIST: List[Opcode] = list(Opcode)
_OPCODE_INDEX: Dict[Opcode, int] = {op: i for i, op in enumerate(_OPCODE_LIST)}

_EXT_SHIFT = 14
_INLINE_MAX = (1 << 14) - 1
_MAX_REG_FIELDS = 5


def encode_instruction(
    instr: Instruction, resolve: Dict[str, int]
) -> List[int]:
    """Encode one instruction to one to three 64-bit words."""
    regs: List[int] = []
    payloads: List[int] = []
    for role, op in zip(instr.spec.signature, instr.operands):
        if role in (D, U):
            if isinstance(op, VirtualReg):
                raise ValidationError(
                    f"cannot encode virtual register {op}; allocate first"
                )
            assert isinstance(op, PhysReg)
            if not 0 <= op.index < 256:
                raise ValidationError(f"register {op} exceeds 8-bit field")
            regs.append(op.index)
        elif role == I:
            assert isinstance(op, Imm)
            payloads.append(op.value)
        elif role == L:
            assert isinstance(op, Label)
            payloads.append(resolve[op.name])
    if len(regs) > _MAX_REG_FIELDS:
        raise ValidationError(
            f"{instr.opcode} has {len(regs)} register operands; "
            f"encoding supports {_MAX_REG_FIELDS}"
        )
    regs += [0] * (_MAX_REG_FIELDS - len(regs))

    word = _OPCODE_INDEX[instr.opcode] << 56
    for k, r in enumerate(regs):
        word |= r << (48 - 8 * k)
    if not payloads:
        return [word]
    if len(payloads) == 1 and payloads[0] <= _INLINE_MAX:
        return [word | payloads[0]]
    word |= len(payloads) << _EXT_SHIFT
    return [word, *payloads]


def encode_program(program: Program) -> List[int]:
    """Encode a validated physical-register program to 64-bit words."""
    resolve = dict(program.labels)
    words: List[int] = []
    for instr in program.instrs:
        words.extend(encode_instruction(instr, resolve))
    return words


def _decode_one(words: List[int], pos: int) -> Tuple[Instruction, int]:
    """Decode one instruction starting at ``words[pos]``.

    Returns (instruction, words consumed); branch targets are temporarily
    encoded as ``Label(str(index))``.
    """
    word = words[pos]
    op_index = (word >> 56) & 0xFF
    try:
        opcode = _OPCODE_LIST[op_index]
    except IndexError:
        raise ValidationError(f"unknown opcode ordinal {op_index}") from None
    sig = spec(opcode).signature
    n_ext = (word >> _EXT_SHIFT) & 0b11
    if n_ext:
        payloads = [words[pos + 1 + k] for k in range(n_ext)]
    else:
        payloads = [word & _INLINE_MAX]
    consumed = 1 + n_ext

    operands = []
    reg_slot = 0
    payload_slot = 0
    for role in sig:
        if role in (D, U):
            index = (word >> (48 - 8 * reg_slot)) & 0xFF
            reg_slot += 1
            operands.append(PhysReg(index))
        elif role == I:
            operands.append(Imm(payloads[payload_slot]))
            payload_slot += 1
        elif role == L:
            operands.append(Label(str(payloads[payload_slot])))
            payload_slot += 1
    return Instruction(opcode, tuple(operands)), consumed


def decode_program(words: List[int], name: str = "decoded") -> Program:
    """Decode a word stream back into a :class:`Program`.

    Labels are synthesized as ``L<index>`` at every branch target.
    """
    instrs: List[Instruction] = []
    pos = 0
    while pos < len(words):
        instr, consumed = _decode_one(words, pos)
        instrs.append(instr)
        pos += consumed

    targets = set()
    for instr in instrs:
        if instr.spec.is_branch:
            targets.add(int(instr.target.name))
    labels = {f"L{t}": t for t in sorted(targets)}
    fixed: List[Instruction] = []
    for instr in instrs:
        if instr.spec.is_branch:
            t = int(instr.target.name)
            instr = instr.with_operands(
                tuple(
                    Label(f"L{t}") if isinstance(op, Label) else op
                    for op in instr.operands
                )
            )
        fixed.append(instr)
    program = Program(name=name, instrs=fixed, labels=labels)
    for t in targets:
        if not 0 <= t < len(fixed):
            raise ValidationError(f"branch target {t} out of range")
    return program


def same_code(a: Program, b: Program) -> bool:
    """Structural equality up to label naming: same opcodes, registers,
    immediates, and branch-target *indices*."""
    if len(a.instrs) != len(b.instrs):
        return False
    for ia, ib in zip(a.instrs, b.instrs):
        if ia.opcode != ib.opcode:
            return False
        for role, oa, ob in zip(ia.spec.signature, ia.operands, ib.operands):
            if role == L:
                if a.resolve(oa.name) != b.resolve(ob.name):  # type: ignore[union-attr]
                    return False
            elif oa != ob:
                return False
    return True


def code_size_bytes(program: Program) -> int:
    """Encoded size in bytes (words are 64-bit)."""
    return 8 * len(encode_program(program))
