"""The :class:`Instruction` value type.

An instruction is an opcode plus a tuple of operands matching the opcode's
signature.  Defs and uses are derived from the signature, so analyses never
need opcode-specific cases.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Tuple

from repro.errors import ValidationError
from repro.ir.opcodes import D, I, L, Opcode, OpSpec, U, spec
from repro.ir.operands import Imm, Label, Operand, Reg, is_reg


@dataclass(frozen=True)
class Instruction:
    """One npir instruction: an opcode and its operands.

    Instances are immutable; rewriting passes build new instructions with
    :meth:`with_operands` or :func:`dataclasses.replace`.
    """

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        sig = self.spec.signature
        if len(sig) != len(self.operands):
            raise ValidationError(
                f"{self.opcode} expects {len(sig)} operands, "
                f"got {len(self.operands)}"
            )
        for role, op in zip(sig, self.operands):
            if role in (D, U) and not is_reg(op):
                raise ValidationError(
                    f"{self.opcode}: operand {op!r} must be a register"
                )
            if role == I and not isinstance(op, Imm):
                raise ValidationError(
                    f"{self.opcode}: operand {op!r} must be an immediate"
                )
            if role == L and not isinstance(op, Label):
                raise ValidationError(
                    f"{self.opcode}: operand {op!r} must be a label"
                )

    @property
    def spec(self) -> OpSpec:
        return spec(self.opcode)

    @property
    def defs(self) -> Tuple[Reg, ...]:
        """Registers written by this instruction."""
        sig = self.spec.signature
        return tuple(
            op for role, op in zip(sig, self.operands) if role == D  # type: ignore[misc]
        )

    @property
    def uses(self) -> Tuple[Reg, ...]:
        """Registers read by this instruction."""
        sig = self.spec.signature
        return tuple(
            op for role, op in zip(sig, self.operands) if role == U  # type: ignore[misc]
        )

    @property
    def regs(self) -> Tuple[Reg, ...]:
        """All register operands, defs first."""
        return self.defs + self.uses

    @property
    def target(self) -> Label:
        """The branch-target label (branches only)."""
        if not self.spec.is_branch:
            raise ValidationError(f"{self.opcode} has no branch target")
        for op in self.operands:
            if isinstance(op, Label):
                return op
        raise ValidationError(f"{self.opcode} is missing its label operand")

    @property
    def is_csb(self) -> bool:
        """True when this instruction is a context-switch boundary."""
        return self.spec.is_csb

    def with_operands(self, operands: Iterable[Operand]) -> "Instruction":
        """Return a copy with ``operands`` substituted."""
        return replace(self, operands=tuple(operands))

    def substitute_regs(self, mapping: Dict[Reg, Reg]) -> "Instruction":
        """Return a copy with register operands remapped through ``mapping``.

        Registers absent from ``mapping`` are kept unchanged.
        """
        new_ops = tuple(
            mapping.get(op, op) if is_reg(op) else op for op in self.operands
        )
        if new_ops == self.operands:
            return self
        return self.with_operands(new_ops)

    def __str__(self) -> str:
        from repro.ir.printer import format_instruction

        return format_instruction(self)
