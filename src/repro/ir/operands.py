"""Operand value types for npir instructions.

Operands are small immutable value objects:

* :class:`VirtualReg` -- a named virtual register (``%sum``) produced by the
  front end and consumed by the register allocator.
* :class:`PhysReg` -- a physical register (``$r7``) in the micro-engine's
  shared general-purpose register file.
* :class:`Imm` -- a 32-bit immediate constant (values are wrapped modulo
  2**32 at construction so arithmetic in the simulator stays closed).
* :class:`Label` -- a branch target by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

MASK32 = 0xFFFFFFFF


@dataclass(frozen=True, order=True)
class VirtualReg:
    """A named virtual register, e.g. ``%sum``.

    Registers key the allocator's hottest dicts and sort orders, so the
    hash and string form are computed once at construction.  Both cache
    the exact values the generated methods would produce -- hash-bucket
    and ``str``-sort orders (and therefore every allocator decision)
    are unchanged.
    """

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.name,)))
        object.__setattr__(self, "_str", f"%{self.name}")

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self._str


@dataclass(frozen=True, order=True)
class PhysReg:
    """A physical GPR by index, e.g. ``$r7``.

    Hash and string form are precomputed like :class:`VirtualReg`'s.
    """

    index: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.index,)))
        object.__setattr__(self, "_str", f"$r{self.index}")

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self._str


@dataclass(frozen=True, order=True)
class Imm:
    """A 32-bit immediate constant."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & MASK32)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, order=True)
class Label:
    """A branch-target label by name."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Any register operand.
Reg = Union[VirtualReg, PhysReg]

#: Any operand.
Operand = Union[VirtualReg, PhysReg, Imm, Label]


def is_reg(op: object) -> bool:
    """True when ``op`` is a (virtual or physical) register operand."""
    return isinstance(op, (VirtualReg, PhysReg))
