"""The npir instruction set.

The set mirrors the flavour of IXP1200 microcode (about 40 RISC
instructions): single-cycle ALU operations, explicit memory operations that
block the issuing thread and hand the processing unit to another thread, and
a voluntary context-switch instruction.

Each opcode is described by an :class:`OpSpec` giving its operand signature
and its scheduling class.  The signature is a tuple of operand *roles*:

``D``
    a register the instruction writes (a *def*),
``U``
    a register the instruction reads (a *use*),
``I``
    an immediate constant,
``L``
    a branch-target label.

Scheduling classes (mutually exclusive flags on the spec):

* ``is_memory`` -- the instruction accesses SRAM or a packet queue; issuing
  it blocks the thread for the machine's memory latency and causes a context
  switch (these instructions are *context-switch boundaries*, CSBs).
* ``is_ctx`` -- the voluntary ``ctx`` instruction; also a CSB.
* ``is_branch`` -- transfers control; ``is_cond`` marks the conditional ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

# Operand role characters used in signatures.
D, U, I, L = "D", "U", "I", "L"


class Opcode(enum.Enum):
    """Enumeration of every npir opcode."""

    # ALU, register-register.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"
    # ALU, register-immediate.
    ADDI = "addi"
    SUBI = "subi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    MULI = "muli"
    # Data movement.
    MOV = "mov"
    MOVI = "movi"
    NOP = "nop"
    # Memory (SRAM) -- context-switch boundaries.  The Q forms are burst
    # accesses (IXP SRAM reads/writes up to 8 words per reference through
    # transfer registers); they move four words in one blocking access.
    LOAD = "load"
    STORE = "store"
    LOADQ = "loadq"
    STOREQ = "storeq"
    # Packet queues -- context-switch boundaries.
    RECV = "recv"
    SEND = "send"
    # Control flow.
    BR = "br"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BEQI = "beqi"
    BNEI = "bnei"
    BLTI = "blti"
    BGEI = "bgei"
    # Voluntary context switch and termination.
    CTX = "ctx"
    HALT = "halt"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode.

    Attributes:
        signature: operand roles in source order (see module docstring).
        is_branch: instruction may transfer control to a label.
        is_cond: branch is conditional (falls through when untaken).
        is_memory: SRAM or packet-queue access (blocking, CSB).
        is_ctx: the voluntary context switch (CSB).
        is_halt: terminates the thread.
    """

    signature: Tuple[str, ...]
    is_branch: bool = False
    is_cond: bool = False
    is_memory: bool = False
    is_ctx: bool = False
    is_halt: bool = False

    @property
    def is_csb(self) -> bool:
        """True when the instruction is a context-switch boundary."""
        return self.is_memory or self.is_ctx

    @property
    def n_defs(self) -> int:
        return sum(1 for r in self.signature if r == D)

    @property
    def n_uses(self) -> int:
        return sum(1 for r in self.signature if r == U)


def _alu_rr() -> OpSpec:
    return OpSpec(signature=(D, U, U))


def _alu_ri() -> OpSpec:
    return OpSpec(signature=(D, U, I))


SPECS: Dict[Opcode, OpSpec] = {
    Opcode.ADD: _alu_rr(),
    Opcode.SUB: _alu_rr(),
    Opcode.AND: _alu_rr(),
    Opcode.OR: _alu_rr(),
    Opcode.XOR: _alu_rr(),
    Opcode.SHL: _alu_rr(),
    Opcode.SHR: _alu_rr(),
    Opcode.MUL: _alu_rr(),
    Opcode.ADDI: _alu_ri(),
    Opcode.SUBI: _alu_ri(),
    Opcode.ANDI: _alu_ri(),
    Opcode.ORI: _alu_ri(),
    Opcode.XORI: _alu_ri(),
    Opcode.SHLI: _alu_ri(),
    Opcode.SHRI: _alu_ri(),
    Opcode.MULI: _alu_ri(),
    Opcode.MOV: OpSpec(signature=(D, U)),
    Opcode.MOVI: OpSpec(signature=(D, I)),
    Opcode.NOP: OpSpec(signature=()),
    # load dst, [base + off]
    Opcode.LOAD: OpSpec(signature=(D, U, I), is_memory=True),
    # store src, [base + off]
    Opcode.STORE: OpSpec(signature=(U, U, I), is_memory=True),
    # loadq d0, d1, d2, d3, [base + off] : di <- mem[base + off + i]
    Opcode.LOADQ: OpSpec(signature=(D, D, D, D, U, I), is_memory=True),
    # storeq s0, s1, s2, s3, [base + off] : mem[base + off + i] <- si
    Opcode.STOREQ: OpSpec(signature=(U, U, U, U, U, I), is_memory=True),
    # recv dst : dst <- address of next packet buffer, 0 when queue empty
    Opcode.RECV: OpSpec(signature=(D,), is_memory=True),
    # send src : enqueue the packet whose buffer address is in src
    Opcode.SEND: OpSpec(signature=(U,), is_memory=True),
    Opcode.BR: OpSpec(signature=(L,), is_branch=True),
    Opcode.BEQ: OpSpec(signature=(U, U, L), is_branch=True, is_cond=True),
    Opcode.BNE: OpSpec(signature=(U, U, L), is_branch=True, is_cond=True),
    Opcode.BLT: OpSpec(signature=(U, U, L), is_branch=True, is_cond=True),
    Opcode.BGE: OpSpec(signature=(U, U, L), is_branch=True, is_cond=True),
    Opcode.BEQI: OpSpec(signature=(U, I, L), is_branch=True, is_cond=True),
    Opcode.BNEI: OpSpec(signature=(U, I, L), is_branch=True, is_cond=True),
    Opcode.BLTI: OpSpec(signature=(U, I, L), is_branch=True, is_cond=True),
    Opcode.BGEI: OpSpec(signature=(U, I, L), is_branch=True, is_cond=True),
    Opcode.CTX: OpSpec(signature=(), is_ctx=True),
    Opcode.HALT: OpSpec(signature=(), is_halt=True),
}

#: Map from mnemonic text to opcode, used by the parser.
MNEMONICS: Dict[str, Opcode] = {op.value: op for op in Opcode}


def spec(op: Opcode) -> OpSpec:
    """Return the :class:`OpSpec` for ``op``."""
    return SPECS[op]
