"""Structural validation of npir programs.

:func:`validate_program` checks the rules every later pass assumes:

* all branch targets resolve to an in-range instruction;
* no label points outside the instruction list;
* control flow cannot fall off the end of the program;
* register operands are uniformly virtual or uniformly physical (a mixed
  program would confuse the allocator and the simulator);
* every virtual register is defined on every path before each use
  (a dataflow check, so uninitialised reads never reach the simulator).
"""

from __future__ import annotations

from typing import Set

from repro.errors import ValidationError
from repro.ir.operands import PhysReg, VirtualReg
from repro.ir.program import Program


def validate_program(program: Program, check_init: bool = True) -> None:
    """Raise :class:`ValidationError` on any structural problem."""
    n = len(program.instrs)
    if n == 0:
        raise ValidationError(f"program {program.name!r} is empty")
    for label, index in program.labels.items():
        if not 0 <= index < n:
            raise ValidationError(
                f"program {program.name!r}: label {label!r} points at "
                f"{index}, outside [0, {n})"
            )
    for index, instr in enumerate(program.instrs):
        if instr.spec.is_branch:
            program.resolve(instr.target.name)  # raises when undefined
        terminal = instr.spec.is_halt or (
            instr.spec.is_branch and not instr.spec.is_cond
        )
        if index == n - 1 and not terminal:
            raise ValidationError(
                f"program {program.name!r}: control falls off the end "
                f"(last instruction is {instr.opcode})"
            )

    has_virtual = any(
        isinstance(r, VirtualReg) for i in program.instrs for r in i.regs
    )
    has_phys = any(
        isinstance(r, PhysReg) for i in program.instrs for r in i.regs
    )
    if has_virtual and has_phys:
        raise ValidationError(
            f"program {program.name!r} mixes virtual and physical registers"
        )

    if check_init and has_virtual:
        _check_defined_before_use(program)


def _check_defined_before_use(program: Program) -> None:
    """Forward may-be-uninitialised analysis over virtual registers."""
    n = len(program.instrs)
    all_regs = program.virtual_regs()
    # maybe_undef[i]: registers possibly uninitialised before instruction i.
    maybe_undef = [set(all_regs) if i == 0 else None for i in range(n)]
    worklist = [0]
    while worklist:
        i = worklist.pop()
        cur: Set[VirtualReg] = maybe_undef[i]  # type: ignore[assignment]
        instr = program.instrs[i]
        out = cur - set(instr.defs)
        for succ in program.successors(i):
            prev = maybe_undef[succ]
            if prev is None:
                maybe_undef[succ] = set(out)
                worklist.append(succ)
            elif not out <= prev:
                prev |= out
                worklist.append(succ)
    for i, instr in enumerate(program.instrs):
        state = maybe_undef[i]
        if state is None:
            continue  # unreachable code: nothing to check
        for reg in instr.uses:
            if isinstance(reg, VirtualReg) and reg in state:
                raise ValidationError(
                    f"program {program.name!r}: {reg} may be read "
                    f"uninitialised at instruction {i} ({instr.opcode})"
                )
