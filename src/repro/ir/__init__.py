"""npir: the network-processor intermediate representation.

A small RISC-style assembly language modelled on the Intel IXP micro-engine
instruction set: one-cycle ALU operations over 32-bit registers, explicit
long-latency memory / packet-queue operations that relinquish the processing
unit, and a voluntary ``ctx`` context-switch instruction.

Public surface:

* :mod:`repro.ir.opcodes` -- the instruction set table.
* :mod:`repro.ir.operands` -- ``VirtualReg`` / ``PhysReg`` / ``Imm`` / ``Label``.
* :mod:`repro.ir.instruction` -- the :class:`Instruction` value type.
* :mod:`repro.ir.program` -- :class:`Program`, an ordered instruction list
  with label resolution.
* :mod:`repro.ir.parser` / :mod:`repro.ir.printer` -- text round-trip.
* :mod:`repro.ir.validate` -- structural validation.
"""

from repro.ir.opcodes import Opcode, OpSpec, SPECS
from repro.ir.operands import Imm, Label, PhysReg, Reg, VirtualReg
from repro.ir.instruction import Instruction
from repro.ir.program import Program
from repro.ir.parser import parse_program
from repro.ir.printer import format_instruction, format_program
from repro.ir.validate import validate_program
from repro.ir.encoding import decode_program, encode_program

__all__ = [
    "Opcode",
    "OpSpec",
    "SPECS",
    "Reg",
    "VirtualReg",
    "PhysReg",
    "Imm",
    "Label",
    "Instruction",
    "Program",
    "parse_program",
    "format_instruction",
    "format_program",
    "validate_program",
    "encode_program",
    "decode_program",
]
