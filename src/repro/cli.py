"""Command-line interface: ``python -m repro <command> ...``.

Commands:

``analyze FILE...``
    Per-thread analysis report: NSRs, boundary/internal classification,
    register-need bounds.
``allocate FILE... [--nreg N] [-o DIR]``
    Run the cross-thread allocator; print the summary and (optionally)
    write the rewritten assembly per thread into DIR.
``run FILE... [--nreg N] [--packets P] [--allocated] [--engine E]``
    Simulate the threads over synthetic packet queues.  With
    ``--allocated`` the programs are first register-allocated, executed
    under the paranoid safety checker, and verified against the
    virtual-register reference run.
``profile FILE... [--nreg N] [--packets P] [--json OUT] [--engine E]``
    Allocate (and simulate) under full telemetry; print per-phase wall
    times, allocator decision counts, and simulator cycle accounting.
``encode FILE [-o OUT]``
    Assemble an allocated (physical-register) program to 64-bit machine
    words (hex, one per line).
``bench {table1,table2,table3,fig14,perf,batch,alloc,analysis,fabric,trend} [--engine E]``
    Regenerate one of the paper's tables/figures, or the engine
    (``perf``) / batched-lockstep (``batch``) / allocation-pipeline
    (``alloc``, including the shared-descent budget sweep: one Figure-8
    descent per kernel answers every register budget) / cold-analysis
    (``analysis``) / sweep-fabric (``fabric``: serial vs process pool
    vs the durable content-addressed fabric) throughput comparisons.
    Every measuring experiment
    appends a row to the run ledger (``--ledger PATH``, default
    ``$REPRO_LEDGER`` or ``benchmarks/out/ledger.jsonl``); ``trend``
    reads the ledger plus the committed ``BENCH_*.json`` snapshots and
    renders the watched-metric trajectory report -- with ``--gate`` it
    exits non-zero when a watched metric (sim speedup, warm-alloc
    speedup, analysis speedup, cycle counts) regressed beyond the
    noise-aware ``--threshold`` percentage.

``run``, ``profile``, ``bench``, and ``chaos`` accept ``--engine
{auto,fast,reference,batch}`` to pick the execution engine
(``docs/PERFORMANCE.md``); the default ``auto`` uses the pre-decoded
fast engine except for runs needing reference-only features (tracing,
timelines, the paranoid checker, an active telemetry capture).
``batch`` is the numpy lockstep engine: seed sweeps become one
vectorized run (``repro.sim.run.run_seed_sweep``); flags that force a
reference-only feature (e.g. ``run --allocated``) reject it with an
error naming the forcing flag.
``profile`` and ``bench`` also accept ``--jobs N`` (parallel sweep /
analysis workers), ``--cache-dir DIR`` (persist the analysis cache
on disk, also settable via ``REPRO_CACHE_DIR``), and ``--fabric DIR``
(route parallel sweeps through a durable, resumable run directory
under DIR, also settable via ``REPRO_FABRIC_DIR`` -- a killed run
re-executes only its missing items); all default to the serial,
in-memory behavior.  See "Allocator performance" in
``docs/PERFORMANCE.md`` and ``docs/FABRIC.md``.
``analyze``, ``allocate``, ``profile``, and ``bench`` accept
``--analysis-impl {dense,reference}`` to pick the analysis kernel
implementation ("Cold-path analysis kernel" in
``docs/PERFORMANCE.md``); results are bit-identical either way, so the
flag exists for benchmarking and differential testing.  The default is
``dense``, or ``$REPRO_ANALYSIS`` when set.
``chaos [--kernels a,b,c] [--scenarios x,y] [--seed N] [--json OUT]``
    Run the fault-injection chaos harness (``docs/ROBUSTNESS.md``):
    every scenario must end masked-by-policy or as a typed error, with
    the independent verifier clean on masked allocations; exits
    non-zero when the gate fails.
``fabric {run,resume,status,merge} DIR``
    Drive a content-addressed sweep run directory directly
    (``docs/FABRIC.md``): ``run`` plans the allocperf suite x budget
    grid into DIR (or resumes it when a manifest already exists) and
    executes it with ``--workers N``; ``resume`` insists the manifest
    exists and finishes only the missing items; ``status`` prints the
    JSON progress snapshot; ``merge`` folds the spool into
    submission-ordered results.  Several hosts may point ``fabric run``
    at one shared DIR; stale claims (dead pid, or older than ``--ttl``)
    are stolen.
``serve [--port N] [--workers W] [--queue-depth D] [--store-dir DIR]``
    Run the allocation service (``docs/SERVICE.md``): a hardened HTTP
    frontend over the pipeline with bounded admission (typed 429 +
    ``Retry-After``), request coalescing, a content-addressed result
    store, per-subsystem circuit breakers, health/readiness endpoints,
    and graceful SIGTERM drain (``--ledger PATH`` appends a run-ledger
    row on the way out).  ``--port 0`` picks a free port and prints it.
``suite``
    List the built-in benchmark kernels with basic properties.

``analyze``, ``allocate``, ``run``, ``bench``, and ``chaos``
additionally accept ``--metrics OUT.json`` (combined telemetry
snapshot: phase timings, inter-allocator step trace, simulator cycle
accounting, metric counters), ``--trace-json OUT.jsonl`` (the raw
structured event log, one JSON object per line), ``--prom OUT.prom``
(the metric registry in Prometheus text exposition format), and
``--trace-chrome OUT.json`` (the span tree as Chrome trace-event JSON,
loadable in Perfetto).  See ``docs/OBSERVABILITY.md`` for the schemas.

Files are npir assembly; the special name ``bench:<name>`` loads a
built-in benchmark instead (e.g. ``bench:md5``).
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
from typing import Iterator, List, Optional, Sequence

from repro.core.analysis import analyze_thread
from repro.core.bounds import estimate_bounds
from repro.core.pipeline import allocate_programs
from repro.errors import EngineError
from repro.obs import events as obs
from repro.ir.encoding import encode_program
from repro.ir.parser import parse_program
from repro.ir.printer import format_program
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.sim.engine import ENGINES
from repro.sim.run import outputs_match, run_reference, run_threads
from repro.suite.registry import BENCHMARKS, load


def _load_program(spec: str) -> Program:
    if spec.startswith("bench:"):
        return load(spec[len("bench:"):])
    path = pathlib.Path(spec)
    if path.suffix == ".npc":
        from repro.npc import compile_source

        return compile_source(path.read_text(), path.stem)
    program = parse_program(path.read_text(), path.stem)
    validate_program(program)
    return program


def _load_all(specs: Sequence[str]) -> List[Program]:
    return [_load_program(s) for s in specs]


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace) -> Iterator[None]:
    """Capture telemetry around a command when any of ``--metrics``,
    ``--trace-json``, ``--prom``, or ``--trace-chrome`` was given;
    write the files on the way out."""
    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace_json", None)
    prom_path = getattr(args, "prom", None)
    chrome_path = getattr(args, "trace_chrome", None)
    if not metrics_path and not trace_path and not prom_path \
            and not chrome_path:
        yield
        return
    from repro.obs import events, metrics
    from repro.obs.export import (
        run_snapshot,
        write_chrome_trace,
        write_json,
        write_jsonl,
        write_prometheus,
    )

    try:
        with metrics.scoped() as registry, events.capture() as emitter:
            yield
    finally:
        # Write even when the command aborted (broken pipe, allocation
        # failure): the partial trace shows what happened up to the error.
        if trace_path:
            out = write_jsonl(
                trace_path, (e.to_dict() for e in emitter.events)
            )
            print(
                f"wrote {len(emitter.events)} events to {out}",
                file=sys.stderr,
            )
        if metrics_path:
            out = write_json(metrics_path, run_snapshot(emitter, registry))
            print(f"wrote telemetry snapshot to {out}", file=sys.stderr)
        if prom_path:
            out = write_prometheus(prom_path, registry.snapshot())
            print(f"wrote Prometheus metrics to {out}", file=sys.stderr)
        if chrome_path:
            out = write_chrome_trace(chrome_path, emitter)
            print(f"wrote Chrome trace to {out}", file=sys.stderr)


def cmd_analyze(args: argparse.Namespace) -> int:
    _apply_analysis_impl(args)
    for spec in args.files:
        program = _load_program(spec)
        with obs.span("analyze", program=program.name):
            analysis = analyze_thread(program)
            bounds = estimate_bounds(analysis)
        print(f"== {program.name} ==")
        print(f"instructions:        {len(program.instrs)}")
        csb = program.count_csb()
        print(
            f"CSB instructions:    {csb} "
            f"({100.0 * csb / len(program.instrs):.1f}%)"
        )
        print(f"live ranges:         {len(analysis.all_regs)}")
        print(f"non-switch regions:  {analysis.nsr.n_regions}")
        print(f"avg region size:     {analysis.nsr.average_region_size():.1f}")
        print(f"boundary ranges:     {len(analysis.nsr.boundary)}")
        print(f"internal ranges:     {len(analysis.nsr.internal)}")
        print(f"bounds:              {bounds}")
        if args.chart:
            from repro.harness.describe import live_range_chart

            print()
            print(live_range_chart(analysis))
        if args.nsr:
            from repro.harness.describe import nsr_map

            print()
            print(nsr_map(analysis))
        print()
    return 0


def cmd_allocate(args: argparse.Namespace) -> int:
    _apply_analysis_impl(args)
    programs = _load_all(args.files)
    outcome = allocate_programs(programs, nreg=args.nreg)
    print(outcome.summary())
    if args.output:
        out_dir = pathlib.Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        for tid, program in enumerate(outcome.programs):
            path = out_dir / f"{tid}_{program.name}.npir"
            path.write_text(format_program(program))
            print(f"wrote {path}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    programs = _load_all(args.files)
    engine = args.engine
    if args.allocated:
        if engine in ("fast", "batch"):
            print(
                _engine_conflict(
                    "--allocated", engine, "the paranoid safety checker"
                ),
                file=sys.stderr,
            )
            return 2
        outcome = allocate_programs(programs, nreg=args.nreg)
        result = run_threads(
            outcome.programs,
            packets_per_thread=args.packets,
            nreg=args.nreg,
            assignment=outcome.assignment,
            engine=engine,
        )
        reference = run_reference(
            programs, packets_per_thread=args.packets, engine=engine
        )
        verified = outputs_match(reference, result)
        print(f"allocated run verified against reference: {verified}")
        if not verified:
            return 1
    else:
        result = run_threads(
            programs,
            packets_per_thread=args.packets,
            nreg=args.nreg,
            engine=engine,
        )
    stats = result.stats
    print(f"cycles: {stats.cycles}  utilization: {stats.utilization():.0%}")
    for tid, t in enumerate(stats.threads):
        print(
            f"  thread {tid} ({programs[tid].name}): "
            f"{t.iterations} packets, {t.instructions} instructions, "
            f"{t.cycles_per_iteration():.1f} wall cyc/packet"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.export import write_json
    from repro.obs.profile import profile_programs, render_report

    _apply_cache_dir(args)
    _apply_fabric(args)
    _apply_analysis_impl(args)
    programs = _load_all(args.files)
    try:
        report = profile_programs(
            programs,
            nreg=args.nreg,
            packets=args.packets,
            sim=not args.no_sim,
            engine=args.engine,
            jobs=args.jobs,
        )
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(report))
    if args.json:
        out = write_json(args.json, report.to_dict())
        print(f"wrote profile to {out}", file=sys.stderr)
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.npc import compile_source

    source = pathlib.Path(args.file).read_text()
    program = compile_source(
        source,
        pathlib.Path(args.file).stem,
        optimize=not args.no_opt,
    )
    text = format_program(program)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {len(program.instrs)} instructions to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_encode(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    if program.virtual_regs():
        print(
            "error: program uses virtual registers; allocate it first "
            "(repro allocate ... -o DIR)",
            file=sys.stderr,
        )
        return 1
    words = encode_program(program)
    text = "\n".join(f"{w:016x}" for w in words) + "\n"
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {len(words)} words to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _run_bench_experiment(args: argparse.Namespace):
    """Run one bench experiment; returns ``(rendered text, data)`` where
    ``data`` matches the shape of the bench's ``BENCH_*.json`` payload
    (what the ledger's watched-metric extraction understands)."""
    if args.experiment == "table1":
        from repro.harness.table1 import render_table1, run_table1

        rows = run_table1(jobs=args.jobs)
        return render_table1(rows), [r.to_dict() for r in rows]
    if args.experiment == "table2":
        from repro.harness.table2 import render_table2, run_table2

        rows = run_table2(jobs=args.jobs)
        return render_table2(rows), [r.to_dict() for r in rows]
    if args.experiment == "table3":
        from repro.harness.table3 import render_table3, run_table3

        scenarios = run_table3(jobs=args.jobs)
        return render_table3(scenarios), [s.to_dict() for s in scenarios]
    if args.experiment == "perf":
        from repro.harness.perf import render_perf, run_perf, summarize_perf

        rows = run_perf()
        return render_perf(rows), {
            "rows": [r.to_dict() for r in rows],
            "summary": summarize_perf(rows),
        }
    if args.experiment == "batch":
        from repro.harness.batchperf import (
            render_batchperf,
            run_batchperf,
            summarize_batchperf,
        )

        rows = run_batchperf()
        return render_batchperf(rows), {
            "rows": [r.to_dict() for r in rows],
            "summary": summarize_batchperf(rows),
        }
    if args.experiment == "alloc":
        from repro.harness.allocperf import render_alloc, run_alloc_bench

        report = run_alloc_bench(jobs=args.jobs or None)
        return render_alloc(report), report.to_dict()
    if args.experiment == "analysis":
        from repro.harness.analysisperf import (
            render_analysis,
            run_analysis_bench,
        )

        report = run_analysis_bench()
        return render_analysis(report), report.to_dict()
    if args.experiment == "fabric":
        from repro.harness.fabricperf import render_fabric, run_fabric_bench

        report = run_fabric_bench(
            workers=args.jobs if args.jobs and args.jobs > 1 else None
        )
        return render_fabric(report), report.to_dict()
    from repro.harness.fig14 import render_fig14, run_fig14

    rows = run_fig14(jobs=args.jobs)
    return render_fig14(rows), [r.to_dict() for r in rows]


def _bench_ledger_path(args: argparse.Namespace):
    """Resolve the ledger path for ``repro bench``: the ``--ledger``
    flag wins; otherwise the default (``$REPRO_LEDGER`` or
    ``benchmarks/out/ledger.jsonl``) -- but only when its parent
    directory already exists, so running ``repro bench`` outside the
    repo does not scatter ``benchmarks/`` trees around."""
    from repro.obs import ledger

    explicit = getattr(args, "ledger", None)
    if explicit:
        return pathlib.Path(explicit)
    path = ledger.default_path()
    return path if path.parent.is_dir() else None


def _append_bench_ledger(args: argparse.Namespace, data) -> None:
    """Append one run-ledger row for a finished bench experiment."""
    import time

    from repro.harness.trend import watched_from_bench
    from repro.obs import ledger
    from repro.obs.export import to_jsonable

    path = _bench_ledger_path(args)
    if path is None:
        return
    watched = watched_from_bench(args.experiment, to_jsonable(data))
    row = ledger.make_row(
        args.experiment,
        watched,
        config={
            "engine": args.engine,
            "jobs": args.jobs,
            "analysis_impl": getattr(args, "analysis_impl", None),
        },
        fingerprints=_suite_fingerprints(),
        ts=time.time(),
    )
    out = ledger.append(row, path)
    print(f"appended {args.experiment} ledger row to {out}", file=sys.stderr)


def _suite_fingerprints() -> List[str]:
    """Content fingerprints of the built-in suite kernels (what every
    bench experiment measures), for the ledger row's identity."""
    return [load(name).fingerprint() for name in BENCHMARKS]


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    from repro.harness.trend import render_trend, run_trend, trend_report
    from repro.obs import ledger
    from repro.obs.export import write_json

    ledger_path = getattr(args, "ledger", None) or ledger.default_path()
    out_dir = pathlib.Path("benchmarks") / "out"
    trends = run_trend(
        ledger_path=ledger_path,
        out_dir=out_dir,
        threshold_pct=args.threshold,
    )
    print(render_trend(trends))
    report = trend_report(trends, args.threshold)
    report_path = getattr(args, "report", None)
    if report_path is None and out_dir.is_dir():
        report_path = out_dir / "TREND.json"
    if report_path:
        out = write_json(report_path, report)
        print(f"wrote trend report to {out}", file=sys.stderr)
    if args.gate and report["regressions"]:
        print(
            f"trend gate FAILED: {', '.join(report['regressions'])}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.sim.engine import set_default_engine

    if args.experiment == "trend":
        return _cmd_bench_trend(args)
    # Harness-wide engine preference: the harnesses call run_threads()
    # many times without an explicit engine, so route the choice
    # through the process default (restored on the way out).  Runs that
    # need a reference-only feature (e.g. the paranoid checker) fall
    # back per-run with a warning instead of aborting the sweep.
    _apply_cache_dir(args)
    _apply_fabric(args)
    _apply_analysis_impl(args)
    previous = set_default_engine(args.engine)
    try:
        text, data = _run_bench_experiment(args)
    finally:
        set_default_engine(previous)
    print(text)
    _append_bench_ledger(args, data)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.harness.chaos import render_chaos, run_chaos
    from repro.sim.engine import set_default_engine

    kernels = [k for k in args.kernels.split(",") if k]
    scenarios = (
        [s for s in args.scenarios.split(",") if s] if args.scenarios else None
    )
    # Campaign-wide engine preference, like ``bench``: scenario bodies
    # that pin the reference engine (the differential oracles) keep it;
    # everything else follows the flag.
    previous = set_default_engine(args.engine)
    try:
        report = run_chaos(kernels=kernels, scenarios=scenarios, seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        set_default_engine(previous)
    print(render_chaos(report))
    if args.json:
        from repro.obs.export import write_json

        out = write_json(args.json, report.to_dict())
        print(f"wrote chaos report to {out}", file=sys.stderr)
    return 0 if report.ok else 1


def _append_fabric_ledger(
    args: argparse.Namespace, st, elapsed: Optional[float]
) -> None:
    """One provenance row per ``repro fabric`` run/merge.

    The metrics here (items spooled, steals, wall-clock) are not
    watched by the trend sentinel -- the gated ``fabric.speedup``
    comes from ``repro bench fabric`` -- but the ledger keeps the
    trajectory of fabric activity next to everything else it records.
    """
    import time

    from repro.obs import ledger

    path = _bench_ledger_path(args)
    if path is None:
        return
    metrics = {
        "fabric.items": float(st["done"]),
        "fabric.stolen": float(
            sum(w.get("stolen") or 0 for w in st["workers"])
        ),
    }
    if elapsed is not None:
        metrics["fabric.wall_s"] = float(elapsed)
    row = ledger.make_row(
        "fabric",
        metrics,
        config={
            "command": f"fabric {args.action}",
            "dir": st["dir"],
            "manifest_id": st["manifest_id"],
            "label": st["label"],
            "workers": getattr(args, "workers", None),
        },
        ts=time.time(),
    )
    out = ledger.append(row, path)
    print(f"appended fabric ledger row to {out}", file=sys.stderr)


def cmd_fabric(args: argparse.Namespace) -> int:
    """``repro fabric {run,resume,status,merge} DIR``."""
    import json
    import time

    from repro import fabric
    from repro.errors import DeadlineExceeded, FabricError

    run_dir = pathlib.Path(args.dir)
    action = args.action
    try:
        if action == "status":
            print(
                json.dumps(fabric.status(run_dir), indent=2, sort_keys=True)
            )
            return 0
        if action == "merge":
            results = fabric.merge_results(run_dir)
            st = fabric.status(run_dir)
            print(
                f"merged {len(results)} item(s) ({st['unique']} unique) "
                f"from {run_dir}"
            )
            if args.json:
                from repro.obs.export import to_jsonable, write_json

                out = write_json(args.json, to_jsonable(results))
                print(f"wrote merged results to {out}", file=sys.stderr)
            _append_fabric_ledger(args, st, None)
            return 0

        # run / resume
        if not run_dir.joinpath("manifest.json").exists():
            if action == "resume":
                print(
                    f"error: nothing to resume: no manifest at {run_dir} "
                    f"(use 'repro fabric run' to plan one)",
                    file=sys.stderr,
                )
                return 2
            from repro.harness.allocperf import _alloc_summary, build_grid

            names = (
                [k for k in args.kernels.split(",") if k]
                if args.kernels
                else None
            )
            grid = build_grid(names, nthd=args.nthd)
            fabric.RunDir.plan(run_dir, _alloc_summary, grid, label="alloc")
            print(
                f"planned {len(grid)} grid point(s) into {run_dir}",
                file=sys.stderr,
            )
        workers = args.workers
        if workers <= 0:
            from repro.harness.sweep import default_jobs

            workers = max(2, min(4, default_jobs()))
        t0 = time.perf_counter()
        fabric.execute(
            run_dir, workers=workers, ttl=args.ttl, timeout=args.timeout
        )
        elapsed = time.perf_counter() - t0
        st = fabric.status(run_dir)
        stolen = sum(w.get("stolen") or 0 for w in st["workers"])
        print(
            f"{st['label']}-{st['manifest_id'][:12]}: "
            f"{st['done']}/{st['unique']} unique item(s) spooled "
            f"in {elapsed:.2f}s ({stolen} stolen)"
        )
        _append_fabric_ledger(args, st, elapsed)
        return 0
    except KeyError as exc:
        print(f"error: unknown kernel {exc}", file=sys.stderr)
        return 2
    except DeadlineExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. status piped into `head`
        raise
    except (FabricError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the allocation service until SIGTERM/SIGINT, then drain."""
    import signal
    import threading
    import time

    from repro.service import ReproServer, ServiceConfig

    config = ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_request_bytes=args.max_request_bytes,
        default_deadline_s=args.deadline,
        store_dir=args.store_dir,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        drain_timeout_s=args.drain_timeout,
    )
    server = ReproServer(config, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    # The exact "serving on" line is the contract the smoke harness
    # (and any wrapping orchestrator) parses for the bound port.
    print(f"serving on http://{host}:{port}", flush=True)

    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    stop.wait()
    print("draining...", file=sys.stderr, flush=True)
    clean = server.drain_and_stop(config.drain_timeout_s)
    if args.ledger:
        from repro.obs import ledger

        row = ledger.make_row(
            "service",
            server.core.ledger_metrics(),
            config={
                "workers": config.workers,
                "queue_depth": config.queue_depth,
                "breaker_threshold": config.breaker_threshold,
            },
            ts=time.time(),
        )
        out = ledger.append(row, args.ledger)
        print(f"appended service ledger row to {out}", file=sys.stderr)
    status = "cleanly" if clean else "with deadline-outs"
    print(f"drained {status}", file=sys.stderr, flush=True)
    return 0 if clean else 1


def cmd_suite(args: argparse.Namespace) -> int:
    print(f"{'name':14} {'instrs':>6} {'CSB%':>5}")
    for name in BENCHMARKS:
        program = load(name)
        density = 100.0 * program.count_csb() / len(program.instrs)
        print(f"{name:14} {len(program.instrs):6} {density:5.1f}")
    return 0


def _apply_cache_dir(args: argparse.Namespace) -> None:
    """Point the global analysis cache at ``--cache-dir`` when given."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from repro.core.cache import set_cache_dir

        set_cache_dir(cache_dir)


def _apply_fabric(args: argparse.Namespace) -> None:
    """Route parallel sweeps through a durable fabric root (``--fabric``).

    ``--fabric DIR`` without ``--jobs`` implies at least two workers --
    a durable run directory driven by a single serial pass would never
    exercise the machinery the user asked for.  ``jobs`` stays an
    integer so the analysis-cache warmers (which compare it numerically)
    are unaffected.
    """
    root = getattr(args, "fabric", None)
    if root:
        from repro import fabric
        from repro.harness.sweep import default_jobs

        fabric.set_fabric(root)
        if getattr(args, "jobs", 1) <= 1:
            args.jobs = max(2, default_jobs())


def _add_perf_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel sweeps and analysis cache "
        "misses (default 1: serial; results are identical either way)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        dest="cache_dir",
        help="persist the analysis cache in DIR across runs "
        "(default: in-memory only, or $REPRO_CACHE_DIR when set)",
    )
    p.add_argument(
        "--fabric",
        metavar="DIR",
        help="route parallel sweeps through durable, resumable run "
        "directories under DIR (default: ephemeral process pool, or "
        "$REPRO_FABRIC_DIR when set); implies --jobs >= 2",
    )


def _apply_analysis_impl(args: argparse.Namespace) -> None:
    """Set the process-default analysis implementation from the flag.

    A CLI process runs one command and exits, so (like ``--cache-dir``)
    the default is not restored afterwards; the benchmark harnesses that
    flip implementations internally save and restore it themselves.
    """
    impl = getattr(args, "analysis_impl", None)
    if impl:
        from repro.core.dense import set_default_analysis_impl

        set_default_analysis_impl(impl)


def _add_analysis_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--analysis-impl",
        choices=["dense", "reference"],
        dest="analysis_impl",
        help="analysis kernel implementation: 'dense' is the bitset "
        "fast path, 'reference' the set-based construction; results "
        "are bit-identical (default: dense, or $REPRO_ANALYSIS)",
    )


def _add_engine_flag(p: argparse.ArgumentParser) -> None:
    """The one shared ``--engine`` definition for every subparser that
    runs the simulator (``run``/``profile``/``bench``/``chaos``); the
    choice list comes straight from the engine registry, so a new
    engine is a one-line registry change, not four parser edits."""
    p.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="auto",
        help="execution engine: 'fast' is the pre-decoded burst engine "
        "(stats-identical, no tracing/paranoid checks), 'batch' the "
        "numpy lockstep engine that vectorizes seed sweeps, 'reference' "
        "the full-featured interpreter, 'auto' picks per run (default)",
    )


def _engine_conflict(flag: str, engine: str, feature: str) -> str:
    """An incompatible-flag error that names the flag forcing the
    conflict, e.g. ``--allocated`` vs ``--engine fast``."""
    return (
        f"error: {flag} needs {feature}, which the {engine} engine does "
        f"not implement; {flag} forces the reference engine, so drop "
        f"--engine {engine} or use --engine reference/auto"
    )


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics",
        metavar="OUT.json",
        help="write a combined telemetry snapshot (phase timings, "
        "inter-allocator steps, simulator cycle accounting, metrics)",
    )
    p.add_argument(
        "--trace-json",
        metavar="OUT.jsonl",
        dest="trace_json",
        help="write the raw structured event log as JSON Lines",
    )
    p.add_argument(
        "--prom",
        metavar="OUT.prom",
        help="write the metric registry in Prometheus text exposition "
        "format (histograms as _bucket/_sum/_count)",
    )
    p.add_argument(
        "--trace-chrome",
        metavar="OUT.json",
        dest="trace_chrome",
        help="write the span tree as Chrome trace-event JSON "
        "(chrome://tracing, Perfetto)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Balancing register allocation across threads for a "
            "multithreaded network processor (PLDI 2004) -- reproduction."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="per-thread analysis report")
    p.add_argument("files", nargs="+")
    p.add_argument(
        "--chart", action="store_true", help="print the live-range chart"
    )
    p.add_argument(
        "--nsr", action="store_true", help="print the NSR-annotated listing"
    )
    _add_analysis_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("allocate", help="cross-thread register allocation")
    p.add_argument("files", nargs="+")
    p.add_argument("--nreg", type=int, default=128)
    p.add_argument("-o", "--output", help="directory for rewritten assembly")
    _add_analysis_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_allocate)

    p = sub.add_parser("run", help="simulate threads over packet queues")
    p.add_argument("files", nargs="+")
    p.add_argument("--nreg", type=int, default=128)
    p.add_argument("--packets", type=int, default=16)
    p.add_argument(
        "--allocated",
        action="store_true",
        help="allocate first, verify against the reference run",
    )
    _add_engine_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "profile", help="profile the allocator pipeline and simulator"
    )
    p.add_argument("files", nargs="+")
    p.add_argument("--nreg", type=int, default=128)
    p.add_argument("--packets", type=int, default=16)
    p.add_argument(
        "--no-sim",
        action="store_true",
        help="profile the allocation only, skip the simulated run",
    )
    p.add_argument("--json", metavar="OUT.json", help="write the report as JSON")
    _add_engine_flag(p)
    _add_analysis_flag(p)
    _add_perf_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("compile", help="compile npc source to npir assembly")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument(
        "--no-opt", action="store_true", help="skip the optimizer passes"
    )
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("encode", help="assemble to 64-bit machine words")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_encode)

    p = sub.add_parser(
        "bench",
        help="regenerate a paper table/figure or run the trend sentinel",
    )
    p.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "table3",
            "fig14",
            "perf",
            "batch",
            "alloc",
            "analysis",
            "fabric",
            "trend",
        ],
        help="experiment to run; 'alloc' measures the allocation "
        "pipeline cold/warm/parallel AND the shared-descent budget "
        "sweep (one Figure-8 descent per kernel answering every "
        "register budget, vs one fresh allocation per budget -- see "
        "docs/PERFORMANCE.md, 'Shared-descent budget sweeps')",
    )
    _add_engine_flag(p)
    _add_analysis_flag(p)
    _add_obs_flags(p)
    _add_perf_flags(p)
    p.add_argument(
        "--ledger",
        metavar="PATH",
        help="run-ledger JSONL file to append to / read trends from "
        "(default: $REPRO_LEDGER or benchmarks/out/ledger.jsonl)",
    )
    p.add_argument(
        "--gate",
        action="store_true",
        help="trend only: exit non-zero when a watched metric regressed",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="trend only: regression threshold in percent vs the median "
        "baseline; widened automatically when the history is noisier "
        "(default: 10)",
    )
    p.add_argument(
        "--report",
        metavar="OUT.json",
        help="trend only: where to write the JSON trend report "
        "(default: benchmarks/out/TREND.json when that directory exists)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "chaos",
        help="run the fault-injection chaos harness and gate on it",
    )
    p.add_argument(
        "--kernels",
        default="crc,frag,md5",
        help="comma-separated suite kernels to sweep (default: crc,frag,md5)",
    )
    p.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: all registered)",
    )
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument(
        "--json", metavar="OUT.json", help="write the chaos report as JSON"
    )
    _add_engine_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "fabric",
        help="drive a durable, resumable sweep run directory directly",
    )
    fsub = p.add_subparsers(dest="action", required=True)
    q = fsub.add_parser(
        "run",
        help="plan the allocperf suite x budget grid into DIR (or pick "
        "up an existing manifest) and execute it with N workers",
    )
    q.add_argument("dir", help="run directory (created when missing)")
    q.add_argument(
        "--kernels",
        default=None,
        help="comma-separated suite kernels to plan (default: all; "
        "ignored when DIR already holds a manifest)",
    )
    q.add_argument(
        "--nthd",
        type=int,
        default=2,
        help="identical threads per grid point when planning (default: 2)",
    )
    run_like = [q]
    q = fsub.add_parser(
        "resume",
        help="finish only the missing items of an existing run directory",
    )
    q.add_argument("dir", help="run directory holding a manifest")
    run_like.append(q)
    for q in run_like:
        q.add_argument(
            "--workers",
            type=int,
            default=0,
            help="worker processes (default: one per CPU, 2..4; "
            "clamped to the number of missing items)",
        )
        q.add_argument(
            "--ttl",
            type=float,
            default=60.0,
            help="seconds before a foreign claim counts as stale and "
            "may be stolen (default: 60; dead-pid claims on this host "
            "are stolen immediately)",
        )
        q.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="overall deadline in seconds (default: none)",
        )
    q = fsub.add_parser(
        "status", help="print the run directory's JSON progress snapshot"
    )
    q.add_argument("dir", help="run directory holding a manifest")
    run_like.append(q)
    q = fsub.add_parser(
        "merge",
        help="fold the results spool into submission-ordered results",
    )
    q.add_argument("dir", help="run directory holding a manifest")
    q.add_argument(
        "--json",
        metavar="OUT.json",
        help="write the merged, submission-ordered results as JSON",
    )
    run_like.append(q)
    for q in run_like:
        q.add_argument(
            "--ledger",
            metavar="PATH",
            help="run-ledger JSONL file for the provenance row "
            "(default: $REPRO_LEDGER or benchmarks/out/ledger.jsonl)",
        )
        _add_obs_flags(q)
        q.set_defaults(func=cmd_fabric)

    p = sub.add_parser(
        "serve",
        help="run the allocation service (POST /v1/allocate; "
        "docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8742,
        help="TCP port; 0 picks a free port (printed on stdout)",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="pipeline worker threads"
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        dest="queue_depth",
        help="admission bound; requests beyond it shed with 429",
    )
    p.add_argument(
        "--max-request-bytes",
        type=int,
        default=256 * 1024,
        dest="max_request_bytes",
        help="reject larger bodies with 413 before parsing",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="default per-request wall-clock budget (seconds)",
    )
    p.add_argument(
        "--store-dir",
        dest="store_dir",
        help="persist results on disk for idempotent replay across "
        "restarts (default: memory only)",
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        dest="breaker_threshold",
        help="consecutive failures before a subsystem breaker opens",
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        dest="breaker_cooldown",
        help="seconds an open breaker waits before half-opening",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        dest="drain_timeout",
        help="seconds SIGTERM waits for in-flight work before "
        "deadline-ing it out",
    )
    p.add_argument(
        "--ledger",
        metavar="PATH",
        help="append a service run-ledger row on drain",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("suite", help="list built-in benchmarks")
    p.set_defaults(func=cmd_suite)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _telemetry(args):
            return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
