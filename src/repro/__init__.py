"""repro: balancing register allocation across threads for a multithreaded
network processor.

A from-scratch reproduction of Zhuang & Pande, PLDI 2004.  The package
contains the complete stack the paper's system needs:

* :mod:`repro.ir` -- the npir assembly language (IXP-style RISC ISA);
* :mod:`repro.cfg` -- CFG, liveness, web renaming, non-switch regions;
* :mod:`repro.igraph` -- GIG/BIG/IIG interference graphs and coloring;
* :mod:`repro.core` -- the paper's allocator: bounds estimation, the
  greedy inter-thread loop, the splitting intra-thread allocator, SRA,
  physical assignment and code rewriting;
* :mod:`repro.baseline` -- the Chaitin-with-spilling comparator;
* :mod:`repro.sim` -- a cycle-level multithreaded micro-engine simulator
  with a dynamic register-safety checker;
* :mod:`repro.suite` -- the 11 packet-processing benchmarks;
* :mod:`repro.harness` -- regenerators for every table and figure of the
  paper's evaluation.

Quickstart::

    from repro import allocate_programs, parse_program, run_threads

    thread0 = parse_program(open("t0.npir").read(), "t0")
    thread1 = parse_program(open("t1.npir").read(), "t1")
    out = allocate_programs([thread0, thread1], nreg=128)
    print(out.summary())
    result = run_threads(out.programs, assignment=out.assignment)
"""

from repro.errors import (
    AllocationError,
    AsmSyntaxError,
    ReproError,
    SafetyViolation,
    SimulationError,
    ValidationError,
)
from repro.ir import (
    Instruction,
    Opcode,
    Program,
    format_program,
    parse_program,
    validate_program,
)
from repro.core import (
    AllocationOutcome,
    allocate_programs,
    allocate_symmetric,
    allocate_threads,
    analyze_thread,
    estimate_bounds,
)
from repro.baseline import chaitin_allocate, single_thread_register_count
from repro.sim import (
    Machine,
    outputs_match,
    run_reference,
    run_threads,
)
from repro.suite import BENCHMARKS, load as load_benchmark
from repro.npc import compile_source
from repro.opt import optimize

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "AsmSyntaxError",
    "ValidationError",
    "AllocationError",
    "SimulationError",
    "SafetyViolation",
    "Opcode",
    "Instruction",
    "Program",
    "parse_program",
    "format_program",
    "validate_program",
    "analyze_thread",
    "estimate_bounds",
    "allocate_programs",
    "allocate_threads",
    "allocate_symmetric",
    "AllocationOutcome",
    "chaitin_allocate",
    "single_thread_register_count",
    "Machine",
    "run_threads",
    "run_reference",
    "outputs_match",
    "BENCHMARKS",
    "load_benchmark",
    "compile_source",
    "optimize",
    "__version__",
]
