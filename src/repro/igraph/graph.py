"""A small deterministic undirected graph.

Nodes are arbitrary hashable values.  Iteration orders are made
deterministic by sorting on ``str(node)``, so colorings and the allocation
pipeline built on top are exactly reproducible run to run.

The sorted views (:meth:`nodes`, :meth:`edges`, :meth:`neighbors`) are
memoized against a mutation version counter: the intra-thread allocator
re-walks the same graphs thousands of times per probe, and re-sorting an
unchanged adjacency set on every call dominated its profile.  Mutators
bump the version only when they actually change the graph (re-adding an
existing node or edge is free), and every cached list is returned as-is
-- callers must not mutate the returned lists, which no caller does.

:meth:`dense_view` exposes the same adjacency as a
:class:`DenseAdjacency`: nodes renumbered to contiguous ints (in the
sorted-node order, so bit order matches ``str`` order) with one big-int
neighbor bitmask per node.  The dense analysis kernels
(:mod:`repro.core.dense`) build interference graphs directly from such
masks via :func:`graph_from_dense` and the coloring heuristics walk the
view instead of per-node Python sets.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

Node = Hashable

try:  # int.bit_count is Python 3.10+; CI still runs 3.9.
    popcount = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - exercised on 3.9 only

    def popcount(mask: int) -> int:
        """Number of set bits in ``mask`` (non-negative)."""
        return bin(mask).count("1")


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class DenseAdjacency:
    """An immutable dense-index snapshot of a graph's adjacency.

    Attributes:
        nodes: the graph's nodes in sorted (``str``) order -- bit ``i``
            everywhere below refers to ``nodes[i]``.
        index: node -> bit position.
        masks: per node, the big-int bitmask of its neighbors.
    """

    __slots__ = ("nodes", "index", "masks")

    def __init__(
        self,
        nodes: Sequence[Node],
        index: Dict[Node, int],
        masks: List[int],
    ) -> None:
        self.nodes = list(nodes)
        self.index = index
        self.masks = masks


class UndirectedGraph:
    """Adjacency-set undirected graph with deterministic iteration."""

    def __init__(self) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self._version = 0
        self._nodes_cache: Optional[List[Node]] = None
        self._edges_cache: Optional[List[Tuple[Node, Node]]] = None
        self._nbrs_cache: Dict[Node, List[Node]] = {}
        self._n_edges_cache: Optional[int] = None
        self._dense_cache: Optional[DenseAdjacency] = None
        self._cache_version = -1

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        """Record a structural change, invalidating the sorted views."""
        self._version += 1

    def _sync_caches(self) -> None:
        if self._cache_version != self._version:
            self._nodes_cache = None
            self._edges_cache = None
            self._nbrs_cache.clear()
            self._n_edges_cache = None
            self._dense_cache = None
            self._cache_version = self._version

    def add_node(self, node: Node) -> None:
        if node not in self._adj:
            self._adj[node] = set()
            self._touch()

    def add_edge(self, a: Node, b: Node) -> None:
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        self.add_node(a)
        self.add_node(b)
        if b not in self._adj[a]:
            self._adj[a].add(b)
            self._adj[b].add(a)
            self._touch()

    def remove_node(self, node: Node) -> None:
        if node not in self._adj:
            return
        for other in self._adj.pop(node):
            self._adj[other].discard(node)
        self._touch()

    def remove_edge(self, a: Node, b: Node) -> None:
        if b in self._adj.get(a, ()):
            self._adj[a].discard(b)
            self._adj[b].discard(a)
            self._touch()

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> List[Node]:
        self._sync_caches()
        if self._nodes_cache is None:
            self._nodes_cache = sorted(self._adj, key=str)
        return self._nodes_cache

    def edges(self) -> List[Tuple[Node, Node]]:
        """All edges, each once, ordered by node string form.

        Nodes are assumed to have pairwise-distinct ``str()`` forms (true
        for register operands, this graph's only production node type).
        """
        self._sync_caches()
        if self._edges_cache is None:
            out: List[Tuple[Node, Node]] = []
            for a in self.nodes():
                for b in self.neighbors(a):
                    if str(a) < str(b):
                        out.append((a, b))
            self._edges_cache = out
        return self._edges_cache

    def n_edges(self) -> int:
        self._sync_caches()
        if self._n_edges_cache is None:
            self._n_edges_cache = sum(len(s) for s in self._adj.values()) // 2
        return self._n_edges_cache

    def dense_view(self) -> DenseAdjacency:
        """The adjacency as index-renumbered neighbor bitmasks, memoized
        against the version counter.  Callers must not mutate it."""
        self._sync_caches()
        if self._dense_cache is None:
            nodes = self.nodes()
            index = {n: i for i, n in enumerate(nodes)}
            masks = [0] * len(nodes)
            for node, nbrs in self._adj.items():
                m = 0
                for other in nbrs:
                    m |= 1 << index[other]
                masks[index[node]] = m
            self._dense_cache = DenseAdjacency(nodes, index, masks)
        return self._dense_cache

    def neighbors(self, node: Node) -> List[Node]:
        self._sync_caches()
        cached = self._nbrs_cache.get(node)
        if cached is None:
            cached = sorted(self._adj[node], key=str)
            self._nbrs_cache[node] = cached
        return cached

    def neighbor_set(self, node: Node) -> Set[Node]:
        return self._adj[node]

    def degree(self, node: Node) -> int:
        return len(self._adj[node])

    def has_edge(self, a: Node, b: Node) -> bool:
        return b in self._adj.get(a, ())

    # ------------------------------------------------------------------
    # Derivatives.
    # ------------------------------------------------------------------
    def copy(self) -> "UndirectedGraph":
        g = UndirectedGraph()
        for node, nbrs in self._adj.items():
            g._adj[node] = set(nbrs)
        return g

    def subgraph(self, keep: Iterable[Node]) -> "UndirectedGraph":
        keep_set = set(keep)
        g = UndirectedGraph()
        for node in keep_set:
            if node in self._adj:
                g.add_node(node)
        for node in keep_set:
            for other in self._adj.get(node, ()):
                if other in keep_set:
                    g.add_edge(node, other)
        return g

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())


def graph_from_dense(
    universe: Sequence[Node], node_mask: int, adj: Sequence[int]
) -> UndirectedGraph:
    """Build a graph from dense-index adjacency bitmasks.

    ``universe`` is the full sorted node tuple of the bit-space; the graph
    contains the nodes whose bits are set in ``node_mask``, with
    ``adj[i]`` the neighbor mask of ``universe[i]`` (required symmetric
    and confined to ``node_mask`` -- this is not re-checked).  The sorted
    node list and the dense view are pre-warmed, so downstream consumers
    never pay a re-sort.
    """
    g = UndirectedGraph()
    nodes: List[Node] = []
    masks: List[int] = []
    m = node_mask
    while m:
        low = m & -m
        i = low.bit_length() - 1
        m ^= low
        node = universe[i]
        nodes.append(node)
        masks.append(adj[i])
        g._adj[node] = {universe[b] for b in bit_indices(adj[i])}
    g._touch()
    g._sync_caches()
    g._nodes_cache = nodes
    if node_mask == (1 << len(universe)) - 1:
        # Bit-space == node set: the universe masks are the dense view.
        index = {n: i for i, n in enumerate(nodes)}
        g._dense_cache = DenseAdjacency(nodes, index, masks)
    return g
