"""A small deterministic undirected graph.

Nodes are arbitrary hashable values.  Iteration orders are made
deterministic by sorting on ``str(node)``, so colorings and the allocation
pipeline built on top are exactly reproducible run to run.

The sorted views (:meth:`nodes`, :meth:`edges`, :meth:`neighbors`) are
memoized against a mutation version counter: the intra-thread allocator
re-walks the same graphs thousands of times per probe, and re-sorting an
unchanged adjacency set on every call dominated its profile.  Mutators
bump the version only when they actually change the graph (re-adding an
existing node or edge is free), and every cached list is returned as-is
-- callers must not mutate the returned lists, which no caller does.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable


class UndirectedGraph:
    """Adjacency-set undirected graph with deterministic iteration."""

    def __init__(self) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self._version = 0
        self._nodes_cache: Optional[List[Node]] = None
        self._edges_cache: Optional[List[Tuple[Node, Node]]] = None
        self._nbrs_cache: Dict[Node, List[Node]] = {}
        self._cache_version = -1

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        """Record a structural change, invalidating the sorted views."""
        self._version += 1

    def _sync_caches(self) -> None:
        if self._cache_version != self._version:
            self._nodes_cache = None
            self._edges_cache = None
            self._nbrs_cache.clear()
            self._cache_version = self._version

    def add_node(self, node: Node) -> None:
        if node not in self._adj:
            self._adj[node] = set()
            self._touch()

    def add_edge(self, a: Node, b: Node) -> None:
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        self.add_node(a)
        self.add_node(b)
        if b not in self._adj[a]:
            self._adj[a].add(b)
            self._adj[b].add(a)
            self._touch()

    def remove_node(self, node: Node) -> None:
        if node not in self._adj:
            return
        for other in self._adj.pop(node):
            self._adj[other].discard(node)
        self._touch()

    def remove_edge(self, a: Node, b: Node) -> None:
        if b in self._adj.get(a, ()):
            self._adj[a].discard(b)
            self._adj[b].discard(a)
            self._touch()

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> List[Node]:
        self._sync_caches()
        if self._nodes_cache is None:
            self._nodes_cache = sorted(self._adj, key=str)
        return self._nodes_cache

    def edges(self) -> List[Tuple[Node, Node]]:
        """All edges, each once, ordered by node string form.

        Nodes are assumed to have pairwise-distinct ``str()`` forms (true
        for register operands, this graph's only production node type).
        """
        self._sync_caches()
        if self._edges_cache is None:
            out: List[Tuple[Node, Node]] = []
            for a in self.nodes():
                for b in self.neighbors(a):
                    if str(a) < str(b):
                        out.append((a, b))
            self._edges_cache = out
        return self._edges_cache

    def n_edges(self) -> int:
        return sum(len(s) for s in self._adj.values()) // 2

    def neighbors(self, node: Node) -> List[Node]:
        self._sync_caches()
        cached = self._nbrs_cache.get(node)
        if cached is None:
            cached = sorted(self._adj[node], key=str)
            self._nbrs_cache[node] = cached
        return cached

    def neighbor_set(self, node: Node) -> Set[Node]:
        return self._adj[node]

    def degree(self, node: Node) -> int:
        return len(self._adj[node])

    def has_edge(self, a: Node, b: Node) -> bool:
        return b in self._adj.get(a, ())

    # ------------------------------------------------------------------
    # Derivatives.
    # ------------------------------------------------------------------
    def copy(self) -> "UndirectedGraph":
        g = UndirectedGraph()
        for node, nbrs in self._adj.items():
            g._adj[node] = set(nbrs)
        return g

    def subgraph(self, keep: Iterable[Node]) -> "UndirectedGraph":
        keep_set = set(keep)
        g = UndirectedGraph()
        for node in keep_set:
            if node in self._adj:
                g.add_node(node)
        for node in keep_set:
            for other in self._adj.get(node, ()):
                if other in keep_set:
                    g.add_edge(node, other)
        return g

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())
