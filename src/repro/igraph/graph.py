"""A small deterministic undirected graph.

Nodes are arbitrary hashable values.  Iteration orders are made
deterministic by sorting on ``str(node)``, so colorings and the allocation
pipeline built on top are exactly reproducible run to run.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Node = Hashable


class UndirectedGraph:
    """Adjacency-set undirected graph with deterministic iteration."""

    def __init__(self) -> None:
        self._adj: Dict[Node, Set[Node]] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._adj.setdefault(node, set())

    def add_edge(self, a: Node, b: Node) -> None:
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        self.add_node(a)
        self.add_node(b)
        self._adj[a].add(b)
        self._adj[b].add(a)

    def remove_node(self, node: Node) -> None:
        for other in self._adj.pop(node, set()):
            self._adj[other].discard(node)

    def remove_edge(self, a: Node, b: Node) -> None:
        self._adj[a].discard(b)
        self._adj[b].discard(a)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> List[Node]:
        return sorted(self._adj, key=str)

    def edges(self) -> List[Tuple[Node, Node]]:
        """All edges, each once, ordered by node string form.

        Nodes are assumed to have pairwise-distinct ``str()`` forms (true
        for register operands, this graph's only production node type).
        """
        out: List[Tuple[Node, Node]] = []
        for a in self.nodes():
            for b in sorted(self._adj[a], key=str):
                if str(a) < str(b):
                    out.append((a, b))
        return out

    def n_edges(self) -> int:
        return sum(len(s) for s in self._adj.values()) // 2

    def neighbors(self, node: Node) -> List[Node]:
        return sorted(self._adj[node], key=str)

    def neighbor_set(self, node: Node) -> Set[Node]:
        return self._adj[node]

    def degree(self, node: Node) -> int:
        return len(self._adj[node])

    def has_edge(self, a: Node, b: Node) -> bool:
        return b in self._adj.get(a, ())

    # ------------------------------------------------------------------
    # Derivatives.
    # ------------------------------------------------------------------
    def copy(self) -> "UndirectedGraph":
        g = UndirectedGraph()
        for node, nbrs in self._adj.items():
            g._adj[node] = set(nbrs)
        return g

    def subgraph(self, keep: Iterable[Node]) -> "UndirectedGraph":
        keep_set = set(keep)
        g = UndirectedGraph()
        for node in keep_set:
            if node in self._adj:
                g.add_node(node)
        for node in keep_set:
            for other in self._adj.get(node, ()):
                if other in keep_set:
                    g.add_edge(node, other)
        return g

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())
