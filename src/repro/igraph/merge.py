"""Region-wise coloring merge with conflict-edge resolution (paper Fig. 7).

The upper-bound estimation colors the BIG and each IIG *independently* --
much cheaper than coloring the whole GIG -- and then merges the colorings:

1. color the BIG minimally; its color count is the initial ``MaxPR``;
2. color every IIG minimally; ``MaxR`` starts as the maximum of ``MaxPR``
   and the largest IIG color count;
3. walk the GIG edges not covered by a single region ("conflict edges");
   whenever both endpoints carry the same color, try in order:

   a. recolor one endpoint within its legal palette (``[0, MaxPR)`` for
      boundary nodes, ``[0, MaxR)`` for internal nodes) avoiding all its
      GIG neighbors;
   b. recolor one *neighbor* of an endpoint to free a color for it (the
      paper's "heuristically try to change their neighbors' colors");
   c. give up and widen: bump ``MaxR`` for a conflict with an internal
      endpoint (the internal node takes the brand-new color), or bump
      ``MaxPR`` for a boundary-boundary conflict (shared-range colors are
      shifted up by one to keep the private palette contiguous).

The result is a valid GIG coloring in which every boundary node's color is
below ``MaxPR`` -- exactly the paper's "coloring scheme" conditions 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.igraph.coloring import (
    Coloring,
    first_free_color,
    min_color,
    num_colors,
)
from repro.igraph.graph import Node, UndirectedGraph
from repro.igraph.interference import InterferenceGraphs


@dataclass
class MergeResult:
    """Outcome of the region merge.

    Attributes:
        coloring: valid GIG coloring; boundary nodes use colors
            ``0 .. max_pr-1``.
        max_pr: the paper's ``MaxPR`` upper bound.
        max_r: the paper's ``MaxR`` upper bound.
    """

    coloring: Coloring
    max_pr: int
    max_r: int


def merge_region_colorings(graphs: InterferenceGraphs) -> MergeResult:
    """Run the Figure-7 estimation over a thread's interference graphs."""
    big_coloring = min_color(graphs.big)
    max_pr = max(num_colors(big_coloring), 0)

    coloring: Coloring = dict(big_coloring)
    max_r = max_pr
    for rid in sorted(graphs.iigs):
        iig_coloring = min_color(graphs.iigs[rid])
        max_r = max(max_r, num_colors(iig_coloring))
        coloring.update(iig_coloring)

    # Nodes that interfere with nothing may not appear in any region graph
    # (isolated GIG nodes); give them color 0 so the coloring is total.
    for node in graphs.gig.nodes():
        coloring.setdefault(node, 0)
    if coloring and max_r == 0:
        max_r = 1
    boundary = graphs.boundary

    def palette_limit(node: Node) -> int:
        return max_pr if node in boundary else max_r

    def neighbor_colors(node: Node) -> Set[int]:
        return {
            coloring[nbr]
            for nbr in graphs.gig.neighbor_set(node)
            if nbr in coloring
        }

    def try_recolor(node: Node) -> bool:
        """Recolor ``node`` within its palette avoiding GIG neighbors."""
        used = neighbor_colors(node)
        for c in range(palette_limit(node)):
            if c != coloring[node] and c not in used:
                coloring[node] = c
                return True
        return False

    def try_recolor_neighbors(node: Node) -> bool:
        """Free some palette color for ``node`` by moving one neighbor."""
        used = neighbor_colors(node)
        for c in range(palette_limit(node)):
            if c == coloring[node] or c not in used:
                continue
            blockers = [
                nbr
                for nbr in graphs.gig.neighbors(node)
                if coloring.get(nbr) == c
            ]
            moved: List[Tuple[Node, int]] = []
            ok = True
            for blocker in blockers:
                old = coloring[blocker]
                b_used = neighbor_colors(blocker)
                choice = next(
                    (
                        bc
                        for bc in range(palette_limit(blocker))
                        if bc != old and bc not in b_used
                    ),
                    None,
                )
                if choice is None:
                    ok = False
                    break
                coloring[blocker] = choice
                moved.append((blocker, old))
            if ok and c not in neighbor_colors(node):
                coloring[node] = c
                return True
            for blocker, old in reversed(moved):
                coloring[blocker] = old
        return False

    def widen_for(node: Node) -> None:
        nonlocal max_pr, max_r
        if node in boundary:
            # New private color: shift every shared-range color up by one
            # so private colors stay the contiguous prefix [0, max_pr).
            for other, c in list(coloring.items()):
                if c >= max_pr:
                    coloring[other] = c + 1
            coloring[node] = max_pr
            max_pr += 1
            max_r = max(max_r + 1, max_pr)
        else:
            coloring[node] = max_r
            max_r += 1

    # Conflict-edge worklist.  Resolving one edge can only change colors,
    # never remove constraint edges, so we loop until a full pass is clean.
    changed = True
    passes = 0
    while changed:
        passes += 1
        if passes > len(coloring) + 10:
            raise AssertionError("region merge failed to converge")
        changed = False
        for a, b in graphs.gig.edges():
            if coloring[a] != coloring[b]:
                continue
            changed = True
            # Prefer to move an internal endpoint (wider palette, and a
            # widening there costs a shared register, not a private one).
            first, second = (a, b)
            if a in boundary and b not in boundary:
                first, second = b, a
            if try_recolor(first) or try_recolor(second):
                continue
            if try_recolor_neighbors(first) or try_recolor_neighbors(second):
                continue
            widen_for(first)

    return MergeResult(coloring=coloring, max_pr=max_pr, max_r=max_r)
