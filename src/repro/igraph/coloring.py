"""Graph-coloring heuristics.

Minimum graph coloring is NP-hard; the paper (and every register allocator
since Chaitin) uses heuristics.  We provide:

* :func:`greedy_color` -- smallest-available color in a caller-given order;
* :func:`dsatur_color` -- Brelaz's DSATUR, usually the tightest here;
* :func:`simplify_color` -- Chaitin/Briggs-style simplify-select, the shape
  register allocators traditionally use;
* :func:`min_color` -- run both and keep whichever used fewer colors.

All orders break ties on ``str(node)``, so results are deterministic.

DSATUR and simplify-select each have a bitmask twin walking the graph's
:meth:`~repro.igraph.graph.UndirectedGraph.dense_view` (saturation and
used-color sets as int masks, tie-breaks on the dense index, which is
assigned in ``str`` order).  They are used when the dense analysis
kernels are the process default (:mod:`repro.core.dense`) and produce
identical colorings, insertion order included.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.igraph.graph import Node, UndirectedGraph, popcount

Coloring = Dict[Node, int]


def _lowest_clear_bit(mask: int) -> int:
    """Index of the lowest zero bit: ``first_free_color`` on a mask."""
    return (~mask & (mask + 1)).bit_length() - 1


def first_free_color(used: Iterable[int]) -> int:
    """The smallest non-negative integer not in ``used``."""
    taken = set(used)
    c = 0
    while c in taken:
        c += 1
    return c


def greedy_color(
    graph: UndirectedGraph,
    order: Optional[List[Node]] = None,
    fixed: Optional[Coloring] = None,
) -> Coloring:
    """Color nodes in ``order`` with the smallest available color.

    ``fixed`` pre-assigns colors that are respected and not changed
    (pre-colored nodes need not appear in ``order``).
    """
    coloring: Coloring = dict(fixed) if fixed else {}
    if order is None:
        order = graph.nodes()
    for node in order:
        if node in coloring:
            continue
        used = {
            coloring[nbr]
            for nbr in graph.neighbor_set(node)
            if nbr in coloring
        }
        coloring[node] = first_free_color(used)
    return coloring


def dsatur_color(graph: UndirectedGraph) -> Coloring:
    """Brelaz's DSATUR: always color the node whose neighbors currently use
    the most distinct colors (saturation), breaking ties by degree."""
    from repro.core.dense import analysis_is_dense

    if analysis_is_dense():
        return _dsatur_dense(graph)
    coloring: Coloring = {}
    uncolored = set(graph.nodes())
    sat: Dict[Node, set] = {n: set() for n in uncolored}
    while uncolored:
        node = max(
            uncolored,
            key=lambda n: (len(sat[n]), graph.degree(n), str(n)),
        )
        color = first_free_color(sat[node])
        coloring[node] = color
        uncolored.discard(node)
        for nbr in graph.neighbor_set(node):
            if nbr in uncolored:
                sat[nbr].add(color)
    return coloring


def _dsatur_dense(graph: UndirectedGraph) -> Coloring:
    """DSATUR over the dense adjacency view.

    Saturation sets are color masks; the selection maximum is taken over
    ``(popcount(sat), degree, index)``, which equals the reference key
    ``(len(sat), degree, str(node))`` because dense indices are assigned
    in ``str`` order and node strings are pairwise distinct.
    """
    view = graph.dense_view()
    nodes = view.nodes
    masks = view.masks
    k = len(nodes)
    deg = [popcount(m) for m in masks]
    sat = [0] * k
    sat_cnt = [0] * k
    uncolored = set(range(k))
    coloring: Coloring = {}
    while uncolored:
        i = max(uncolored, key=lambda x: (sat_cnt[x], deg[x], x))
        color = _lowest_clear_bit(sat[i])
        coloring[nodes[i]] = color
        uncolored.discard(i)
        bit = 1 << color
        m = masks[i]
        while m:
            low = m & -m
            m ^= low
            nbr = low.bit_length() - 1
            if nbr in uncolored and not (sat[nbr] & bit):
                sat[nbr] |= bit
                sat_cnt[nbr] += 1
    return coloring


def simplify_color(graph: UndirectedGraph) -> Coloring:
    """Chaitin-style simplify-select.

    Repeatedly remove a minimum-degree node onto a stack, then color in
    reverse removal order with the smallest available color.
    """
    from repro.core.dense import analysis_is_dense

    if analysis_is_dense():
        return _simplify_dense(graph)
    work = graph.copy()
    stack: List[Node] = []
    remaining = set(work.nodes())
    while remaining:
        node = min(remaining, key=lambda n: (work.degree(n), str(n)))
        stack.append(node)
        work.remove_node(node)
        remaining.discard(node)
    coloring: Coloring = {}
    for node in reversed(stack):
        used = {
            coloring[nbr]
            for nbr in graph.neighbor_set(node)
            if nbr in coloring
        }
        coloring[node] = first_free_color(used)
    return coloring


def _simplify_dense(graph: UndirectedGraph) -> Coloring:
    """Simplify-select over the dense adjacency view.

    Degrees decrement in place instead of mutating a graph copy; the
    removal minimum ``(degree, index)`` equals the reference key
    ``(degree, str(node))`` by the dense-index order invariant.
    """
    view = graph.dense_view()
    nodes = view.nodes
    masks = view.masks
    k = len(nodes)
    deg = [popcount(m) for m in masks]
    remaining = set(range(k))
    removed_mask = 0
    stack: List[int] = []
    while remaining:
        i = min(remaining, key=lambda x: (deg[x], x))
        stack.append(i)
        remaining.discard(i)
        removed_mask |= 1 << i
        m = masks[i] & ~removed_mask
        while m:
            low = m & -m
            m ^= low
            deg[low.bit_length() - 1] -= 1
    colarr = [0] * k
    colored_mask = 0
    coloring: Coloring = {}
    for i in reversed(stack):
        used = 0
        m = masks[i] & colored_mask
        while m:
            low = m & -m
            m ^= low
            used |= 1 << colarr[low.bit_length() - 1]
        color = _lowest_clear_bit(used)
        colarr[i] = color
        colored_mask |= 1 << i
        coloring[nodes[i]] = color
    return coloring


def num_colors(coloring: Coloring) -> int:
    """Number of distinct colors used (0 for an empty coloring)."""
    return len(set(coloring.values())) if coloring else 0


def min_color(graph: UndirectedGraph) -> Coloring:
    """Best of DSATUR and simplify-select; deterministic."""
    a = dsatur_color(graph)
    b = simplify_color(graph)
    return a if num_colors(a) <= num_colors(b) else b


def validate_coloring(graph: UndirectedGraph, coloring: Coloring) -> None:
    """Raise ``ValueError`` when an edge's endpoints share a color or a
    node is missing from the coloring."""
    for node in graph.nodes():
        if node not in coloring:
            raise ValueError(f"node {node!r} is uncolored")
    for a, b in graph.edges():
        if coloring[a] == coloring[b]:
            raise ValueError(
                f"edge ({a!r}, {b!r}) endpoints share color {coloring[a]}"
            )
