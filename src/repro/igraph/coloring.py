"""Graph-coloring heuristics.

Minimum graph coloring is NP-hard; the paper (and every register allocator
since Chaitin) uses heuristics.  We provide:

* :func:`greedy_color` -- smallest-available color in a caller-given order;
* :func:`dsatur_color` -- Brelaz's DSATUR, usually the tightest here;
* :func:`simplify_color` -- Chaitin/Briggs-style simplify-select, the shape
  register allocators traditionally use;
* :func:`min_color` -- run both and keep whichever used fewer colors.

All orders break ties on ``str(node)``, so results are deterministic.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.igraph.graph import Node, UndirectedGraph

Coloring = Dict[Node, int]


def first_free_color(used: Iterable[int]) -> int:
    """The smallest non-negative integer not in ``used``."""
    taken = set(used)
    c = 0
    while c in taken:
        c += 1
    return c


def greedy_color(
    graph: UndirectedGraph,
    order: Optional[List[Node]] = None,
    fixed: Optional[Coloring] = None,
) -> Coloring:
    """Color nodes in ``order`` with the smallest available color.

    ``fixed`` pre-assigns colors that are respected and not changed
    (pre-colored nodes need not appear in ``order``).
    """
    coloring: Coloring = dict(fixed) if fixed else {}
    if order is None:
        order = graph.nodes()
    for node in order:
        if node in coloring:
            continue
        used = {
            coloring[nbr]
            for nbr in graph.neighbor_set(node)
            if nbr in coloring
        }
        coloring[node] = first_free_color(used)
    return coloring


def dsatur_color(graph: UndirectedGraph) -> Coloring:
    """Brelaz's DSATUR: always color the node whose neighbors currently use
    the most distinct colors (saturation), breaking ties by degree."""
    coloring: Coloring = {}
    uncolored = set(graph.nodes())
    sat: Dict[Node, set] = {n: set() for n in uncolored}
    while uncolored:
        node = max(
            uncolored,
            key=lambda n: (len(sat[n]), graph.degree(n), str(n)),
        )
        color = first_free_color(sat[node])
        coloring[node] = color
        uncolored.discard(node)
        for nbr in graph.neighbor_set(node):
            if nbr in uncolored:
                sat[nbr].add(color)
    return coloring


def simplify_color(graph: UndirectedGraph) -> Coloring:
    """Chaitin-style simplify-select.

    Repeatedly remove a minimum-degree node onto a stack, then color in
    reverse removal order with the smallest available color.
    """
    work = graph.copy()
    stack: List[Node] = []
    remaining = set(work.nodes())
    while remaining:
        node = min(remaining, key=lambda n: (work.degree(n), str(n)))
        stack.append(node)
        work.remove_node(node)
        remaining.discard(node)
    coloring: Coloring = {}
    for node in reversed(stack):
        used = {
            coloring[nbr]
            for nbr in graph.neighbor_set(node)
            if nbr in coloring
        }
        coloring[node] = first_free_color(used)
    return coloring


def num_colors(coloring: Coloring) -> int:
    """Number of distinct colors used (0 for an empty coloring)."""
    return len(set(coloring.values())) if coloring else 0


def min_color(graph: UndirectedGraph) -> Coloring:
    """Best of DSATUR and simplify-select; deterministic."""
    a = dsatur_color(graph)
    b = simplify_color(graph)
    return a if num_colors(a) <= num_colors(b) else b


def validate_coloring(graph: UndirectedGraph, coloring: Coloring) -> None:
    """Raise ``ValueError`` when an edge's endpoints share a color or a
    node is missing from the coloring."""
    for node in graph.nodes():
        if node not in coloring:
            raise ValueError(f"node {node!r} is uncolored")
    for a, b in graph.edges():
        if coloring[a] == coloring[b]:
            raise ValueError(
                f"edge ({a!r}, {b!r}) endpoints share color {coloring[a]}"
            )
