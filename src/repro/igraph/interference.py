"""Builders for the paper's three interference graphs (section 3.2).

* **GIG** (global interference graph): every live range of the thread; an
  edge joins any two ranges co-live at some program point.
* **BIG** (boundary interference graph): only boundary live ranges; an edge
  joins two ranges co-live across the *same* CSB (or both live at program
  entry, which behaves like a boundary -- other threads run before the
  thread's first instruction).
* **IIG_k** (internal interference graph of NSR ``k``): only internal live
  ranges living in NSR ``k``, with their interference edges.

Claim 2 of the paper (internal nodes of different IIGs never interfere)
holds by construction and is asserted by tests.

Note the GIG may contain boundary-boundary edges that are *not* in the BIG:
two ranges can overlap inside an NSR while being live across different
CSBs.  The merge step (:mod:`repro.igraph.merge`) resolves those conflicts
too, since the safety requirement is a valid GIG coloring with boundary
nodes confined to private colors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.cfg.liveness import Liveness, co_live_pairs
from repro.cfg.nsr import NsrInfo
from repro.igraph.graph import UndirectedGraph
from repro.ir.operands import Reg


@dataclass
class InterferenceGraphs:
    """The GIG/BIG/IIG family for one thread."""

    gig: UndirectedGraph
    big: UndirectedGraph
    iigs: Dict[int, UndirectedGraph]
    boundary: FrozenSet[Reg]
    internal: FrozenSet[Reg]

    def cross_edges(self) -> List[Tuple[Reg, Reg]]:
        """GIG edges not represented in the BIG or in any IIG.

        These are exactly the edges the region-merge step must check:
        boundary-internal edges plus boundary-boundary edges that exist
        only inside NSRs.
        """
        out: List[Tuple[Reg, Reg]] = []
        for a, b in self.gig.edges():
            if self.big.has_edge(a, b):
                continue
            if any(iig.has_edge(a, b) for iig in self.iigs.values()):
                continue
            out.append((a, b))
        return out


def build_interference(liveness: Liveness, nsr: NsrInfo) -> InterferenceGraphs:
    """Construct GIG, BIG and the IIGs from liveness and NSR facts.

    A liveness carrying the dense bitmask payload (built by the dense
    analysis kernels, see :mod:`repro.core.dense`) routes to the
    adjacency-bitset builder; results are bit-identical either way.
    """
    if getattr(liveness, "_dense", None) is not None:
        from repro.core.dense import build_interference_dense

        return build_interference_dense(liveness, nsr)
    program = liveness.program

    gig = UndirectedGraph()
    for instr in program.instrs:
        for reg in instr.regs:
            gig.add_node(reg)
    for a, b in co_live_pairs(liveness):
        gig.add_edge(a, b)

    big = UndirectedGraph()
    for reg in nsr.boundary:
        big.add_node(reg)
    entry = sorted(liveness.entry_live(), key=str)
    for i in range(len(entry)):
        for j in range(i + 1, len(entry)):
            big.add_edge(entry[i], entry[j])
    for c in nsr.csbs:
        across = sorted(liveness.live_across_csb(c), key=str)
        for i in range(len(across)):
            for j in range(i + 1, len(across)):
                big.add_edge(across[i], across[j])

    iigs: Dict[int, UndirectedGraph] = {
        rid: UndirectedGraph() for rid in range(nsr.n_regions)
    }
    for reg in nsr.internal:
        iigs[nsr.nsr_of_internal[reg]].add_node(reg)
    for a, b in gig.edges():
        if a in nsr.internal and b in nsr.internal:
            rid_a = nsr.nsr_of_internal[a]
            rid_b = nsr.nsr_of_internal[b]
            if rid_a != rid_b:
                raise AssertionError(
                    f"internal ranges {a} (NSR {rid_a}) and {b} (NSR {rid_b}) "
                    f"interfere across regions; claim 2 violated"
                )
            iigs[rid_a].add_edge(a, b)

    return InterferenceGraphs(
        gig=gig,
        big=big,
        iigs=iigs,
        boundary=nsr.boundary,
        internal=nsr.internal,
    )
