"""Interference graphs and coloring.

* :mod:`repro.igraph.graph` -- a small deterministic undirected graph.
* :mod:`repro.igraph.coloring` -- greedy / DSATUR / simplify colorings.
* :mod:`repro.igraph.interference` -- GIG, BIG and per-NSR IIG builders
  (section 3.2 of the paper).
* :mod:`repro.igraph.merge` -- region-wise coloring merge with
  conflict-edge resolution (paper Figure 7).
"""

from repro.igraph.graph import UndirectedGraph
from repro.igraph.coloring import (
    dsatur_color,
    greedy_color,
    min_color,
    num_colors,
    simplify_color,
    validate_coloring,
)
from repro.igraph.interference import InterferenceGraphs, build_interference
from repro.igraph.merge import MergeResult, merge_region_colorings

__all__ = [
    "UndirectedGraph",
    "greedy_color",
    "dsatur_color",
    "simplify_color",
    "min_color",
    "num_colors",
    "validate_coloring",
    "InterferenceGraphs",
    "build_interference",
    "MergeResult",
    "merge_region_colorings",
]
