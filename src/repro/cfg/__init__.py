"""Control-flow analyses over npir programs.

* :mod:`repro.cfg.blocks` -- basic-block partitioning.
* :mod:`repro.cfg.liveness` -- per-instruction liveness and register
  pressure.
* :mod:`repro.cfg.nsr` -- non-switch regions and the boundary/internal
  classification of live ranges (section 3.1 of the paper).
* :mod:`repro.cfg.edit` -- program editing: instruction insertion with
  label fix-up, and control-flow edge splitting.
"""

from repro.cfg.blocks import BasicBlock, build_blocks
from repro.cfg.liveness import Liveness, compute_liveness
from repro.cfg.loops import Loop, loop_depth, natural_loops
from repro.cfg.nsr import NsrInfo, compute_nsr
from repro.cfg.edit import ProgramEditor, insert_on_edge
from repro.cfg.webs import rename_webs

__all__ = [
    "BasicBlock",
    "build_blocks",
    "Liveness",
    "compute_liveness",
    "Loop",
    "natural_loops",
    "loop_depth",
    "NsrInfo",
    "compute_nsr",
    "ProgramEditor",
    "insert_on_edge",
    "rename_webs",
]
