"""Non-switch regions (NSRs) and boundary/internal live-range classification.

Section 3.1 of the paper: an NSR is a maximal connected subgraph of the CFG
with no internal context-switch instruction; its boundaries are CSB
instructions and the program entry/exit.  We compute NSRs at instruction
granularity as the connected components of the control-flow graph after
deleting the CSB instructions themselves (CSB instructions sit *on* the
boundary and belong to no NSR).  Connectivity is undirected, matching the
"connected subgraph" wording -- two halves of a basic block separated by a
CSB can still share an NSR through a loop (paper Figure 4, BB7).

Classification (section 3.2):

* a **boundary node** is a live range live across some CSB (or live at
  program entry -- the thread expects the value to survive other threads'
  execution before its first instruction runs);
* an **internal node** is any other live range; every internal node's
  occupied slots fall inside exactly one NSR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cfg.liveness import Liveness, occupied_slots
from repro.ir.operands import Reg
from repro.ir.program import Program


@dataclass
class NsrInfo:
    """Result of NSR construction for one program.

    Attributes:
        program: the analysed program.
        nsr_of: per-instruction NSR id; ``None`` for CSB instructions.
        regions: for each NSR id, the set of member instruction indices.
        csbs: indices of all CSB instructions, ascending.
        boundary: the boundary live ranges (registers).
        internal: the internal live ranges.
        nsr_of_internal: internal register -> the single NSR containing it.
    """

    program: Program
    nsr_of: List[Optional[int]]
    regions: List[FrozenSet[int]]
    csbs: List[int]
    boundary: FrozenSet[Reg]
    internal: FrozenSet[Reg]
    nsr_of_internal: Dict[Reg, int]

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    def average_region_size(self) -> float:
        """Average NSR size in instructions (0.0 for a CSB-free program)."""
        if not self.regions:
            return 0.0
        return sum(len(r) for r in self.regions) / len(self.regions)

    def regions_of(self, slots: FrozenSet[int]) -> Set[int]:
        """NSR ids touched by a slot set (CSB slots contribute nothing)."""
        out: Set[int] = set()
        for s in slots:
            rid = self.nsr_of[s]
            if rid is not None:
                out.add(rid)
        return out


def compute_nsr(liveness: Liveness) -> NsrInfo:
    """Build NSRs and classify every live range of the program."""
    program = liveness.program
    n = len(program.instrs)
    csbs = liveness.csb_indices()
    is_csb = [False] * n
    for i in csbs:
        is_csb[i] = True

    # Undirected adjacency among non-CSB instructions.
    adj: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        if is_csb[i]:
            continue
        for s in program.successors(i):
            if not is_csb[s]:
                adj[i].append(s)
                adj[s].append(i)

    nsr_of: List[Optional[int]] = [None] * n
    regions: List[FrozenSet[int]] = []
    for i in range(n):
        if is_csb[i] or nsr_of[i] is not None:
            continue
        rid = len(regions)
        stack = [i]
        members: Set[int] = set()
        nsr_of[i] = rid
        while stack:
            cur = stack.pop()
            members.add(cur)
            for nxt in adj[cur]:
                if nsr_of[nxt] is None:
                    nsr_of[nxt] = rid
                    stack.append(nxt)
        regions.append(frozenset(members))

    boundary: Set[Reg] = set(liveness.entry_live())
    for c in csbs:
        boundary |= liveness.live_across_csb(c)

    all_regs: Set[Reg] = set()
    for instr in program.instrs:
        all_regs.update(instr.regs)
    internal = {r for r in all_regs if r not in boundary}

    nsr_of_internal: Dict[Reg, int] = {}
    for reg in internal:
        rids = {
            nsr_of[s]
            for s in occupied_slots(liveness, reg)
            if nsr_of[s] is not None
        }
        if len(rids) > 1:
            # Cannot happen for a truly internal range: crossing between
            # NSRs requires passing through a CSB, i.e. being live across
            # it.  Guard anyway so a logic bug surfaces loudly.
            raise AssertionError(
                f"internal live range {reg} spans NSRs {sorted(rids)}"
            )
        if rids:
            nsr_of_internal[reg] = next(iter(rids))
        else:
            # Range occupies only CSB slots (defined by a CSB and used by
            # the next CSB with nothing in between, or a dead def).  Park
            # it in the region of the nearest following instruction, or 0.
            slot = min(occupied_slots(liveness, reg), default=0)
            rid_fallback = next(
                (nsr_of[s] for s in range(slot, len(nsr_of)) if nsr_of[s] is not None),
                0,
            )
            nsr_of_internal[reg] = rid_fallback

    return NsrInfo(
        program=program,
        nsr_of=nsr_of,
        regions=regions,
        csbs=csbs,
        boundary=frozenset(boundary),
        internal=frozenset(internal),
        nsr_of_internal=nsr_of_internal,
    )
