"""Dominators, natural loops, and loop-nesting depth.

The Chaitin baseline weighs spill candidates by how often their accesses
execute; static occurrence counts treat a use in a hot inner loop like a
use in straight-line prologue code, which makes the baseline spill
loop-carried values -- something no production allocator would do.  This
module provides the classic machinery:

* :func:`dominators` -- iterative dataflow over basic blocks;
* :func:`natural_loops` -- back edges ``(tail -> head)`` where the head
  dominates the tail, each expanded to its natural-loop body;
* :func:`loop_depth` -- per-instruction nesting depth, used to weight
  spill costs by ``10 ** depth``.

All results are at basic-block granularity and projected down to
instructions at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.cfg.blocks import BasicBlock, build_blocks
from repro.ir.program import Program


def dominators(blocks: List[BasicBlock]) -> List[Set[int]]:
    """Per-block dominator sets (blocks unreachable from entry dominate
    themselves only)."""
    n = len(blocks)
    if n == 0:
        return []
    all_ids = set(range(n))
    dom: List[Set[int]] = [all_ids.copy() for _ in range(n)]
    dom[0] = {0}
    changed = True
    while changed:
        changed = False
        for b in blocks[1:]:
            preds = [dom[p] for p in b.preds]
            new = set.intersection(*preds) | {b.bid} if preds else {b.bid}
            if new != dom[b.bid]:
                dom[b.bid] = new
                changed = True
    return dom


@dataclass(frozen=True)
class Loop:
    """A natural loop: its header block and full body (block ids)."""

    header: int
    body: FrozenSet[int]

    def __contains__(self, bid: int) -> bool:
        return bid in self.body


def natural_loops(program: Program) -> List[Loop]:
    """All natural loops of the program, one per back edge (loops sharing
    a header are kept separate; depth computation unions them)."""
    blocks = build_blocks(program)
    dom = dominators(blocks)
    loops: List[Loop] = []
    for block in blocks:
        for succ in block.succs:
            if succ in dom[block.bid]:
                # back edge block -> succ (succ dominates block)
                body: Set[int] = {succ, block.bid}
                stack = [block.bid]
                while stack:
                    cur = stack.pop()
                    if cur == succ:
                        continue
                    for pred in blocks[cur].preds:
                        if pred not in body:
                            body.add(pred)
                            stack.append(pred)
                loops.append(Loop(header=succ, body=frozenset(body)))
    return loops


def loop_depth(program: Program) -> List[int]:
    """Per-instruction loop-nesting depth (0 outside any loop).

    Loops with the same header count once; distinct headers nest.
    """
    blocks = build_blocks(program)
    loops = natural_loops(program)
    merged: Dict[int, Set[int]] = {}
    for loop in loops:
        merged.setdefault(loop.header, set()).update(loop.body)
    depth_of_block = [0] * len(blocks)
    for body in merged.values():
        for bid in body:
            depth_of_block[bid] += 1
    out = [0] * len(program.instrs)
    for block in blocks:
        for i in block.indices():
            out[i] = depth_of_block[block.bid]
    return out
